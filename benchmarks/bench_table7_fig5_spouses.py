"""Table 7 + Figure 5: spouse extraction vs. DeepDive.

Extracts instances of the married_to relation from the DEFIE-Wikipedia
dataset with both systems at the precision-oriented threshold tau = 0.9,
ranks extractions by confidence, and reports precision at recall levels
(Table 7) plus the precision-recall curve points (Figure 5). Expected
shape: both systems start near precision 1.0; QKBfly holds up better at
higher recall because co-reference resolution contributes extractions
DeepDive's sentence-level model cannot see.
"""

from __future__ import annotations

import time


from repro.baselines.deepdive import DeepDiveSpouse
from repro.core.qkbfly import QKBfly, QKBflyConfig
from repro.datasets.defie_wikipedia import build_defie_wikipedia
from repro.eval.metrics import precision_at, precision_recall_curve
from repro.eval.tables import print_table

NUM_DOCS = 120
TAU = 0.9


def _spouse_truth(world):
    pairs = set()
    for fact in world.facts:
        if fact.relation_id == "married_to" and fact.object_id:
            pairs.add((fact.subject_id, fact.object_id))
            pairs.add((fact.object_id, fact.subject_id))
    return pairs


def _qkbfly_spouses(world, dataset):
    system = QKBfly.from_world(world, QKBflyConfig(tau=TAU), with_search=False)
    start = time.perf_counter()
    extractions = []
    for doc in dataset:
        kb, _ = system.process_text(doc.text, doc_id=doc.doc_id)
        for fact in kb.facts:
            if fact.predicate != "married_to":
                continue
            if fact.subject.kind != "entity":
                continue
            entity_objects = [o for o in fact.objects if o.kind == "entity"]
            if not entity_objects:
                continue
            extractions.append(
                (fact.confidence, fact.subject.value, entity_objects[0].value)
            )
    seconds = time.perf_counter() - start
    extractions.sort(key=lambda x: -x[0])
    return extractions, seconds


def _deepdive_spouses(world, dataset):
    system = DeepDiveSpouse(world)
    start = time.perf_counter()
    system.train(dataset)
    results = system.extract(dataset, tau=TAU)
    seconds = time.perf_counter() - start
    return [
        (c.probability, c.left_entity, c.right_entity)
        for c in results
        if c.left_entity and c.right_entity
    ], seconds


def test_table7_fig5_spouse_extraction(world, benchmark):
    dataset = build_defie_wikipedia(world, num_documents=NUM_DOCS)
    truth = _spouse_truth(world)

    qkb, qkb_seconds = _qkbfly_spouses(world, dataset)
    dd, dd_seconds = _deepdive_spouses(world, dataset)

    qkb_correct = [(left, right) in truth for _, left, right in qkb]
    dd_correct = [(left, right) in truth for _, left, right in dd]

    levels = [10, 25, 50]
    rows = []
    for name, ranked, seconds in (
        ("QKBfly", qkb_correct, qkb_seconds),
        ("DeepDive", dd_correct, dd_seconds),
    ):
        for k in levels:
            if len(ranked) >= k:
                rows.append((name, k, f"{precision_at(ranked, k):.2f}",
                             f"{seconds:.1f}"))
            else:
                rows.append((name, k, "—", f"{seconds:.1f}"))
    print_table(
        "Table 7: spouse extraction at tau=0.9 (confidence-ranked)",
        ("Method", "#Extractions", "Precision", "total s"),
        rows,
    )

    print("\nFigure 5: precision-recall curve points (every 5 extractions)")
    for name, ranked in (("QKBfly", qkb_correct), ("DeepDive", dd_correct)):
        points = precision_recall_curve(ranked)
        series = [
            f"({n},{p:.2f})" for n, p in points if n % 5 == 0 or n == len(points)
        ]
        print(f"  {name}: {' '.join(series)}")

    # Shape: both precise at the top of the ranking.
    if len(qkb_correct) >= 10:
        assert precision_at(qkb_correct, 10) >= 0.5
    assert qkb, "QKBfly must extract spouse facts"
    assert dd, "DeepDive must extract spouse facts"
    # QKBfly reaches extractions DeepDive misses (co-reference recall).
    qkb_pairs = {(l, r) for _, l, r in qkb}
    dd_pairs = {(l, r) for _, l, r in dd}
    assert qkb_pairs - dd_pairs, (
        "QKBfly should find pairs DeepDive's sentence model misses"
    )

    sample = dataset[0]
    system = QKBfly.from_world(world, QKBflyConfig(tau=TAU), with_search=False)
    benchmark(lambda: system.process_text(sample.text, doc_id=sample.doc_id))
