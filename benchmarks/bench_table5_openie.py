"""Table 5: the Open IE component on the Reverb dataset.

Compares ClausIE (with the exhaustive chart parser, as in the original),
QKBfly's extractor (ClausIE over the fast greedy parser), Reverb, Ollie
and Open IE 4.2 on standalone web sentences. Expected shape:

- ClausIE: most extractions, best precision, slowest (chart parser);
- Reverb: fastest, fewest extractions, lowest precision;
- QKBfly / Ollie / Open IE 4.2 in between, much faster than ClausIE.
"""

from __future__ import annotations

import time


from repro.baselines.ollie import OllieExtractor
from repro.baselines.reverb import ReverbExtractor
from repro.baselines.openie4 import OpenIE4Extractor
from repro.datasets.reverb500 import build_reverb500
from repro.eval.tables import print_table
from repro.nlp.pipeline import NlpPipeline, PipelineConfig
from repro.openie.clausie import ClausIE

NUM_SENTENCES = 300


def _proposition_correct(proposition, doc) -> bool:
    """An Open IE extraction is correct when subject + pattern + first
    argument all appear in some emitted fact's rendered surface."""
    for emitted in doc.emitted:
        if _normalize(proposition.pattern) != _normalize(emitted.pattern):
            continue
        sentence = doc.sentences[0].lower()
        if proposition.subject.lower() not in sentence:
            continue
        if proposition.arguments and proposition.arguments[0][0].lower() not in sentence:
            continue
        return True
    return False


def _normalize(pattern: str) -> str:
    return " ".join(pattern.lower().replace("not ", "").split())


def test_table5_openie_component(world, benchmark):
    dataset = build_reverb500(world, num_sentences=NUM_SENTENCES)
    gazetteer = world.entity_repository.gazetteer()
    greedy_nlp = NlpPipeline(PipelineConfig(parser="greedy", gazetteer=gazetteer))
    chart_nlp = NlpPipeline(PipelineConfig(parser="chart", gazetteer=gazetteer))
    clausie = ClausIE()

    systems = {
        # (annotator, extractor): ClausIE-original rides the slow parser.
        "ClausIE": (chart_nlp, lambda s: clausie.propositions(s)),
        "QKBfly": (greedy_nlp, lambda s: clausie.propositions(s)),
        "Reverb": (greedy_nlp, ReverbExtractor().extract),
        "Ollie": (greedy_nlp, OllieExtractor().extract),
        "Open IE 4.2": (greedy_nlp, OpenIE4Extractor().extract),
    }

    rows = []
    metrics = {}
    for name, (annotator, extract) in systems.items():
        correct = total = 0
        start = time.perf_counter()
        for doc in dataset:
            annotated = annotator.annotate_text(doc.text, doc_id=doc.doc_id)
            for sentence in annotated.sentences:
                for proposition in extract(sentence):
                    total += 1
                    correct += _proposition_correct(proposition, doc)
        ms_per_sentence = (
            (time.perf_counter() - start) / max(len(dataset), 1) * 1000.0
        )
        precision = correct / max(total, 1)
        metrics[name] = (precision, total, ms_per_sentence)
        rows.append((name, f"{precision:.2f}", total, f"{ms_per_sentence:.1f}"))

    print_table(
        "Table 5: Open IE component (Reverb dataset)",
        ("Method", "Precision", "#Extract.", "ms/sentence"),
        rows,
    )

    # Shape assertions.
    assert metrics["ClausIE"][2] > metrics["QKBfly"][2], (
        "the chart parser (ClausIE original) must be slower than the "
        "greedy parser QKBfly swaps in"
    )
    assert metrics["Reverb"][2] <= metrics["QKBfly"][2], (
        "the purely pattern-based Reverb is the fastest method"
    )
    assert metrics["Reverb"][1] <= metrics["QKBfly"][1], (
        "Reverb produces the fewest extractions"
    )
    assert metrics["ClausIE"][1] >= metrics["Reverb"][1], (
        "clause-based extraction out-yields the pattern baseline"
    )
    assert metrics["ClausIE"][0] >= metrics["Ollie"][0], (
        "ClausIE is more precise than Ollie"
    )
    assert metrics["ClausIE"][0] >= metrics["Open IE 4.2"][0]

    sample = dataset[0]
    benchmark(
        lambda: clausie.propositions(
            greedy_nlp.annotate_text(sample.text).sentences[0]
        )
    )
