"""Table 6: greedy densest-subgraph vs. exact ILP (Appendix A).

Runs both Stage-2 algorithms on three datasets (DEFIE-Wikipedia, News,
Wikia). Expected shape (paper): the ILP gains ~1-2% precision but is
orders of magnitude slower, worst on the long Wikia documents; Wikia
precision drops ~10% below the other datasets with ~71% out-of-repository
entities (vs ~24% on News and ~13% on DEFIE-Wikipedia).
"""

from __future__ import annotations

import time


from repro.core.qkbfly import QKBfly, QKBflyConfig
from repro.datasets.defie_wikipedia import build_defie_wikipedia
from repro.datasets.news import build_news_dataset
from repro.datasets.wikia import build_wikia_dataset
from repro.eval.assess import FactMatcher, SimulatedAssessors
from repro.eval.tables import print_table


def _run(world, system, dataset):
    matcher = FactMatcher(world)
    verdicts = []
    emerging_args = 0
    entity_args = 0
    start = time.perf_counter()
    for doc in dataset:
        kb, _ = system.process_text(doc.text, doc_id=doc.doc_id)
        for fact in kb.facts:
            verdicts.append(matcher.is_correct(fact, doc, kb))
            for argument in fact.arguments():
                if argument.kind == "emerging":
                    emerging_args += 1
                    entity_args += 1
                elif argument.kind == "entity":
                    entity_args += 1
    seconds = (time.perf_counter() - start) / max(len(dataset), 1)
    new_rate = emerging_args / max(entity_args, 1)
    return verdicts, seconds, new_rate


def test_table6_graph_algorithms(world, benchmark):
    datasets = {
        "DEFIE-Wikipedia": build_defie_wikipedia(world, num_documents=10),
        "News": build_news_dataset(world, num_documents=10),
        "Wikia": build_wikia_dataset(
            world, num_documents=2, sentences_per_document=18
        ),
    }
    greedy = QKBfly.from_world(world, with_search=False)
    ilp = QKBfly.from_world(
        world, QKBflyConfig(algorithm="ilp", ilp_time_budget=30.0),
        with_search=False,
    )
    assessors = SimulatedAssessors(seed=2019)

    rows = []
    oracle = {}
    runtime = {}
    for ds_name, dataset in datasets.items():
        for algo_name, system in (("QKBfly", greedy), ("QKBfly-ilp", ilp)):
            verdicts, seconds, new_rate = _run(world, system, dataset)
            a = assessors.assess(verdicts)
            oracle[(ds_name, algo_name)] = (
                sum(verdicts) / max(len(verdicts), 1)
            )
            runtime[(ds_name, algo_name)] = seconds
            rows.append((
                ds_name, algo_name,
                f"{a.precision:.2f} ± {a.interval:.2f}",
                len(verdicts),
                f"{seconds:.2f}",
                f"{new_rate:.0%}",
            ))
    print_table(
        "Table 6: graph algorithms (greedy vs ILP)",
        ("Dataset", "Method", "Precision", "#Extract.", "s/doc", "out-of-KB"),
        rows,
    )

    for ds_name in datasets:
        assert runtime[(ds_name, "QKBfly-ilp")] > runtime[(ds_name, "QKBfly")], (
            f"the exact ILP must be slower than greedy on {ds_name}"
        )
    # The Wikia dataset (emerging characters) is the hardest.
    assert oracle[("Wikia", "QKBfly")] <= oracle[("DEFIE-Wikipedia", "QKBfly")] + 0.05

    sample = datasets["DEFIE-Wikipedia"][0]
    benchmark(lambda: greedy.process_text(sample.text, doc_id=sample.doc_id))
