"""Table 9: ad-hoc QA on GoogleTrendsQuestions.

Macro-averaged precision / recall / F1 for QKBfly, QKBfly-triples,
Sentence-Answers, QA-Freebase and the AQQU-style system. Expected shape
(paper: 0.341 / 0.307 / 0.179 / 0.096 / ~0.10): the on-the-fly KB
dominates; higher-arity facts help over triples; the static-KB systems
fail on recent events.
"""

from __future__ import annotations


from repro.core.qkbfly import QKBfly, QKBflyConfig
from repro.datasets.trends_questions import (
    build_trends_questions,
    build_training_questions,
)
from repro.eval.metrics import macro_prf
from repro.eval.tables import print_table
from repro.qa.answering import QaSystem
from repro.qa.baselines import AqquStyle, QaFreebase, SentenceAnswers

NUM_QUESTIONS = 30
NUM_TRAINING = 60
NUM_NEWS = 5


def _evaluate(answer_fn, questions):
    answers = []
    golds = []
    for question in questions:
        predicted = {a.lower() for a in answer_fn(question)}
        answers.append(predicted)
        golds.append({g.lower() for g in question.gold})
    return macro_prf(answers, golds)


def test_table9_qa(world, benchmark):
    questions = build_trends_questions(world)[:NUM_QUESTIONS]
    training = build_training_questions(world, limit=NUM_TRAINING)
    assert questions, "the benchmark world must yield trend questions"

    qkb_full = QaSystem(
        QKBfly.from_world(world, with_search=True), num_news=NUM_NEWS
    )
    qkb_full.train(training)

    qkb_triples = QaSystem(
        QKBfly.from_world(
            world, QKBflyConfig(triples_only=True), with_search=True
        ),
        num_news=NUM_NEWS,
    )
    qkb_triples.classifier = qkb_full.classifier  # same trained model
    qkb_triples._trained = True

    sentence_answers = SentenceAnswers(
        world, qkb_full.qkbfly.search_engine, num_news=NUM_NEWS
    )
    sentence_answers.train(training)

    qa_freebase = QaFreebase(world)
    qa_freebase.train(training)

    aqqu = AqquStyle(world)

    systems = [
        ("QKBfly", qkb_full.answer),
        ("QKBfly-triples", qkb_triples.answer),
        ("Sentence-Answers", sentence_answers.answer),
        ("QA-Freebase", qa_freebase.answer),
        ("AQQU", aqqu.answer),
    ]
    rows = []
    f1_scores = {}
    for name, fn in systems:
        p, r, f1 = _evaluate(fn, questions)
        f1_scores[name] = f1
        rows.append((name, f"{p:.3f}", f"{r:.3f}", f"{f1:.3f}"))
    print_table(
        "Table 9: GoogleTrendsQuestions",
        ("Method", "Precision", "Recall", "F1"),
        rows,
    )

    # Shape assertions: the on-the-fly KB beats the static-KB systems.
    assert f1_scores["QKBfly"] > f1_scores["QA-Freebase"], (
        "on-the-fly KB must beat the static KB on trend questions"
    )
    assert f1_scores["QKBfly"] > f1_scores["AQQU"]
    assert f1_scores["QKBfly"] >= f1_scores["QKBfly-triples"] - 0.02, (
        "higher-arity facts should not hurt"
    )

    sample = questions[0]
    benchmark(lambda: qkb_full.answer(sample))
