"""Table 3: fact extraction on the DEFIE-Wikipedia dataset.

Reproduces precision / #extractions for triple and higher-arity facts
plus average runtime per document, for DEFIE, QKBfly, QKBfly-pipeline
and QKBfly-noun. Expected shape (paper values in parentheses):

- QKBfly-noun has the highest precision (0.73 / 0.68);
- QKBfly beats QKBfly-pipeline on precision (+5%) at equal recall;
- every QKBfly variant beats DEFIE on precision and #extractions;
- DEFIE yields no higher-arity facts.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.defie import Defie
from repro.eval.tables import print_table
from repro.core.qkbfly import QKBfly, QKBflyConfig
from repro.datasets.defie_wikipedia import build_defie_wikipedia
from repro.eval.assess import FactMatcher, SimulatedAssessors

NUM_DOCS = 40


@pytest.fixture(scope="module")
def dataset(world):
    return build_defie_wikipedia(world, num_documents=NUM_DOCS)


def _run_system(world, dataset, process):
    """process(doc) -> kb; returns verdicts + counts + runtime."""
    matcher = FactMatcher(world)
    triple_verdicts, higher_verdicts = [], []
    start = time.perf_counter()
    for doc in dataset:
        kb = process(doc)
        for fact in kb.facts:
            verdict = matcher.is_correct(fact, doc, kb)
            if fact.is_triple():
                triple_verdicts.append(verdict)
            else:
                higher_verdicts.append(verdict)
    seconds_per_doc = (time.perf_counter() - start) / max(len(dataset), 1)
    return triple_verdicts, higher_verdicts, seconds_per_doc


def test_table3_fact_extraction(world, background, benchmark):
    systems = {
        "QKBfly": QKBfly.from_world(world, with_search=False),
        "QKBfly-pipeline": QKBfly.from_world(
            world, QKBflyConfig(mode="pipeline"), with_search=False
        ),
        "QKBfly-noun": QKBfly.from_world(
            world, QKBflyConfig(mode="noun"), with_search=False
        ),
    }
    defie = Defie(world.entity_repository, background.statistics)
    dataset = build_defie_wikipedia(world, num_documents=NUM_DOCS)
    assessors = SimulatedAssessors(seed=2017)

    results = {}
    for name, system in systems.items():
        triples, higher, seconds = _run_system(
            world, dataset,
            lambda d, s=system: s.process_text(d.text, doc_id=d.doc_id)[0],
        )
        results[name] = (triples, higher, seconds)
    triples, higher, seconds = _run_system(
        world, dataset, lambda d: defie.process_text(d.text, doc_id=d.doc_id)
    )
    results["DEFIE"] = (triples, higher, seconds)

    rows = []
    for name in ("DEFIE", "QKBfly", "QKBfly-pipeline", "QKBfly-noun"):
        triples, higher, seconds = results[name]
        t = assessors.assess(triples)
        h = assessors.assess(higher)
        rows.append((
            name,
            f"{t.precision:.2f} ± {t.interval:.2f}",
            len(triples),
            f"{h.precision:.2f} ± {h.interval:.2f}" if higher else "—",
            len(higher) if higher else "—",
            f"{seconds:.3f}",
        ))
    print_table(
        "Table 3: fact extraction (DEFIE-Wikipedia dataset)",
        ("Method", "Triple Prec.", "#Triples", "Higher-arity Prec.",
         "#Higher-arity", "s/doc"),
        rows,
    )

    # Shape assertions (who wins, not absolute numbers).
    def oracle(name, which):
        verdicts = results[name][which]
        return sum(verdicts) / max(len(verdicts), 1)

    assert len(results["QKBfly"][0]) > len(results["DEFIE"][0]), (
        "QKBfly must out-extract DEFIE"
    )
    assert results["DEFIE"][1] == [] or len(results["DEFIE"][1]) == 0, (
        "DEFIE yields triples only"
    )
    assert len(results["QKBfly"][1]) > 0, "QKBfly yields higher-arity facts"
    assert oracle("QKBfly-noun", 0) >= oracle("QKBfly-pipeline", 0) - 0.02, (
        "noun variant should be the precision-oriented one"
    )
    assert len(results["QKBfly-noun"][0]) <= len(results["QKBfly"][0]), (
        "dropping co-reference reduces recall"
    )

    # pytest-benchmark: one representative document through full QKBfly.
    sample = dataset[0]
    system = systems["QKBfly"]
    benchmark(lambda: system.process_text(sample.text, doc_id=sample.doc_id))
