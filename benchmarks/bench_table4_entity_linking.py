"""Table 4: linking entities to the repository (NED sub-task).

Compares QKBfly (joint, with type signatures), QKBfly-pipeline (no type
signatures) and DEFIE/Babelfy on mention-level linking precision.
Expected shape (paper: 0.86 / 0.80 / 0.82): QKBfly gains over Babelfy,
the pipeline variant loses against it.
"""

from __future__ import annotations


from repro.baselines.babelfy import BabelfyLinker
from repro.core.qkbfly import QKBfly, QKBflyConfig
from repro.datasets.defie_wikipedia import build_defie_wikipedia
from repro.eval.assess import SimulatedAssessors, ned_verdicts
from repro.eval.tables import print_table

NUM_DOCS = 40


def _qkbfly_verdicts(world, system, dataset):
    verdicts = []
    for doc in dataset:
        annotated = system.nlp.annotate_text(doc.text, doc_id=doc.doc_id)
        _, graph, result = system.process_document(annotated)
        verdicts.extend(ned_verdicts(world, doc, graph, result))
    return verdicts


def _babelfy_verdicts(world, linker, nlp, dataset):
    verdicts = []
    for doc in dataset:
        annotated = nlp.annotate_text(doc.text, doc_id=doc.doc_id)
        links = linker.link(annotated)
        truth = {}
        for mention in doc.mentions:
            truth.setdefault(
                (mention.sentence_index, mention.surface.lower()),
                mention.entity_id,
            )
        for (sentence_index, start, end), entity_id in links.items():
            if entity_id is None:
                continue
            sentence = annotated.sentences[sentence_index]
            surface = sentence.text(start, end).lower()
            expected = truth.get((sentence_index, surface))
            if expected is None:
                continue
            verdicts.append(expected == entity_id)
    return verdicts


def test_table4_entity_linking(world, background, benchmark):
    dataset = build_defie_wikipedia(world, num_documents=NUM_DOCS)
    joint = QKBfly.from_world(world, with_search=False)
    pipeline = QKBfly.from_world(
        world, QKBflyConfig(mode="pipeline"), with_search=False
    )
    linker = BabelfyLinker(world.entity_repository, background.statistics)

    joint_v = _qkbfly_verdicts(world, joint, dataset)
    pipeline_v = _qkbfly_verdicts(world, pipeline, dataset)
    babelfy_v = _babelfy_verdicts(world, linker, joint.nlp, dataset)

    assessors = SimulatedAssessors(seed=2018)
    rows = []
    for name, verdicts in (
        ("DEFIE/Babelfy", babelfy_v),
        ("QKBfly", joint_v),
        ("QKBfly-pipeline", pipeline_v),
    ):
        a = assessors.assess(verdicts)
        rows.append((name, f"{a.precision:.2f} ± {a.interval:.2f}", len(verdicts)))
    print_table(
        "Table 4: linking entities to the repository",
        ("Method", "Precision", "#Linked mentions"),
        rows,
    )

    def oracle(verdicts):
        return sum(verdicts) / max(len(verdicts), 1)

    # Shape: joint >= babelfy >= pipeline (small tolerance for noise).
    assert oracle(joint_v) >= oracle(pipeline_v) - 0.01, (
        "joint inference with type signatures must not lose to pipeline"
    )
    assert len(joint_v) > 0 and len(babelfy_v) > 0

    sample = dataset[0]
    benchmark(lambda: linker.link(joint.nlp.annotate_text(sample.text)))
