"""Serving throughput: cold/warm/batched/sharded/process/async/gateway.

Models a serving workload where trending queries repeat (each distinct
query appears ``DUP_FACTOR`` times, round-robin interleaved) and
measures seven regimes over one shared session:

- **cold** — empty cache, each distinct query once, sequential: the
  full pipeline cost, and the source of p50/p95 latency;
- **warm** — the same queries again on the hot cache;
- **batched** — a fresh service fed the full duplicated workload
  through the batch executor (thread pool + single-flight dedup);
- **sharded** — a fresh service persisting into a ``ShardedKbStore``
  (per-shard locks), then serving the same queries from the store with
  a cold cache: the restart/second-tier path;
- **process** — batched *distinct* queries on the thread executor vs.
  the multiprocessing executor, same worker count. The process tier
  escapes the GIL, so on hosts with ≥2 CPUs distinct-query QPS must
  improve over the thread baseline; on a single CPU it can only add
  IPC overhead (the committed numbers record ``cpu_count`` for exactly
  this reason — see the "thread vs process" note in the README);
- **async** — the head-of-line-blocking check for the asyncio front
  end: cache-hit p50 latency on the event loop, measured alone and
  then again while slow cold queries run concurrently on the executor
  tier. The two p50s must agree within ±10% — a slow pipeline run
  stalling hit traffic is exactly the failure mode the front end
  exists to remove;
- **gateway** — the cost of the v1 HTTP transport: the same cache-hit
  traffic as direct event-loop envelope calls and then over real
  loopback HTTP through ``HttpGateway`` (keep-alive, full JSON
  envelopes). Gated on correctness (every response 200, every hit from
  the cache); the HTTP-vs-direct overhead ratio is informational;
- **stage cache** — the partial-reuse check for stage-level pipeline
  caching (docs/PIPELINE.md): distinct-but-overlapping queries ("X",
  then "X spouse") hit different query-cache keys but retrieve the
  same documents, so the NLP/extraction stage products must be reused.
  Gated on the deterministic stage-cache reuse ratio over the
  base+variant workload and on bit-parity of every stage-cached KB
  against an uncached sequential run; the cold/overlap p50s and the
  speedup over a stage-cache-disabled control are informational (they
  measure the host);
- **fabric** — the multi-process shard fabric (docs/FABRIC.md): the
  same cold-fill-then-store-hit workload as the sharded regime but
  with the shards behind socket shard servers and 2-way replica
  groups. Gated on correctness (every store-served KB bit-identical
  to the pipeline run; after replication drains, every read lands on
  a replica — the fan-out rate is a deterministic counter ratio, not
  a timing). The remote-vs-local read p50s and their overhead ratio
  are informational: they price the loopback socket + JSON framing
  per read on the host, exactly as the gateway scenario prices its
  transport;
- **search** — the fact-search subsystem (docs/SEARCH.md): a sharded
  store filled with indexed facts, then (a) a full-table-scan control
  (one MAX-limit page), (b) a keyset-paginated walk of the whole
  corpus *while a writer thread keeps landing new saves*, and (c) FTS5
  ranked lookups. Gated on walk completeness — every fact present when
  the walk started must come back exactly once, the invariant keyset
  cursors exist to provide (OFFSET pagination loses or repeats rows
  under concurrent writes). The scan/page/FTS latencies are
  informational: they price SQLite on the host;
- **cost admission** — the load-management check for cost budgeting: a
  well-behaved client's cache-hit p50 is measured alone and again
  while an adversarial client hammers the service with expensive
  distinct multi-document cold queries under a tiny
  ``cost_budget_per_second``. The budget must actually shed the
  adversary (at least one ``CostLimited``/429, the reader never
  rejected — gated absolutely) and the reader's hit p50 must stay flat
  (same ±10% acceptance as the async scenario): cost-aware shedding is
  what keeps adversarially expensive cold traffic from bleeding into
  hit latency.

Emits ``BENCH_service.json`` when run as a script; CI gates on the
*relative* metrics (speedups, hit/parity/dedup rates — stable across
machines, capped so gigantic cache speedups don't add noise) via
``benchmarks/check_perf_regression.py``. Correctness is asserted
inline: served results must be byte-identical to sequential ``QKBfly``
runs in every regime.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

try:
    import repro  # noqa: F401  (probe: is the package importable?)
except ImportError:  # standalone `python benchmarks/...` without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.qkbfly import QKBfly, SessionState  # noqa: E402
from repro.corpus.world import World, WorldConfig  # noqa: E402
from repro.service.api import (  # noqa: E402
    IngestRequest,
    QueryRequest,
    WatchRequest,
)
from repro.service.async_service import AsyncQKBflyService  # noqa: E402
from repro.service.autoscale import observed_cpu_count  # noqa: E402
from repro.service.gateway import HttpGateway  # noqa: E402
from repro.service.service import QKBflyService, ServiceConfig  # noqa: E402

BENCH_SEED = 7
NUM_UNIQUE_QUERIES = 12
DUP_FACTOR = 3
MAX_WORKERS = 4
NUM_SHARDS = 4
PROCESS_WORKERS = 2
# Async scenario: hits measured alone, then while this many cold
# queries (at this document count, to keep each run slow) occupy the
# executor tier.
ASYNC_ALONE_HITS = 400
ASYNC_MIN_OVERLAP_HITS = 50
ASYNC_MAX_HITS = 5000
ASYNC_COLD_QUERIES = 8
ASYNC_COLD_DOCUMENTS = 3
# Acceptance: p50 during concurrent cold work within ±10% of p50
# alone, plus a 10µs absolute allowance so sub-100µs hit timings don't
# gate on timer/scheduler granularity (the enforced bound is the
# tolerance or the allowance, whichever is larger at the measured
# scale — reference runs sit at ~4-5% with p50s around 17-18µs).
ASYNC_ISOLATION_TOLERANCE = 0.10
ASYNC_ISOLATION_EPSILON_MS = 0.01
# Gateway scenario: cache hits measured per transport (direct envelope
# calls on the loop vs. loopback HTTP through HttpGateway).
GATEWAY_HITS = 300
# Cost-admission scenario: a reader's cache hits vs. an adversarial
# client issuing expensive distinct cold queries (this many documents
# each) under a deliberately tiny cost budget. The adversary runs until
# the budget has demonstrably shed it (COST_MIN_REJECTIONS) or the
# request cap is reached; the reader keeps hitting for the duration.
COST_BUDGET_PER_SECOND = 0.05
COST_BUDGET_BURST = 0.25
COST_COLD_DOCUMENTS = 3
COST_MIN_REJECTIONS = 5
COST_MAX_REQUESTS = 200
COST_ALONE_HITS = 300
COST_MAX_HITS = 5000
# Fabric scenario: replica group width for the fabric-backed store.
FABRIC_REPLICATION = 2
# Search scenario: entries saved into the sharded store (each carrying
# SEARCH_FACTS_PER_ENTRY facts), the page size of the keyset walk, how
# many saves the concurrent writer lands while the walk runs, and how
# many passes time the full-scan control / FTS lookups.
SEARCH_ENTRIES = 100
SEARCH_FACTS_PER_ENTRY = 3
SEARCH_PAGE_LIMIT = 25
SEARCH_CONCURRENT_WRITES = 20
SEARCH_TIMING_PASSES = 5
# Stage-cache scenario: base queries plus an overlapping variant per
# base query ("<name> spouse" retrieves the same documents under a
# different query-cache key, so only the stage cache can help).
STAGE_UNIQUE_QUERIES = 8
# Ingest scenario: warm queries, then breaking documents mentioning
# the first INGEST_TARGET_QUERIES of them (INGEST_DOCS total). Only
# the intersecting warm entries may cool (docs/INGEST.md).
INGEST_WARM_QUERIES = 10
INGEST_TARGET_QUERIES = 2
INGEST_DOCS = 4
# Speedups are capped before gating: beyond this they only measure timer
# noise on near-instant cache hits, not serving-layer health.
GATE_CAP = 20.0
# The store-hit path must beat the pipeline by at least this much
# anywhere; capping the gate low keeps it robust across machines.
SHARDED_GATE_CAP = 3.0


def _queries(session: SessionState, count: int) -> List[str]:
    entities = sorted(
        session.entity_repository.entities(),
        key=lambda e: (-e.prominence, e.entity_id),
    )
    return [e.canonical_name for e in entities[:count]]


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_throughput_benchmark(
    world: World,
    num_unique: int = NUM_UNIQUE_QUERIES,
    dup_factor: int = DUP_FACTOR,
    max_workers: int = MAX_WORKERS,
    session: SessionState = None,
) -> Dict[str, float]:
    """Measure the cold/warm/batched regimes; returns the metrics."""
    session = session or SessionState.from_world(world)
    unique = _queries(session, num_unique)
    workload = [unique[i % len(unique)] for i in range(num_unique * dup_factor)]

    # Cold: fresh service, one pass over the distinct queries.
    cold_service = QKBflyService(
        session, service_config=ServiceConfig(max_workers=max_workers)
    )
    latencies = []
    t0 = time.perf_counter()
    cold_results = []
    for query in unique:
        result = cold_service.serve(QueryRequest(query=query))
        latencies.append(result.seconds)
        cold_results.append(result)
    cold_seconds = time.perf_counter() - t0
    assert not any(r.cache_hit for r in cold_results)

    # Warm: same queries on the now-hot cache.
    t0 = time.perf_counter()
    warm_results = [
        cold_service.serve(QueryRequest(query=query)) for query in unique
    ]
    warm_seconds = time.perf_counter() - t0
    assert all(r.cache_hit for r in warm_results)

    # Batched: fresh service, the duplicated workload in one batch.
    batch_service = QKBflyService(
        session, service_config=ServiceConfig(max_workers=max_workers)
    )
    t0 = time.perf_counter()
    batch_results = batch_service.serve_batch(
        [QueryRequest(query=query) for query in workload]
    )
    batch_seconds = time.perf_counter() - t0

    # Correctness: batched results byte-identical to sequential runs.
    reference = QKBfly.from_session(session)
    expected = {
        query: reference.build_kb(
            query, source="wikipedia", num_documents=1
        ).to_dict()
        for query in unique
    }
    for query, result in zip(workload, batch_results):
        assert result.kb.to_dict() == expected[query], (
            f"batched KB for {query!r} differs from the sequential run"
        )

    qps_cold = len(unique) / cold_seconds
    qps_warm = len(unique) / warm_seconds
    qps_batched = len(workload) / batch_seconds
    warm_speedup = qps_warm / qps_cold
    batched_speedup = qps_batched / qps_cold
    # Hit rate over the cold+warm passes (N misses then N hits -> 0.5);
    # batched duplicates are absorbed by single-flight dedup before they
    # reach the cache, so they are reported as a dedup ratio instead.
    hit_rate = cold_service.cache.stats()["hit_rate"]
    dedup_ratio = 1.0 - batch_service.pipeline_runs / len(workload)
    cold_service.close()
    batch_service.close()
    return {
        "num_unique_queries": len(unique),
        "workload_size": len(workload),
        "dup_factor": dup_factor,
        "max_workers": max_workers,
        "qps_cold": round(qps_cold, 2),
        "qps_warm": round(qps_warm, 2),
        "qps_batched": round(qps_batched, 2),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
        "mean_cold_ms": round(statistics.mean(latencies) * 1000, 3),
        "warm_speedup": round(warm_speedup, 2),
        "batched_speedup": round(batched_speedup, 2),
        "cache_hit_rate": round(hit_rate, 4),
        "batched_dedup_ratio": round(dedup_ratio, 4),
        "pipeline_runs_batched": batch_service.pipeline_runs,
        # Gate metrics: what CI compares against the committed baseline.
        "gate_warm_speedup": round(min(warm_speedup, GATE_CAP), 2),
        "gate_batched_speedup": round(min(batched_speedup, GATE_CAP), 2),
        "gate_cache_hit_rate": round(hit_rate, 4),
        "gate_batched_dedup_ratio": round(dedup_ratio, 4),
    }


def run_sharded_store_benchmark(
    session: SessionState,
    num_unique: int = NUM_UNIQUE_QUERIES,
    max_workers: int = MAX_WORKERS,
    num_shards: int = NUM_SHARDS,
) -> Dict[str, float]:
    """Second-tier serving through a sharded store: cold fill, then a
    cache-cleared pass that must be answered entirely from the shards."""
    unique = _queries(session, num_unique)
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            max_workers=max_workers,
            store_path=str(Path(tmp) / "shards"),
            store_shards=num_shards,
        )
        with QKBflyService(session, service_config=config) as service:
            t0 = time.perf_counter()
            cold_results = [
                service.serve(QueryRequest(query=query)) for query in unique
            ]
            cold_seconds = time.perf_counter() - t0
            assert not any(r.cache_hit or r.store_hit for r in cold_results)

            # Restart path: cold cache, warm shards.
            service.cache.clear()
            t0 = time.perf_counter()
            store_results = [
                service.serve(QueryRequest(query=query)) for query in unique
            ]
            store_seconds = time.perf_counter() - t0
            store_hit_rate = sum(
                1 for r in store_results if r.store_hit
            ) / len(store_results)
            for cold, stored in zip(cold_results, store_results):
                assert stored.kb.to_dict() == cold.kb.to_dict(), (
                    "store-served KB differs from the pipeline run"
                )
            occupied = sum(
                1 for c in service.store.shard_entry_counts() if c > 0
            )
    qps_cold = len(unique) / cold_seconds
    qps_store = len(unique) / store_seconds
    speedup = qps_store / qps_cold
    return {
        "num_shards": num_shards,
        "shards_occupied": occupied,
        "qps_sharded_cold": round(qps_cold, 2),
        "qps_sharded_store_hit": round(qps_store, 2),
        "sharded_store_speedup": round(speedup, 2),
        "sharded_store_hit_rate": round(store_hit_rate, 4),
        "gate_sharded_store_speedup": round(
            min(speedup, SHARDED_GATE_CAP), 2
        ),
        "gate_sharded_store_hit_rate": round(store_hit_rate, 4),
    }


def run_fabric_benchmark(
    session: SessionState,
    num_unique: int = NUM_UNIQUE_QUERIES,
    max_workers: int = MAX_WORKERS,
    num_shards: int = NUM_SHARDS,
    replication_factor: int = FABRIC_REPLICATION,
) -> Dict[str, float]:
    """Second-tier serving through the multi-process shard fabric.

    Same shape as the sharded regime — cold fill, cache clear, a pass
    that must be answered entirely from the store — but every store
    operation crosses a loopback socket to a shard server, writes fan
    out to replicas asynchronously, and reads go replica-first. Two
    correctness gates (both deterministic): every store-served KB is
    bit-identical to its pipeline run, and once replication has
    drained, a full read pass lands entirely on replicas (counter
    ratio, not a timing). The read-cost comparison — the same loads
    timed through the fabric and again on the *same primary files*
    reopened locally after shutdown — is informational: it prices the
    socket + JSON framing per read on the host.
    """
    from repro.service.sharding import ShardedKbStore

    unique = _queries(session, num_unique)
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = str(Path(tmp) / "fabric")
        config = ServiceConfig(
            max_workers=max_workers,
            store_path=store_dir,
            store_shards=num_shards,
            store_backend="fabric",
            replication_factor=replication_factor,
        )
        with QKBflyService(session, service_config=config) as service:
            t0 = time.perf_counter()
            cold_results = [
                service.serve(QueryRequest(query=query)) for query in unique
            ]
            cold_seconds = time.perf_counter() - t0
            assert not any(r.cache_hit or r.store_hit for r in cold_results)

            # Restart path: cold cache, warm fabric.
            service.cache.clear()
            t0 = time.perf_counter()
            store_results = [
                service.serve(QueryRequest(query=query)) for query in unique
            ]
            store_seconds = time.perf_counter() - t0
            matched = sum(
                1
                for cold, stored in zip(cold_results, store_results)
                if stored.store_hit
                and stored.kb.to_dict() == cold.kb.to_dict()
            )
            parity = matched / len(unique)

            # Replica fan-out: with replication drained, a full pass of
            # raw loads must land on replicas. Counter deltas make the
            # rate deterministic (earlier serves may legitimately have
            # missed a lagging replica and fallen back to the primary).
            assert service.fabric is not None
            assert service.fabric.flush_replication(timeout=60.0)
            signatures = sorted(
                service.store.signatures(), key=lambda sig: sig.query
            )
            assert len(signatures) == len(unique)
            load_kwargs = [
                dict(
                    corpus_version=sig.corpus_version,
                    mode=sig.mode,
                    algorithm=sig.algorithm,
                    source=sig.source,
                    num_documents=sig.num_documents,
                    config_digest=sig.config_digest,
                )
                for sig in signatures
            ]
            before = service.fabric.stats()
            remote: List[float] = []
            for sig, kwargs in zip(signatures, load_kwargs):
                t0 = time.perf_counter()
                kb = service.store.load(sig.query, **kwargs)
                remote.append(time.perf_counter() - t0)
                assert kb is not None
            after = service.fabric.stats()
            reads = sum(
                a["replica_reads"] - b["replica_reads"]
                for a, b in zip(after["shards"], before["shards"])
            )
            hits = sum(
                a["replica_hits"] - b["replica_hits"]
                for a, b in zip(after["shards"], before["shards"])
            )
            fanout = hits / reads if reads else 0.0

        # The primaries are plain SQLite shards: reopen the same files
        # locally and time the identical loads — the delta is the wire.
        with ShardedKbStore(store_dir) as local:
            local_reads: List[float] = []
            for sig, kwargs in zip(signatures, load_kwargs):
                t0 = time.perf_counter()
                kb = local.load(sig.query, **kwargs)
                local_reads.append(time.perf_counter() - t0)
                assert kb is not None

    remote_p50_ms = _percentile(remote, 0.50) * 1000
    local_p50_ms = _percentile(local_reads, 0.50) * 1000
    return {
        "fabric_shards": num_shards,
        "fabric_replication_factor": replication_factor,
        "qps_fabric_cold": round(len(unique) / cold_seconds, 2),
        "qps_fabric_store_hit": round(len(unique) / store_seconds, 2),
        "fabric_remote_read_p50_ms": round(remote_p50_ms, 4),
        "fabric_local_read_p50_ms": round(local_p50_ms, 4),
        # Socket + JSON cost per store read relative to an in-process
        # SQLite read of the same shard files.
        "fabric_remote_overhead_ratio": round(
            remote_p50_ms / local_p50_ms if local_p50_ms else 1.0, 2
        ),
        "fabric_replica_reads": reads,
        "fabric_replica_hits": hits,
        "gate_fabric_store_parity": round(parity, 4),
        "gate_fabric_replica_fanout": round(fanout, 4),
    }


def run_process_executor_benchmark(
    session: SessionState,
    num_unique: int = NUM_UNIQUE_QUERIES,
    process_workers: int = PROCESS_WORKERS,
    num_documents: int = 2,
) -> Dict[str, float]:
    """Batched *distinct*-query QPS: thread executor vs. process pool.

    Distinct queries are the regime dedup and caching cannot help with
    — the pipeline must actually run N times, so this measures raw
    execution-tier scaling. One warm-up query per service keeps pool
    bootstrap out of the timed window. Byte-parity with the sequential
    pipeline is asserted for every process-tier result.
    """
    queries = _queries(session, num_unique + 1)
    warmup, workload = queries[0], queries[1:]
    timings: Dict[str, float] = {}
    process_results = None
    executor_kind = None
    for kind in ("thread", "process"):
        # Identical width on both tiers: the thread service runs the
        # pipeline on its max_workers threads, the process service
        # funnels the same number of front threads into as many worker
        # processes — so the comparison is N threads vs. N processes.
        config = ServiceConfig(
            max_workers=process_workers,
            executor=kind,
            process_workers=process_workers,
            num_documents=num_documents,
        )
        with QKBflyService(session, service_config=config) as service:
            # Bootstrap workers outside the clock.
            service.serve(QueryRequest(query=warmup))
            t0 = time.perf_counter()
            results = service.serve_batch(
                [QueryRequest(query=query) for query in workload]
            )
            timings[kind] = time.perf_counter() - t0
            assert service.pipeline_runs == len(workload) + 1
            if kind == "process":
                process_results = results
                executor_kind = service.stats()["pipeline_executor"]["kind"]

    reference = QKBfly.from_session(session)
    matched = sum(
        1
        for query, result in zip(workload, process_results)
        if result.kb.to_dict()
        == reference.build_kb(
            query, source="wikipedia", num_documents=num_documents
        ).to_dict()
    )
    parity = matched / len(workload)
    qps_thread = len(workload) / timings["thread"]
    qps_process = len(workload) / timings["process"]
    speedup = qps_process / qps_thread
    return {
        "cpu_count": observed_cpu_count(),
        "process_workers": process_workers,
        "process_executor_kind": executor_kind,
        "num_distinct_queries": len(workload),
        "qps_thread_distinct": round(qps_thread, 2),
        "qps_process_distinct": round(qps_process, 2),
        # > 1.0 means the process tier beat the thread tier; only
        # expected (and asserted) when the host has >= 2 CPUs.
        "process_speedup": round(speedup, 2),
        "gate_process_parity": round(parity, 4),
    }


def run_async_front_end_benchmark(
    session: SessionState,
    alone_hits: int = ASYNC_ALONE_HITS,
    num_cold: int = ASYNC_COLD_QUERIES,
) -> Dict[str, float]:
    """Event-loop cache-hit p50, alone vs. under concurrent cold work.

    The sync facade serializes a caller behind whatever its thread is
    doing; the asyncio front end promises that cache hits keep
    resolving on the loop while the executor tier grinds through slow
    pipeline runs. Measured directly: one hot query is served
    ``alone_hits`` times on an idle service (baseline p50), then served
    again in a loop that runs for exactly as long as a background batch
    of ``num_cold`` distinct cold queries (``ASYNC_COLD_DOCUMENTS``
    documents each, so every run is slow) is in flight — the gated p50
    is computed over those genuinely contended hits
    (``async_overlap_hits`` reports how many there were; uncontended
    top-up samples are used only if a starved loop thread measured
    almost nothing during the batch). The two p50s must agree within
    ``ASYNC_ISOLATION_TOLERANCE`` (plus a 10µs granularity allowance).

    On a single-CPU host this is the *strictest* regime: the loop and
    the pipeline threads share one core, so the p50 (not the tail) is
    the honest isolation signal — individual hits that straddle a GIL
    preemption slice land in the p9x outliers.
    """
    queries = _queries(session, num_cold + 1)
    hot, cold = queries[0], queries[1:]

    async def hit_once(service: AsyncQKBflyService) -> float:
        t0 = time.perf_counter()
        result = await service.serve(QueryRequest(query=hot))
        elapsed = time.perf_counter() - t0
        assert result.cache_hit, "hot query fell out of the cache"
        return elapsed

    async def scenario():
        service_config = ServiceConfig(max_workers=MAX_WORKERS)
        async with AsyncQKBflyService.from_session(
            session, service_config=service_config
        ) as service:
            warm = await service.serve(QueryRequest(query=hot))
            assert not warm.cache_hit
            # Baseline: hit latency on an otherwise idle loop.
            alone = [await hit_once(service) for _ in range(alone_hits)]

            # Contended: the same hit while cold queries occupy the
            # executor tier. The hit loop runs for the whole lifetime
            # of the background batch (bounded by ASYNC_MAX_HITS).
            background = asyncio.ensure_future(
                service.serve_batch(
                    [
                        QueryRequest(
                            query=query,
                            num_documents=ASYNC_COLD_DOCUMENTS,
                        )
                        for query in cold
                    ]
                )
            )
            overlap: List[float] = []
            while not background.done() and len(overlap) < ASYNC_MAX_HITS:
                overlap.append(await hit_once(service))
                await asyncio.sleep(0)  # let executor callbacks land
            # Degenerate overlap (a starved loop thread can miss most
            # of the batch): top the sample up with post-batch hits so
            # p50 stays meaningful — but keep them out of the overlap
            # count, which must report only genuinely contended hits.
            topup: List[float] = []
            while len(overlap) + len(topup) < ASYNC_MIN_OVERLAP_HITS:
                topup.append(await hit_once(service))
            cold_results = await background
            assert not any(r.cache_hit for r in cold_results)
            return alone, overlap, topup, cold_results

    alone, overlap, topup, cold_results = asyncio.run(scenario())
    # The gated p50 uses contended samples only, unless overlap was so
    # degenerate that the uncontended top-up is all there is.
    during = (
        overlap if len(overlap) >= ASYNC_MIN_OVERLAP_HITS
        else overlap + topup
    )

    # Correctness: concurrently served cold KBs match sequential runs.
    reference = QKBfly.from_session(session)
    for query, result in zip(cold, cold_results):
        expected = reference.build_kb(
            query, source="wikipedia", num_documents=ASYNC_COLD_DOCUMENTS
        )
        assert result.kb.to_dict() == expected.to_dict(), (
            f"async cold KB for {query!r} differs from the sequential run"
        )

    p50_alone_ms = _percentile(alone, 0.50) * 1000
    p50_during_ms = _percentile(during, 0.50) * 1000
    p95_during_ms = _percentile(during, 0.95) * 1000
    ratio = p50_during_ms / p50_alone_ms if p50_alone_ms else 1.0
    # Gate form: 1.0 when hits are unaffected, degrading toward 0 as
    # cold work bleeds into hit latency (check_perf_regression fails
    # when the value drops >20% below the committed baseline).
    isolation = min(
        (p50_alone_ms + ASYNC_ISOLATION_EPSILON_MS)
        / max(p50_during_ms, 1e-9),
        1.0,
    )
    return {
        "async_hit_p50_alone_ms": round(p50_alone_ms, 4),
        "async_hit_p50_during_cold_ms": round(p50_during_ms, 4),
        "async_hit_p95_during_cold_ms": round(p95_during_ms, 4),
        "async_overlap_hits": len(overlap),
        "async_cold_queries": len(cold),
        "async_isolation_ratio": round(ratio, 4),
        "gate_async_isolation": round(isolation, 4),
    }


def run_gateway_benchmark(
    session: SessionState, hits: int = GATEWAY_HITS
) -> Dict[str, float]:
    """HTTP serving cost: cache hits through the gateway vs. direct.

    The same hot query is served ``hits`` times twice — first as direct
    envelope calls on the event loop (:meth:`AsyncQKBflyService.serve`,
    the floor any transport pays), then over real loopback HTTP through
    :class:`HttpGateway` on a keep-alive ``http.client`` connection
    (one request/response cycle each: JSON envelope in, full KB payload
    out). The client runs on a worker thread, so the loop it hammers is
    simultaneously parsing, serving, and framing — the deployment
    shape. Correctness is gated absolutely: every HTTP response must be
    200 and every one must be served from the cache; the overhead ratio
    (HTTP p50 / direct p50) is committed as an informational metric,
    because it measures socket+JSON cost on the host, not serving-layer
    health.
    """
    import http.client

    def http_pass(host: str, port: int, query: str, count: int):
        connection = http.client.HTTPConnection(host, port)
        body = json.dumps({"query": query, "client_id": "bench"})
        headers = {"Content-Type": "application/json"}
        latencies: List[float] = []
        statuses: List[int] = []
        served: List[str] = []
        try:
            for _ in range(count):
                t0 = time.perf_counter()
                connection.request("POST", "/v1/query", body, headers)
                response = connection.getresponse()
                payload = json.loads(response.read())
                latencies.append(time.perf_counter() - t0)
                statuses.append(response.status)
                served.append(payload.get("served_from"))
        finally:
            connection.close()
        return latencies, statuses, served

    async def scenario():
        service_config = ServiceConfig(max_workers=MAX_WORKERS)
        service = AsyncQKBflyService.from_session(
            session, service_config=service_config
        )
        async with HttpGateway(service, own_service=True) as gateway:
            query = _queries(session, 1)[0]
            request = QueryRequest(query=query, client_id="bench")
            warm = await service.serve(request)
            assert warm.served_from == "executor"

            direct: List[float] = []
            for _ in range(hits):
                t0 = time.perf_counter()
                result = await service.serve(request)
                direct.append(time.perf_counter() - t0)
                assert result.served_from == "cache"

            loop = asyncio.get_running_loop()
            latencies, statuses, served = await loop.run_in_executor(
                None, http_pass, gateway.host, gateway.port, query, hits
            )
            return direct, latencies, statuses, served

    direct, latencies, statuses, served = asyncio.run(scenario())
    success_rate = sum(1 for s in statuses if s == 200) / len(statuses)
    cache_rate = sum(1 for s in served if s == "cache") / len(served)
    direct_p50_ms = _percentile(direct, 0.50) * 1000
    gateway_p50_ms = _percentile(latencies, 0.50) * 1000
    return {
        "gateway_hits": len(statuses),
        "qps_direct_async": round(len(direct) / sum(direct), 2),
        "qps_gateway_http": round(len(latencies) / sum(latencies), 2),
        "direct_hit_p50_ms": round(direct_p50_ms, 4),
        "gateway_hit_p50_ms": round(gateway_p50_ms, 4),
        "gateway_hit_p95_ms": round(_percentile(latencies, 0.95) * 1000, 4),
        # HTTP cost per hit relative to the in-process floor: socket
        # round-trip + request parse + envelope JSON both ways.
        "gateway_overhead_ratio": round(
            gateway_p50_ms / direct_p50_ms if direct_p50_ms else 1.0, 2
        ),
        "gate_gateway_success_rate": round(success_rate, 4),
        "gate_gateway_cache_hit_rate": round(cache_rate, 4),
    }


def run_cost_admission_benchmark(
    session: SessionState,
    alone_hits: int = COST_ALONE_HITS,
) -> Dict[str, float]:
    """Cache-hit p50 under adversarially expensive cold traffic, with
    cost-aware admission shedding the adversary.

    One service, two clients, one tiny cost budget
    (``COST_BUDGET_PER_SECOND`` pipeline-seconds/second, burst
    ``COST_BUDGET_BURST``s). The *reader* serves one query cold, then
    hammers it as cache hits — first alone (baseline p50), then for the
    whole lifetime of an *adversary* thread issuing distinct
    ``COST_COLD_DOCUMENTS``-document cold queries (each run is ~3x the
    1-document pipeline cost). The adversary's spend drains its bucket
    within a few requests, after which its traffic is rejected with
    ``CostLimited`` in microseconds instead of occupying the pipeline —
    which is exactly why the reader's p50 must stay inside the same
    ±10% band the async-isolation scenario enforces.

    Gated absolutely: the adversary sees at least one cost rejection
    and the reader sees none (``gate_cost_budget_enforced``); gated
    relatively: the alone/during p50 ratio
    (``gate_cost_hit_isolation``). The shed rate and absolute
    latencies are informational (they measure the host and the chosen
    budget, not serving-layer health).
    """
    import threading

    from repro.service.api import CostLimited, RateLimited

    queries = _queries(session, 24)
    hot, cold_pool = queries[0], queries[1:]
    config = ServiceConfig(
        max_workers=MAX_WORKERS,
        cost_budget_per_second=COST_BUDGET_PER_SECOND,
        cost_budget_burst=COST_BUDGET_BURST,
    )
    counters = {"admitted": 0, "rejected": 0, "requests": 0}

    def adversary(service: QKBflyService) -> None:
        i = 0
        while (
            counters["rejected"] < COST_MIN_REJECTIONS
            and counters["requests"] < COST_MAX_REQUESTS
        ):
            # Fresh (query, num_documents) pairs each pass, so the
            # traffic stays genuinely cold — a repeated key would be a
            # cache hit, refunded as free.
            query = cold_pool[i % len(cold_pool)]
            documents = COST_COLD_DOCUMENTS + i // len(cold_pool)
            i += 1
            counters["requests"] += 1
            try:
                service.serve(
                    QueryRequest(
                        query=query,
                        num_documents=documents,
                        client_id="adversary",
                    )
                )
                counters["admitted"] += 1
            except (CostLimited, RateLimited):
                counters["rejected"] += 1

    reader_rejections = 0
    with QKBflyService(session, service_config=config) as service:
        request = QueryRequest(query=hot, client_id="reader")
        warm = service.serve(request)
        assert warm.served_from == "executor"

        def hit_once() -> float:
            t0 = time.perf_counter()
            result = service.serve(request)
            assert result.cache_hit, "hot query fell out of the cache"
            return time.perf_counter() - t0

        alone = [hit_once() for _ in range(alone_hits)]
        attacker = threading.Thread(target=adversary, args=(service,))
        attacker.start()
        during: List[float] = []
        while attacker.is_alive() and len(during) < COST_MAX_HITS:
            try:
                during.append(hit_once())
            except (CostLimited, RateLimited):
                reader_rejections += 1
        attacker.join(timeout=120)
        # Degenerate overlap (the attacker can finish almost instantly
        # once rejections dominate): top up so p50 stays meaningful.
        while len(during) < ASYNC_MIN_OVERLAP_HITS:
            during.append(hit_once())
        spend = service.stats()["admission"]["client_spend"]

    p50_alone_ms = _percentile(alone, 0.50) * 1000
    p50_during_ms = _percentile(during, 0.50) * 1000
    isolation = min(
        (p50_alone_ms + ASYNC_ISOLATION_EPSILON_MS)
        / max(p50_during_ms, 1e-9),
        1.0,
    )
    enforced = (
        1.0
        if counters["rejected"] >= 1 and reader_rejections == 0
        else 0.0
    )
    return {
        "cost_budget_per_second": COST_BUDGET_PER_SECOND,
        "cost_budget_burst": COST_BUDGET_BURST,
        "cost_adversary_requests": counters["requests"],
        "cost_adversary_admitted": counters["admitted"],
        "cost_adversary_rejected": counters["rejected"],
        "cost_shed_rate": round(
            counters["rejected"] / max(1, counters["requests"]), 4
        ),
        "cost_reader_rejections": reader_rejections,
        "cost_adversary_spend_seconds": round(
            spend.get("adversary", 0.0), 4
        ),
        "cost_hit_p50_alone_ms": round(p50_alone_ms, 4),
        "cost_hit_p50_during_ms": round(p50_during_ms, 4),
        "cost_isolation_ratio": round(
            p50_during_ms / p50_alone_ms if p50_alone_ms else 1.0, 4
        ),
        "gate_cost_hit_isolation": round(isolation, 4),
        "gate_cost_budget_enforced": enforced,
    }


def run_search_benchmark(
    session: SessionState,
    num_entries: int = SEARCH_ENTRIES,
    num_shards: int = NUM_SHARDS,
) -> Dict[str, float]:
    """Fact search over a populated sharded store: scan, walk, FTS.

    ``num_entries`` KBs (each ``SEARCH_FACTS_PER_ENTRY`` facts about
    the session's own entities) are saved into a sharded store, whose
    save hook indexes them incrementally. Three measurements:

    1. *full-scan control* — one MAX-limit page returning the whole
       corpus, the thing pagination replaces (informational p50);
    2. *keyset walk* — the corpus again in ``SEARCH_PAGE_LIMIT``-row
       pages while a writer thread lands ``SEARCH_CONCURRENT_WRITES``
       fresh saves mid-walk. ``gate_search_walk_complete`` is 1.0 only
       when every pre-walk fact came back exactly once and no row was
       duplicated — the correctness contract of ``{sortkey}|{rowid}``
       cursors under concurrent writes;
    3. *FTS lookups* — bm25-ranked queries for known subjects, each of
       which must actually find its fact (informational p50).
    """
    import threading

    from repro.kb.facts import ARG_ENTITY, Argument, Fact, KnowledgeBase
    from repro.service.search.query import (
        MAX_SEARCH_LIMIT,
        search_paginated,
        store_backends,
    )
    from repro.service.sharding import ShardedKbStore

    names = _queries(session, NUM_UNIQUE_QUERIES)

    def entry_kb(index: int) -> KnowledgeBase:
        kb = KnowledgeBase()
        for j in range(SEARCH_FACTS_PER_ENTRY):
            name = names[(index + j) % len(names)]
            kb.add_fact(
                Fact(
                    subject=Argument(
                        ARG_ENTITY, f"E{index}_{j}", f"{name} role {index}.{j}"
                    ),
                    predicate=f"pred_{j}",
                    objects=[
                        Argument(ARG_ENTITY, "E_OBJ", f"object {index}.{j}")
                    ],
                    pattern=f"pat_{j}",
                    confidence=0.9,
                    doc_id=f"doc_{index}",
                    sentence_index=j,
                )
            )
        return kb

    with tempfile.TemporaryDirectory() as tmp:
        with ShardedKbStore(
            str(Path(tmp) / "search"), num_shards=num_shards
        ) as store:
            expected = set()
            for i in range(num_entries):
                store.save(f"search_{i}", entry_kb(i), corpus_version="v1")
                for j in range(SEARCH_FACTS_PER_ENTRY):
                    name = names[(i + j) % len(names)]
                    expected.add((f"search_{i}", f"{name} role {i}.{j}"))

            # Full-table-scan control: the whole corpus as one page.
            fullscan: List[float] = []
            for _ in range(SEARCH_TIMING_PASSES):
                t0 = time.perf_counter()
                page = search_paginated(
                    store_backends(store), "facts", limit=MAX_SEARCH_LIMIT
                )
                fullscan.append(time.perf_counter() - t0)
            assert len(page["results"]) == min(
                len(expected), MAX_SEARCH_LIMIT
            )

            # Keyset walk under concurrent writes.
            def writer() -> None:
                for i in range(SEARCH_CONCURRENT_WRITES):
                    store.save(
                        f"mid_{i}", entry_kb(num_entries + i),
                        corpus_version="v1",
                    )

            walker = threading.Thread(target=writer)
            page_latencies: List[float] = []
            walked: List[Dict] = []
            cursor = None
            t0 = time.perf_counter()
            walker.start()
            try:
                while True:
                    t_page = time.perf_counter()
                    page = search_paginated(
                        store_backends(store),
                        "facts",
                        limit=SEARCH_PAGE_LIMIT,
                        cursor=cursor,
                    )
                    page_latencies.append(time.perf_counter() - t_page)
                    walked.extend(page["results"])
                    if not page["has_more"]:
                        break
                    cursor = page["next_cursor"]
            finally:
                walker.join(timeout=120)
            walk_seconds = time.perf_counter() - t0

            gids = [row["gid"] for row in walked]
            seen = [
                (row["query"], row["subject"])
                for row in walked
                if row["query"].startswith("search_")
            ]
            complete = (
                len(gids) == len(set(gids))
                and len(seen) == len(set(seen))
                and set(seen) == expected
            )

            # FTS lookups: every query must actually find its fact.
            fts: List[float] = []
            found = 0
            for i in range(SEARCH_TIMING_PASSES):
                target = f"role {i}.0"
                t0 = time.perf_counter()
                ranked = search_paginated(
                    store_backends(store),
                    "facts",
                    q=target,
                    sort="rank",
                    limit=5,
                )
                fts.append(time.perf_counter() - t0)
                found += any(
                    target in row["subject"] for row in ranked["results"]
                )
            assert found == SEARCH_TIMING_PASSES, (
                "an FTS lookup failed to find an indexed fact"
            )

    return {
        "search_entries": num_entries,
        "search_facts_indexed": len(expected),
        "search_walk_pages": len(page_latencies),
        "search_concurrent_writes": SEARCH_CONCURRENT_WRITES,
        "qps_search_scan": round(len(walked) / walk_seconds, 2),
        "search_page_p50_ms": round(
            _percentile(page_latencies, 0.50) * 1000, 4
        ),
        "search_fullscan_p50_ms": round(
            _percentile(fullscan, 0.50) * 1000, 4
        ),
        "search_fts_p50_ms": round(_percentile(fts, 0.50) * 1000, 4),
        "gate_search_walk_complete": 1.0 if complete else 0.0,
    }


def run_stage_cache_benchmark(
    session: SessionState,
    num_queries: int = STAGE_UNIQUE_QUERIES,
) -> Dict[str, float]:
    """Partial reuse across overlapping queries via the stage cache.

    The workload is ``num_queries`` base queries plus one variant per
    base ("<name> spouse"): every variant is a *distinct* query-cache
    key, so the result tiers cannot help — but it retrieves the same
    documents, so the stage cache serves its NLP annotation and clause
    extraction from memory and only the graph stages re-run.

    Three passes over the same workload:

    1. an uncached sequential ``QKBfly`` run (the parity reference —
       also what every pre-stage-cache release produced);
    2. a *control* service with ``stage_cache_enabled=False``: the
       overlap pass at full pipeline cost;
    3. the benched service with a fresh stage cache: a cold base pass
       (fills the stage tiers) and the overlap pass (reuses them).

    Gated deterministically: ``gate_overlap_reuse`` is the stage
    cache's hit ratio over the workload (pure lookup counts — BM25,
    annotation, and extraction are deterministic, so this number is
    machine-independent) and ``gate_stage_cold_parity`` is the
    fraction of stage-cached results bit-identical to the uncached
    reference. The p50s and the control speedup are informational.
    """
    base = _queries(session, num_queries)
    variants = [f"{query} spouse" for query in base]

    # Reference: no stage cache anywhere. Earlier scenarios in a full
    # run installed one on the shared session (it is the default), so
    # it is explicitly removed — this scenario must build its own cold
    # cache to measure honestly.
    session.stage_cache = None
    reference = QKBfly.from_session(session)
    expected = {
        query: reference.build_kb(
            query, source="wikipedia", num_documents=1
        ).to_dict()
        for query in base + variants
    }

    # Control: stage caching off, overlap pass at full pipeline cost.
    control_config = ServiceConfig(
        max_workers=MAX_WORKERS, stage_cache_enabled=False
    )
    with QKBflyService(session, service_config=control_config) as control:
        for query in base:
            control.serve(QueryRequest(query=query))
        control_latencies = [
            control.serve(QueryRequest(query=query)).seconds
            for query in variants
        ]
    assert session.stage_cache is None, (
        "a stage_cache_enabled=False service must not install a cache"
    )

    # Benched: a fresh stage cache, installed by the service itself.
    config = ServiceConfig(max_workers=MAX_WORKERS)
    with QKBflyService(session, service_config=config) as service:
        assert session.stage_cache is not None
        cold_results = [
            service.serve(QueryRequest(query=query)) for query in base
        ]
        overlap_results = [
            service.serve(QueryRequest(query=query)) for query in variants
        ]
        assert not any(
            r.cache_hit or r.store_hit
            for r in cold_results + overlap_results
        ), "stage-cache workload leaked into the result tiers"
        stage_stats = service.stats()["stage_cache"]

    matched = sum(
        1
        for query, result in zip(
            base + variants, cold_results + overlap_results
        )
        if result.kb.to_dict() == expected[query]
    )
    parity = matched / len(expected)
    cold_latencies = [r.seconds for r in cold_results]
    overlap_latencies = [r.seconds for r in overlap_results]
    control_p50_ms = _percentile(control_latencies, 0.50) * 1000
    overlap_p50_ms = _percentile(overlap_latencies, 0.50) * 1000
    return {
        "stage_queries": len(base),
        "stage_workload_size": len(expected),
        "stage_cold_p50_ms": round(
            _percentile(cold_latencies, 0.50) * 1000, 3
        ),
        "stage_overlap_p50_ms": round(overlap_p50_ms, 3),
        "stage_nocache_overlap_p50_ms": round(control_p50_ms, 3),
        # How much the overlap pass gains over the uncached control;
        # informational (graph/densify still run, and on a loaded host
        # the two timed passes see different noise).
        "stage_overlap_speedup": round(
            control_p50_ms / overlap_p50_ms if overlap_p50_ms else 1.0, 2
        ),
        "stage_cache_hits": stage_stats["hits"],
        "stage_cache_misses": stage_stats["misses"],
        # Deterministic lookup-count ratio over the whole workload.
        "gate_overlap_reuse": round(stage_stats["reuse_ratio"], 4),
        "gate_stage_cold_parity": round(parity, 4),
    }


def run_ingest_benchmark(session: SessionState) -> Dict[str, float]:
    """Live ingest: entity-granular invalidation across a warm tier.

    Warm INGEST_WARM_QUERIES query-cache entries, subscribe to the
    first INGEST_TARGET_QUERIES of them, then feed INGEST_DOCS
    breaking documents that mention only those targets. Each warm
    query is then re-served: entries touched by a bumped entity must
    be cold (rebuilt), every other entry must still be a cache hit.

    ``gate_ingest_selective_invalidation`` is the fraction of warm
    queries whose post-ingest state matches that prediction — a pure
    count over deterministic matching (the same `query_touches` rule
    every tier applies), so the gate is machine-independent. Ingest
    and re-query latencies are informational.
    """
    from repro.service.ingest import query_touches

    # A private session: ingest swaps the session's search engine
    # (copy-on-write), and later scenarios must see the shared
    # session's corpus untouched.
    session = SessionState(
        entity_repository=session.entity_repository,
        pattern_repository=session.pattern_repository,
        statistics=session.statistics,
        search_engine=session.search_engine,
    )
    config = ServiceConfig(max_workers=MAX_WORKERS, num_documents=1)
    with QKBflyService(session, service_config=config) as service:
        warm = _queries(session, INGEST_WARM_QUERIES)
        targets = warm[:INGEST_TARGET_QUERIES]
        for query in warm:
            service.serve(QueryRequest(query=query))

        subscription = service.watch(
            WatchRequest(entities=targets, client_id="bench-monitor")
        )
        bumped: set = set()
        ingest_latencies = []
        for index in range(INGEST_DOCS):
            target = targets[index % len(targets)]
            started = time.perf_counter()
            ack = service.ingest(
                IngestRequest(
                    doc_id=f"bench-live-{index}",
                    text=f"{target} announced a new venture.",
                    source="news",
                )
            )
            ingest_latencies.append(time.perf_counter() - started)
            bumped.update(ack.touched_entities)

        correct = 0
        survivors = 0
        expected_cold = 0
        requery_latencies = []
        for query in warm:
            result = service.serve(QueryRequest(query=query))
            requery_latencies.append(result.seconds)
            observed_warm = result.served_from == "cache"
            expected_warm = not any(
                query_touches(query, entity) for entity in bumped
            )
            expected_cold += not expected_warm
            survivors += observed_warm
            correct += observed_warm == expected_warm
        deltas = service.poll_deltas(
            subscription["subscription_id"], after=0, timeout=1.0
        )["deltas"]

    return {
        "ingest_docs": INGEST_DOCS,
        "ingest_warm_queries": len(warm),
        "ingest_touched_queries": expected_cold,
        "ingest_cache_survivors": survivors,
        "ingest_deltas_delivered": len(deltas),
        "ingest_p50_ms": round(
            _percentile(ingest_latencies, 0.50) * 1000, 3
        ),
        "ingest_requery_p50_ms": round(
            _percentile(requery_latencies, 0.50) * 1000, 3
        ),
        # Fraction of warm queries whose post-ingest cache state
        # matches the query_touches prediction (1.0 = exactly the
        # intersecting entries cooled, everything else survived).
        "gate_ingest_selective_invalidation": round(
            correct / len(warm), 4
        ),
    }


def run_full_benchmark(world: World) -> Dict[str, float]:
    """All scenarios over one shared session, merged into one dict."""
    session = SessionState.from_world(world)
    metrics = run_throughput_benchmark(world, session=session)
    metrics.update(run_sharded_store_benchmark(session))
    metrics.update(run_fabric_benchmark(session))
    metrics.update(run_process_executor_benchmark(session))
    metrics.update(run_async_front_end_benchmark(session))
    metrics.update(run_gateway_benchmark(session))
    metrics.update(run_cost_admission_benchmark(session))
    metrics.update(run_ingest_benchmark(session))
    # The search scenario must run before the stage-cache one: that
    # scenario removes the shared session's stage cache to measure
    # honestly, and this ordering keeps the session untouched here.
    metrics.update(run_search_benchmark(session))
    metrics.update(run_stage_cache_benchmark(session))
    return metrics


def test_service_throughput(world):
    """Pytest entry point: warm and batched must be >= 2x cold."""
    metrics = run_full_benchmark(world)
    print("\nServing-layer throughput:")
    for key, value in metrics.items():
        print(f"  {key:>24}: {value}")
    assert metrics["warm_speedup"] >= 2.0, (
        "warm-cache throughput must be at least 2x cold throughput"
    )
    assert metrics["batched_speedup"] >= 2.0, (
        "batched throughput must be at least 2x cold throughput"
    )
    # Only one pipeline run per distinct query in the batched regime.
    assert metrics["pipeline_runs_batched"] == metrics["num_unique_queries"]
    _assert_scaleout_metrics(metrics)


def _assert_scaleout_metrics(metrics: Dict[str, float]) -> None:
    """Floors for the sharded-store and process-executor scenarios."""
    assert metrics["sharded_store_hit_rate"] == 1.0, (
        "every cache-cleared query must be served from the shards"
    )
    assert metrics["sharded_store_speedup"] >= 2.0, (
        "store-hit serving must be at least 2x the pipeline path"
    )
    assert metrics["shards_occupied"] > 1, "workload landed on one shard"
    assert metrics["gate_fabric_store_parity"] == 1.0, (
        "every cache-cleared query must be served from the fabric, "
        "bit-identical to its pipeline run"
    )
    assert metrics["gate_fabric_replica_fanout"] == 1.0, (
        "with replication drained, every raw read must land on a "
        f"replica (hit {metrics['fabric_replica_hits']} of "
        f"{metrics['fabric_replica_reads']})"
    )
    assert metrics["gate_process_parity"] == 1.0, (
        "process-tier KBs must be byte-identical to sequential runs"
    )
    assert metrics["gate_gateway_success_rate"] == 1.0, (
        "every gateway request must be answered 200"
    )
    assert metrics["gate_gateway_cache_hit_rate"] == 1.0, (
        "every repeated gateway query must be served from the cache"
    )
    floor = 1.0 / (1.0 + ASYNC_ISOLATION_TOLERANCE)
    assert metrics["gate_async_isolation"] >= round(floor, 4), (
        f"async cache-hit p50 degraded beyond ±10% under concurrent "
        f"cold queries: alone={metrics['async_hit_p50_alone_ms']}ms, "
        f"during={metrics['async_hit_p50_during_cold_ms']}ms"
    )
    assert metrics["gate_cost_budget_enforced"] == 1.0, (
        "the cost budget must shed the adversary "
        f"({metrics['cost_adversary_rejected']} rejections over "
        f"{metrics['cost_adversary_requests']} requests) without ever "
        f"rejecting the reader "
        f"({metrics['cost_reader_rejections']} rejections)"
    )
    assert metrics["gate_cost_hit_isolation"] >= round(floor, 4), (
        f"cache-hit p50 degraded beyond ±10% under adversarially "
        f"expensive cold traffic despite cost shedding: "
        f"alone={metrics['cost_hit_p50_alone_ms']}ms, "
        f"during={metrics['cost_hit_p50_during_ms']}ms"
    )
    assert metrics["gate_ingest_selective_invalidation"] >= 0.8, (
        "an ingest cooled warm entries it does not touch (or left a "
        "touched entry warm): "
        f"{metrics['ingest_cache_survivors']} survivors of "
        f"{metrics['ingest_warm_queries']} warm queries with "
        f"{metrics['ingest_touched_queries']} touched"
    )
    assert metrics["ingest_deltas_delivered"] == metrics["ingest_docs"], (
        "every breaking document must deliver exactly one delta to "
        "the watching subscription"
    )
    assert metrics["gate_search_walk_complete"] == 1.0, (
        "the paginated search walk must return every pre-walk fact "
        "exactly once despite concurrent writes"
    )
    assert metrics["gate_stage_cold_parity"] == 1.0, (
        "stage-cached KBs must be byte-identical to uncached runs"
    )
    assert metrics["gate_overlap_reuse"] > 0.0, (
        "overlapping queries produced no stage-cache reuse at all"
    )
    if metrics["cpu_count"] >= 2 and metrics["process_executor_kind"] == "process":
        # The whole point of the process tier: distinct-query QPS beats
        # the thread pool once real parallelism exists. The floor keeps
        # a 10% margin — this is one timing ratio over a short
        # workload, and shared CI runners are noisy.
        assert metrics["process_speedup"] >= 0.9, (
            f"process tier slower than threads on {metrics['cpu_count']} CPUs"
        )
    elif metrics["cpu_count"] < 2:
        print(
            "NOTE: single-CPU host — the process tier cannot beat the "
            "thread baseline here (no parallelism to win back its IPC "
            "overhead); process_speedup is informational on this run."
        )


def main() -> None:
    output = "BENCH_service.json"
    args = sys.argv[1:]
    if args and args[0] == "--output":
        output = args[1]
    world = World(WorldConfig(), seed=BENCH_SEED)
    metrics = run_full_benchmark(world)
    for key, value in metrics.items():
        print(f"{key:>28}: {value}")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {output}")
    if metrics["warm_speedup"] < 2.0 or metrics["batched_speedup"] < 2.0:
        print("FAIL: serving layer below the 2x throughput floor")
        raise SystemExit(1)
    try:
        _assert_scaleout_metrics(metrics)
    except AssertionError as error:
        print(f"FAIL: {error}")
        raise SystemExit(1) from error


if __name__ == "__main__":
    main()
