"""Serving-layer throughput: cold vs. warm-cache vs. batched execution.

Models a serving workload where trending queries repeat (each distinct
query appears ``DUP_FACTOR`` times, round-robin interleaved) and
measures three regimes over one shared session:

- **cold** — empty cache, each distinct query once, sequential: the
  full pipeline cost, and the source of p50/p95 latency;
- **warm** — the same queries again on the hot cache;
- **batched** — a fresh service fed the full duplicated workload
  through the batch executor (thread pool + single-flight dedup).

Emits ``BENCH_service.json`` when run as a script; CI gates on the
*relative* metrics (speedups, hit rate — stable across machines, capped
at ``GATE_CAP`` so gigantic cache speedups don't add noise) via
``benchmarks/check_perf_regression.py``. Correctness is asserted inline:
batched results must be byte-identical to sequential ``QKBfly`` runs.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

try:
    import repro  # noqa: F401  (probe: is the package importable?)
except ImportError:  # standalone `python benchmarks/...` without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.qkbfly import QKBfly, SessionState  # noqa: E402
from repro.corpus.world import World, WorldConfig  # noqa: E402
from repro.service.service import QKBflyService, ServiceConfig  # noqa: E402

BENCH_SEED = 7
NUM_UNIQUE_QUERIES = 12
DUP_FACTOR = 3
MAX_WORKERS = 4
# Speedups are capped before gating: beyond this they only measure timer
# noise on near-instant cache hits, not serving-layer health.
GATE_CAP = 20.0


def _queries(session: SessionState, count: int) -> List[str]:
    entities = sorted(
        session.entity_repository.entities(),
        key=lambda e: (-e.prominence, e.entity_id),
    )
    return [e.canonical_name for e in entities[:count]]


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_throughput_benchmark(
    world: World,
    num_unique: int = NUM_UNIQUE_QUERIES,
    dup_factor: int = DUP_FACTOR,
    max_workers: int = MAX_WORKERS,
) -> Dict[str, float]:
    """Measure all three regimes; returns the metrics dictionary."""
    session = SessionState.from_world(world)
    unique = _queries(session, num_unique)
    workload = [unique[i % len(unique)] for i in range(num_unique * dup_factor)]

    # Cold: fresh service, one pass over the distinct queries.
    cold_service = QKBflyService(
        session, service_config=ServiceConfig(max_workers=max_workers)
    )
    latencies = []
    t0 = time.perf_counter()
    cold_results = []
    for query in unique:
        result = cold_service.query(query)
        latencies.append(result.seconds)
        cold_results.append(result)
    cold_seconds = time.perf_counter() - t0
    assert not any(r.cache_hit for r in cold_results)

    # Warm: same queries on the now-hot cache.
    t0 = time.perf_counter()
    warm_results = [cold_service.query(query) for query in unique]
    warm_seconds = time.perf_counter() - t0
    assert all(r.cache_hit for r in warm_results)

    # Batched: fresh service, the duplicated workload in one batch.
    batch_service = QKBflyService(
        session, service_config=ServiceConfig(max_workers=max_workers)
    )
    t0 = time.perf_counter()
    batch_results = batch_service.batch_query(workload)
    batch_seconds = time.perf_counter() - t0

    # Correctness: batched results byte-identical to sequential runs.
    reference = QKBfly.from_session(session)
    expected = {
        query: reference.build_kb(
            query, source="wikipedia", num_documents=1
        ).to_dict()
        for query in unique
    }
    for query, result in zip(workload, batch_results):
        assert result.kb.to_dict() == expected[query], (
            f"batched KB for {query!r} differs from the sequential run"
        )

    qps_cold = len(unique) / cold_seconds
    qps_warm = len(unique) / warm_seconds
    qps_batched = len(workload) / batch_seconds
    warm_speedup = qps_warm / qps_cold
    batched_speedup = qps_batched / qps_cold
    # Hit rate over the cold+warm passes (N misses then N hits -> 0.5);
    # batched duplicates are absorbed by single-flight dedup before they
    # reach the cache, so they are reported as a dedup ratio instead.
    hit_rate = cold_service.cache.stats()["hit_rate"]
    dedup_ratio = 1.0 - batch_service.pipeline_runs / len(workload)
    cold_service.close()
    batch_service.close()
    return {
        "num_unique_queries": len(unique),
        "workload_size": len(workload),
        "dup_factor": dup_factor,
        "max_workers": max_workers,
        "qps_cold": round(qps_cold, 2),
        "qps_warm": round(qps_warm, 2),
        "qps_batched": round(qps_batched, 2),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
        "mean_cold_ms": round(statistics.mean(latencies) * 1000, 3),
        "warm_speedup": round(warm_speedup, 2),
        "batched_speedup": round(batched_speedup, 2),
        "cache_hit_rate": round(hit_rate, 4),
        "batched_dedup_ratio": round(dedup_ratio, 4),
        "pipeline_runs_batched": batch_service.pipeline_runs,
        # Gate metrics: what CI compares against the committed baseline.
        "gate_warm_speedup": round(min(warm_speedup, GATE_CAP), 2),
        "gate_batched_speedup": round(min(batched_speedup, GATE_CAP), 2),
        "gate_cache_hit_rate": round(hit_rate, 4),
        "gate_batched_dedup_ratio": round(dedup_ratio, 4),
    }


def test_service_throughput(world):
    """Pytest entry point: warm and batched must be >= 2x cold."""
    metrics = run_throughput_benchmark(world)
    print("\nServing-layer throughput:")
    for key, value in metrics.items():
        print(f"  {key:>24}: {value}")
    assert metrics["warm_speedup"] >= 2.0, (
        "warm-cache throughput must be at least 2x cold throughput"
    )
    assert metrics["batched_speedup"] >= 2.0, (
        "batched throughput must be at least 2x cold throughput"
    )
    # Only one pipeline run per distinct query in the batched regime.
    assert metrics["pipeline_runs_batched"] == metrics["num_unique_queries"]


def main() -> None:
    output = "BENCH_service.json"
    args = sys.argv[1:]
    if args and args[0] == "--output":
        output = args[1]
    world = World(WorldConfig(), seed=BENCH_SEED)
    metrics = run_throughput_benchmark(world)
    for key, value in metrics.items():
        print(f"{key:>24}: {value}")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {output}")
    if metrics["warm_speedup"] < 2.0 or metrics["batched_speedup"] < 2.0:
        print("FAIL: serving layer below the 2x throughput floor")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
