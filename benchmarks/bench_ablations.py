"""Ablation benches for the design choices called out in DESIGN.md.

- weight-family ablation (drop prior / context / coherence / type
  signatures) measured on NED precision — the paper attributes the
  pipeline variant's losses to the missing type-signature feature;
- pronoun antecedent window sweep (the paper fixes 5 sentences);
- confidence threshold tau sweep (0.5 default vs 0.9 precision mode);
- parser ablation: greedy vs chart inside the full system.
"""

from __future__ import annotations

import time

import pytest

from repro.core.qkbfly import QKBfly, QKBflyConfig
from repro.datasets.defie_wikipedia import build_defie_wikipedia
from repro.eval.assess import FactMatcher, ned_verdicts
from repro.eval.tables import print_table
from repro.graph.weights import WeightParameters

NUM_DOCS = 25


@pytest.fixture(scope="module")
def dataset(world):
    return build_defie_wikipedia(world, num_documents=NUM_DOCS)


def _ned_precision(world, system, dataset):
    verdicts = []
    for doc in dataset:
        annotated = system.nlp.annotate_text(doc.text, doc_id=doc.doc_id)
        _, graph, result = system.process_document(annotated)
        verdicts.extend(ned_verdicts(world, doc, graph, result))
    return sum(verdicts) / max(len(verdicts), 1), len(verdicts)


def test_ablation_weight_families(world, dataset, benchmark):
    variants = {
        "full": WeightParameters(),
        "-prior": WeightParameters(alpha1=0.0),
        "-context": WeightParameters(alpha2=0.0),
        "-coherence": WeightParameters(alpha3=0.0),
        "-type signatures": WeightParameters(alpha4=0.0),
    }
    rows = []
    precisions = {}
    for name, params in variants.items():
        system = QKBfly.from_world(
            world, QKBflyConfig(weights=params), with_search=False
        )
        precision, n = _ned_precision(world, system, dataset)
        precisions[name] = precision
        rows.append((name, f"{precision:.3f}", n))
    print_table(
        "Ablation: edge-weight feature families (NED precision)",
        ("Variant", "Precision", "#Judged"),
        rows,
    )
    assert precisions["full"] >= precisions["-type signatures"] - 0.02, (
        "removing type signatures must not improve NED"
    )
    system = QKBfly.from_world(world, with_search=False)
    sample = dataset[0]
    benchmark(lambda: system.process_text(sample.text))


def test_ablation_pronoun_window(world, dataset, benchmark):
    import repro.graph.coref as coref

    rows = []
    counts = {}
    original = coref.PRONOUN_WINDOW_SENTENCES
    try:
        for window in (1, 2, 5, 10):
            coref.PRONOUN_WINDOW_SENTENCES = window
            system = QKBfly.from_world(world, with_search=False)
            matcher = FactMatcher(world)
            verdicts = []
            for doc in dataset:
                kb, _ = system.process_text(doc.text, doc_id=doc.doc_id)
                verdicts.extend(
                    matcher.is_correct(f, doc, kb) for f in kb.facts
                )
            precision = sum(verdicts) / max(len(verdicts), 1)
            counts[window] = len(verdicts)
            rows.append((window, f"{precision:.3f}", len(verdicts)))
    finally:
        coref.PRONOUN_WINDOW_SENTENCES = original
    print_table(
        "Ablation: pronoun antecedent window (sentences)",
        ("Window", "Fact precision", "#Extractions"),
        rows,
    )
    assert counts[5] >= counts[1], (
        "a wider window must not reduce extraction recall"
    )
    system = QKBfly.from_world(world, with_search=False)
    sample = dataset[0]
    benchmark(lambda: system.process_text(sample.text))


def test_ablation_confidence_threshold(world, dataset, benchmark):
    rows = []
    extraction_counts = {}
    for tau in (0.25, 0.5, 0.75, 0.9):
        system = QKBfly.from_world(
            world, QKBflyConfig(tau=tau), with_search=False
        )
        matcher = FactMatcher(world)
        verdicts = []
        for doc in dataset:
            kb, _ = system.process_text(doc.text, doc_id=doc.doc_id)
            verdicts.extend(matcher.is_correct(f, doc, kb) for f in kb.facts)
        precision = sum(verdicts) / max(len(verdicts), 1)
        extraction_counts[tau] = len(verdicts)
        rows.append((tau, f"{precision:.3f}", len(verdicts)))
    print_table(
        "Ablation: confidence threshold tau",
        ("tau", "Fact precision", "#Extractions"),
        rows,
    )
    assert extraction_counts[0.9] <= extraction_counts[0.25], (
        "raising tau must not increase extraction count"
    )
    system = QKBfly.from_world(world, with_search=False)
    sample = dataset[0]
    benchmark(lambda: system.process_text(sample.text))


def test_ablation_parser(world, dataset, benchmark):
    rows = []
    timings = {}
    for parser in ("greedy", "chart"):
        system = QKBfly.from_world(
            world, QKBflyConfig(parser=parser), with_search=False
        )
        matcher = FactMatcher(world)
        verdicts = []
        start = time.perf_counter()
        for doc in dataset:
            kb, _ = system.process_text(doc.text, doc_id=doc.doc_id)
            verdicts.extend(matcher.is_correct(f, doc, kb) for f in kb.facts)
        seconds = (time.perf_counter() - start) / len(dataset)
        precision = sum(verdicts) / max(len(verdicts), 1)
        timings[parser] = seconds
        rows.append((parser, f"{precision:.3f}", len(verdicts), f"{seconds:.3f}"))
    print_table(
        "Ablation: dependency parser inside the full system",
        ("Parser", "Fact precision", "#Extractions", "s/doc"),
        rows,
    )
    system = QKBfly.from_world(world, with_search=False)
    sample = dataset[0]
    benchmark(lambda: system.process_text(sample.text))
