"""CI perf gate: fail on >20% regression vs. the committed baseline.

Usage::

    python benchmarks/check_perf_regression.py BENCH_service.json \
        benchmarks/BENCH_service_baseline.json [--tolerance 0.20]

Only the ``gate_*`` metrics are compared — machine-independent ratios
(cache/warm speedup, batched speedup, hit/dedup rates) rather than
absolute QPS, which varies wildly across CI runners. A gated metric
regresses when ``current < baseline * (1 - tolerance)``. Absolute
numbers are printed for context but never fail the gate.
"""

from __future__ import annotations

import argparse
import json
import sys

INFORMATIONAL = (
    "qps_cold",
    "qps_warm",
    "qps_batched",
    "p50_ms",
    "p95_ms",
    "qps_sharded_cold",
    "qps_sharded_store_hit",
    "sharded_store_speedup",
    # Fabric scenario: absolute QPS and the remote-vs-local read p50s
    # price loopback socket + JSON framing on the host, exactly as the
    # gateway ratio prices HTTP — informational first. The gated forms
    # are the deterministic correctness rates
    # (gate_fabric_store_parity, gate_fabric_replica_fanout).
    "qps_fabric_cold",
    "qps_fabric_store_hit",
    "fabric_remote_read_p50_ms",
    "fabric_local_read_p50_ms",
    "fabric_remote_overhead_ratio",
    "fabric_replica_reads",
    "fabric_replica_hits",
    "qps_thread_distinct",
    "qps_process_distinct",
    # Thread-vs-process ratio is a property of the host's core count
    # (see cpu_count in the same file), so it is printed, never gated.
    "process_speedup",
    "cpu_count",
    # Absolute event-loop hit latencies vary with the host; the gated
    # form is the alone/during ratio (gate_async_isolation).
    "async_hit_p50_alone_ms",
    "async_hit_p50_during_cold_ms",
    "async_isolation_ratio",
    # Gateway absolute latencies/QPS and the HTTP-vs-direct ratio
    # measure socket+JSON cost on the host, not serving-layer health;
    # the gated forms are the success/cache-hit rates.
    "qps_direct_async",
    "qps_gateway_http",
    "direct_hit_p50_ms",
    "gateway_hit_p50_ms",
    "gateway_hit_p95_ms",
    "gateway_overhead_ratio",
    # Cost-admission scenario: the shed rate and absolute hit latencies
    # depend on the host's pipeline speed against the fixed bench
    # budget; the gated forms are gate_cost_budget_enforced (binary)
    # and gate_cost_hit_isolation (the alone/during p50 ratio).
    "cost_adversary_requests",
    "cost_adversary_admitted",
    "cost_adversary_rejected",
    "cost_shed_rate",
    "cost_adversary_spend_seconds",
    "cost_hit_p50_alone_ms",
    "cost_hit_p50_during_ms",
    "cost_isolation_ratio",
    # Search scenario: scan/page/FTS latencies price SQLite (and the
    # host's disk) per read; the gated form is the deterministic walk
    # completeness bit (gate_search_walk_complete).
    "search_entries",
    "search_facts_indexed",
    "search_walk_pages",
    "search_concurrent_writes",
    "qps_search_scan",
    "search_page_p50_ms",
    "search_fullscan_p50_ms",
    "search_fts_p50_ms",
    # Ingest scenario: ingest/re-query latencies price the commit +
    # invalidation transaction on the host; the gated form is the
    # deterministic match-rate
    # (gate_ingest_selective_invalidation).
    "ingest_docs",
    "ingest_warm_queries",
    "ingest_touched_queries",
    "ingest_cache_survivors",
    "ingest_deltas_delivered",
    "ingest_p50_ms",
    "ingest_requery_p50_ms",
    # Stage-cache scenario: absolute p50s and the overlap speedup
    # measure host speed and load; the gated forms are the
    # deterministic lookup-count ratio (gate_overlap_reuse) and the
    # bit-parity fraction (gate_stage_cold_parity).
    "stage_cold_p50_ms",
    "stage_overlap_p50_ms",
    "stage_nocache_overlap_p50_ms",
    "stage_overlap_speedup",
    "stage_cache_hits",
    "stage_cache_misses",
)


def compare(current: dict, baseline: dict, tolerance: float) -> int:
    """Print the comparison; return the number of regressed gate metrics."""
    gated = sorted(k for k in baseline if k.startswith("gate_"))
    if not gated:
        print("ERROR: baseline has no gate_* metrics")
        return 1
    regressions = 0
    print(f"{'metric':>28} {'baseline':>12} {'current':>12}  verdict")
    for key in gated:
        base = float(baseline[key])
        if key not in current:
            print(f"{key:>28} {base:>12} {'MISSING':>12}  FAIL")
            regressions += 1
            continue
        value = float(current[key])
        floor = base * (1.0 - tolerance)
        verdict = "ok" if value >= floor else f"FAIL (floor {floor:.3f})"
        if value < floor:
            regressions += 1
        print(f"{key:>28} {base:>12} {value:>12}  {verdict}")
    for key in INFORMATIONAL:
        if key in baseline and key in current:
            print(
                f"{key:>28} {baseline[key]:>12} {current[key]:>12}  (info only)"
            )
    return regressions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_service.json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    regressions = compare(current, baseline, args.tolerance)
    if regressions:
        print(f"\nperf gate FAILED: {regressions} metric(s) regressed "
              f"beyond {args.tolerance:.0%}")
        sys.exit(1)
    print(f"\nperf gate passed (tolerance {args.tolerance:.0%})")


if __name__ == "__main__":
    main()
