"""Shared benchmark fixtures: one medium world per session.

The benchmark world uses the default :class:`WorldConfig` (a few hundred
entities, ~1,000 ground-truth facts, 50 trend events) — large enough for
stable precision estimates, small enough that the whole suite runs in
minutes. The paper's absolute dataset sizes (14k Wikipedia pages) are
out of scope for a benchmark run; shapes, orderings and ratios are what
these benches reproduce.
"""

from __future__ import annotations

import pytest

from repro.corpus.background import build_background_corpus
from repro.corpus.world import World, WorldConfig

BENCH_SEED = 7


@pytest.fixture(scope="session")
def world() -> World:
    """The benchmark world (default config)."""
    return World(WorldConfig(), seed=BENCH_SEED)


@pytest.fixture(scope="session")
def background(world):
    """Background corpus + statistics for the benchmark world."""
    return build_background_corpus(world)
