"""Edge weight functions (Section 4 of the paper).

Two weight families over a (sub)graph S:

- ``means`` edge between noun-phrase ni and entity candidate e::

      w(ni, e) = alpha1 * prior(ni, e) + alpha2 * sim(cxt(ni), cxt(e))

  where ``prior`` is the anchor link prior from the background corpus
  and ``sim`` the weighted-overlap similarity between the TF-IDF context
  vector of the mention's sentence and the entity's article.

- ``relation`` edge between phrase nodes ni, nt with pattern r::

      w(ni, nt, S) = alpha3 * sum coh(e_ij, e_tk)
                   + alpha4 * sum ts(e_ij, e_tk, r)

  summing over current candidate pairs; ``coh`` is entity-entity context
  coherence, ``ts`` the type-signature statistic (summed over all type
  combinations of the pair, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.corpus.statistics import BackgroundStatistics, content_tokens
from repro.graph.semantic_graph import RelationEdge, SemanticGraph
from repro.nlp.tokens import Document
from repro.utils.text import strip_determiners
from repro.utils.vectors import SparseVector, weighted_overlap


@dataclass
class WeightParameters:
    """The alpha hyper-parameters of Section 4.

    Defaults are the values learned by :mod:`repro.graph.tuning` on the
    annotated training sentences; they can be overridden freely.
    """

    alpha1: float = 1.0   # link prior
    alpha2: float = 0.8   # mention-entity context similarity
    alpha3: float = 0.5   # entity-entity coherence
    alpha4: float = 0.7   # type signature

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """(alpha1, alpha2, alpha3, alpha4)."""
        return (self.alpha1, self.alpha2, self.alpha3, self.alpha4)


class EdgeWeights:
    """Weight oracle for one document graph.

    Precomputes mention context vectors and memoizes entity-pair
    coherence and type-signature sums, so the densification loop's
    incremental recomputation stays cheap.
    """

    def __init__(
        self,
        graph: SemanticGraph,
        document: Document,
        statistics: BackgroundStatistics,
        params: Optional[WeightParameters] = None,
    ) -> None:
        self.graph = graph
        self.statistics = statistics
        self.params = params or WeightParameters()
        self._sentence_vectors: Dict[int, SparseVector] = {}
        for sentence in document.sentences:
            self._sentence_vectors[sentence.index] = statistics.tfidf_vector(
                content_tokens(sentence.text())
            )
        self._means_cache: Dict[Tuple[str, str], float] = {}
        self._coh_cache: Dict[Tuple[str, str], float] = {}
        self._ts_cache: Dict[Tuple[str, str, str], float] = {}

    # ---- means edges -----------------------------------------------------

    def means_weight(self, phrase_id: str, entity_id: str) -> float:
        """w(ni, e): alpha1 * prior + alpha2 * context similarity."""
        key = (phrase_id, entity_id)
        cached = self._means_cache.get(key)
        if cached is not None:
            return cached
        node = self.graph.phrases[phrase_id]
        mention = strip_determiners(node.surface)
        prior = self.statistics.prior(mention, entity_id)
        mention_vector = self._sentence_vectors.get(
            node.sentence_index, SparseVector()
        )
        entity_vector = self.statistics.context_of(entity_id)
        similarity = weighted_overlap(mention_vector, entity_vector)
        weight = self.params.alpha1 * prior + self.params.alpha2 * similarity
        self._means_cache[key] = weight
        return weight

    # ---- relation edges ------------------------------------------------------

    def coherence(self, entity_a: str, entity_b: str) -> float:
        """coh(e1, e2): weighted overlap of the entity context vectors."""
        if entity_a > entity_b:
            entity_a, entity_b = entity_b, entity_a
        key = (entity_a, entity_b)
        cached = self._coh_cache.get(key)
        if cached is not None:
            return cached
        value = weighted_overlap(
            self.statistics.context_of(entity_a),
            self.statistics.context_of(entity_b),
        )
        self._coh_cache[key] = value
        return value

    def type_signature_sum(
        self, entity_a: str, entity_b: str, pattern: str
    ) -> float:
        """ts summed over all type combinations of the entity pair."""
        key = (entity_a, entity_b, pattern)
        cached = self._ts_cache.get(key)
        if cached is not None:
            return cached
        node_a = self.graph.entities.get(f"e:{entity_a}")
        node_b = self.graph.entities.get(f"e:{entity_b}")
        if node_a is None or node_b is None:
            return 0.0
        total = 0.0
        for type_a in node_a.types:
            for type_b in node_b.types:
                total += self.statistics.type_signature(type_a, type_b, pattern)
        self._ts_cache[key] = total
        return total

    def pair_weight(self, entity_a: str, entity_b: str, pattern: str) -> float:
        """Contribution of one candidate pair to a relation edge weight."""
        return (
            self.params.alpha3 * self.coherence(entity_a, entity_b)
            + self.params.alpha4 * self.type_signature_sum(entity_a, entity_b, pattern)
        )

    def relation_weight(
        self,
        edge: RelationEdge,
        source_candidates: Iterable[str],
        target_candidates: Iterable[str],
    ) -> float:
        """w(ni, nt, S) for given current candidate sets."""
        total = 0.0
        targets = list(target_candidates)
        for entity_a in source_candidates:
            for entity_b in targets:
                total += self.pair_weight(entity_a, entity_b, edge.pattern)
        return total


__all__ = ["EdgeWeights", "WeightParameters"]
