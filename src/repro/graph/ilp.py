"""ILP formulation of Stage 2 (Appendix A of the paper).

Binary variables:

- ``x[g, c]`` — NP sameAs group ``g`` is disambiguated to candidate
  ``c`` (the paper's ``cnd_ij`` with constraint (3) folded in by
  operating on groups); exactly one candidate per group.
- ``y[p, l]`` — pronoun ``p`` resolves to linked noun phrase ``l``;
  exactly one antecedent per pronoun.
- ``v[p, l, e]`` — pronoun ``p`` resolves to ``l`` *and* that group is
  disambiguated to ``e`` (linearized product ``y * x``).
- ``z[edge, e1, e2]`` — both endpoints of a relation edge take the
  respective candidates (the paper's ``joint-rel`` variables),
  linearized with ``z <= x`` / ``z <= v`` constraints; since all weights
  are non-negative, maximization makes ``z = min(...)`` automatically.

The objective mirrors the greedy algorithm's W(S): means weights on the
``x`` variables plus pairwise relation weights on the ``z`` variables
(and the same tiny salience tie-breakers on ``y``). Solved exactly by
:class:`repro.graph.solver.BranchAndBoundSolver`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graph.densify import DensifyResult, _State
from repro.graph.semantic_graph import NodeType, SemanticGraph
from repro.graph.solver import BranchAndBoundSolver, IlpProblem
from repro.graph.weights import EdgeWeights


class IlpStage2:
    """Exact joint NED + CR via 0-1 integer linear programming."""

    def __init__(self, time_budget: float = 120.0) -> None:
        self.time_budget = time_budget

    def run(self, graph: SemanticGraph, weights: EdgeWeights) -> DensifyResult:
        """Solve Stage 2 and return assignments compatible with greedy."""
        state = _State(graph, weights)
        state.prune_gender_incompatible_links()

        index: Dict[Tuple, int] = {}
        objective: List[float] = []

        def var(key: Tuple, weight: float = 0.0) -> int:
            position = index.get(key)
            if position is None:
                position = len(objective)
                index[key] = position
                objective.append(weight)
            else:
                objective[position] += weight
            return position

        groups = [g for g in state.groups if state.group_cands[g]]
        group_key = {g: tuple(sorted(g)) for g in groups}

        # x variables with means weights.
        for group in groups:
            for candidate in sorted(state.group_cands[group]):
                weight = sum(
                    weights.means_weight(member, candidate)
                    for member in sorted(group)
                    if candidate in graph.candidates(member)
                )
                var(("x", group_key[group], candidate), weight)

        # y / v variables for pronouns.
        pronouns = {
            p: sorted(links)
            for p, links in state.pronoun_links.items()
            if links
        }
        for pronoun_id, links in sorted(pronouns.items()):
            pronoun = graph.phrases[pronoun_id]
            for np_id in links:
                np_node = graph.phrases[np_id]
                distance = max(0, pronoun.sentence_index - np_node.sentence_index)
                salience = 0.002 / (1.0 + distance)
                if np_node.is_subject:
                    salience += 0.002
                var(("y", pronoun_id, np_id), salience)
                link_group = state.group_of.get(np_id)
                if link_group is None or not state.group_cands[link_group]:
                    continue
                exclusions = state.pronoun_exclusions.get(pronoun_id, set())
                for entity_id in sorted(state.group_cands[link_group]):
                    if entity_id in exclusions:
                        continue
                    var(("v", pronoun_id, np_id, entity_id), 0.0)

        # z variables with pairwise relation weights.
        z_defs: List[Tuple[int, List[int]]] = []  # (z index, parent vars)
        for edge_index, edge in enumerate(graph.relation_edges):
            source_opts = self._endpoint_options(graph, state, edge.source)
            target_opts = self._endpoint_options(graph, state, edge.target)
            if not source_opts or not target_opts:
                continue
            for s_key, s_entity in source_opts:
                for t_key, t_entity in target_opts:
                    pair = weights.pair_weight(s_entity, t_entity, edge.pattern)
                    if pair <= 0.0:
                        continue
                    z_index = var(("z", edge_index, s_key, t_key), pair)
                    parents = [index[s_key], index[t_key]]
                    z_defs.append((z_index, parents))

        num_vars = len(objective)
        if num_vars == 0:
            result = DensifyResult()
            for group in state.groups:
                for member in group:
                    result.assignment[member] = None
            return result

        # Equality constraints: one candidate per group, one antecedent
        # per pronoun.
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for group in groups:
            row = np.zeros(num_vars)
            for candidate in sorted(state.group_cands[group]):
                row[index[("x", group_key[group], candidate)]] = 1.0
            eq_rows.append(row)
            eq_rhs.append(1.0)
        for pronoun_id, links in sorted(pronouns.items()):
            row = np.zeros(num_vars)
            for np_id in links:
                row[index[("y", pronoun_id, np_id)]] = 1.0
            eq_rows.append(row)
            eq_rhs.append(1.0)

        # Inequality constraints: v <= y, v <= x, z <= parents.
        le_rows: List[np.ndarray] = []
        le_rhs: List[float] = []
        for key, position in list(index.items()):
            if key[0] == "v":
                _, pronoun_id, np_id, entity_id = key
                row = np.zeros(num_vars)
                row[position] = 1.0
                row[index[("y", pronoun_id, np_id)]] -= 1.0
                le_rows.append(row)
                le_rhs.append(0.0)
                link_group = state.group_of[np_id]
                x_key = ("x", group_key[link_group], entity_id)
                if x_key in index:
                    row = np.zeros(num_vars)
                    row[position] = 1.0
                    row[index[x_key]] -= 1.0
                    le_rows.append(row)
                    le_rhs.append(0.0)
        for z_index, parents in z_defs:
            for parent in parents:
                row = np.zeros(num_vars)
                row[z_index] = 1.0
                row[parent] -= 1.0
                le_rows.append(row)
                le_rhs.append(0.0)

        problem = IlpProblem(
            objective=np.array(objective),
            le_matrix=np.vstack(le_rows) if le_rows else None,
            le_rhs=np.array(le_rhs) if le_rows else None,
            eq_matrix=np.vstack(eq_rows) if eq_rows else None,
            eq_rhs=np.array(eq_rhs) if eq_rows else None,
        )
        solution = BranchAndBoundSolver(time_budget=self.time_budget).solve(problem)

        # ---- extract assignments ------------------------------------------------
        result = DensifyResult(objective=solution.objective)
        chosen_by_group: Dict[Tuple, str] = {}
        for key, position in index.items():
            if key[0] == "x" and solution.values[position] > 0.5:
                chosen_by_group[key[1]] = key[2]
        for group in state.groups:
            chosen = chosen_by_group.get(tuple(sorted(group)))
            for member in group:
                result.assignment[member] = chosen
        for pronoun_id, links in pronouns.items():
            antecedent = None
            for np_id in links:
                if solution.values[index[("y", pronoun_id, np_id)]] > 0.5:
                    antecedent = np_id
                    break
            result.antecedent[pronoun_id] = antecedent
        for pronoun_id in graph.pronouns():
            result.antecedent.setdefault(pronoun_id, None)

        # Confidence scores: reuse the greedy machinery on the ILP
        # configuration so downstream thresholds behave identically.
        for group in state.groups:
            chosen = chosen_by_group.get(tuple(sorted(group)))
            state.group_cands[group] = {chosen} if chosen else set()
        for pronoun_id, links in state.pronoun_links.items():
            chosen_link = result.antecedent.get(pronoun_id)
            state.pronoun_links[pronoun_id] = (
                {chosen_link} if chosen_link else set()
            )
        state._refresh_all_edges()
        state.compute_confidences(result)
        state.write_back()
        return result

    def _endpoint_options(
        self, graph: SemanticGraph, state: _State, phrase_id: str
    ) -> List[Tuple[Tuple, str]]:
        """(variable key, entity id) options for one relation endpoint."""
        node = graph.phrases[phrase_id]
        options: List[Tuple[Tuple, str]] = []
        if node.node_type == NodeType.PRONOUN:
            exclusions = state.pronoun_exclusions.get(phrase_id, set())
            for np_id in sorted(state.pronoun_links.get(phrase_id, ())):
                link_group = state.group_of.get(np_id)
                if link_group is None:
                    continue
                for entity_id in sorted(state.group_cands[link_group]):
                    if entity_id in exclusions:
                        continue
                    options.append(
                        (("v", phrase_id, np_id, entity_id), entity_id)
                    )
        else:
            group = state.group_of.get(phrase_id)
            if group is None:
                return []
            for entity_id in sorted(state.group_cands[group]):
                options.append(
                    (("x", tuple(sorted(group)), entity_id), entity_id)
                )
        return options


__all__ = ["IlpStage2"]
