"""Semantic graph data model (Section 3 of the paper).

Nodes: clause, noun-phrase, pronoun and entity nodes. Edges: ``depends``
(clause structure), ``relation`` (lemmatized verb patterns between
phrase nodes), ``sameAs`` (co-reference candidates) and ``means``
(phrase -> entity candidate links).

Phrase nodes carry their sentence/span provenance; entity nodes are
shared per entity id. The graph object supports the removal operations
the densification algorithm performs (means / pronoun-sameAs edge
removal with candidate-set bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple


class NodeType:
    """Node type constants."""

    CLAUSE = "clause"
    NOUN_PHRASE = "noun_phrase"
    PRONOUN = "pronoun"
    ENTITY = "entity"


class EdgeType:
    """Edge type constants."""

    DEPENDS = "depends"
    RELATION = "relation"
    SAME_AS = "sameAs"
    MEANS = "means"


@dataclass
class PhraseNode:
    """A noun-phrase or pronoun node.

    Attributes:
        node_id: Unique id, e.g. ``"n3:5-7"`` (sentence 3, tokens 5-7).
        node_type: NOUN_PHRASE or PRONOUN.
        sentence_index / start / end: Provenance span.
        surface: Surface text of the span.
        ner: Coarse NER label of the span (PERSON / ... / TIME / MONEY /
            "O" for plain noun phrases).
        kind: "np", "pronoun", "time", "money" or "literal".
        normalized: Normalized value for time expressions.
        gender: For pronoun nodes: "male" / "female" / "" (from the
            pronoun lexicon); used by constraint (4).
    """

    node_id: str
    node_type: str
    sentence_index: int
    start: int
    end: int
    surface: str
    ner: str = "O"
    kind: str = "np"
    normalized: str = ""
    gender: str = ""
    is_subject: bool = False  # used as clause subject (coref preference)


@dataclass
class EntityNode:
    """An entity candidate node (shared per entity id)."""

    node_id: str          # "e:<entity_id>"
    entity_id: str
    name: str
    types: Tuple[str, ...] = ()
    gender: str = ""


@dataclass
class ClauseNode:
    """A clause node: container for one detected clause."""

    node_id: str          # "c<sentence>:<verb index>"
    sentence_index: int
    clause_type: str
    pattern: str
    negated: bool = False


@dataclass
class RelationEdge:
    """A relation edge between two phrase nodes."""

    source: str           # subject phrase node id
    target: str           # argument phrase node id
    pattern: str          # lemmatized pattern, e.g. "donate to"
    clause_id: str = ""


class SemanticGraph:
    """Mutable semantic graph with candidate-set bookkeeping."""

    def __init__(self) -> None:
        self.phrases: Dict[str, PhraseNode] = {}
        self.entities: Dict[str, EntityNode] = {}
        self.clauses: Dict[str, ClauseNode] = {}
        self.relation_edges: List[RelationEdge] = []
        # phrase node id -> set of entity ids (means edges).
        self.means: Dict[str, Set[str]] = {}
        # undirected sameAs adjacency among phrase node ids.
        self.same_as: Dict[str, Set[str]] = {}
        # clause id -> phrase node ids it depends-links (fact boundary).
        self.depends: Dict[str, List[str]] = {}
        # clause id -> parent clause id (inter-clause depends edges).
        self.clause_parents: Dict[str, str] = {}

    # ---- construction ------------------------------------------------------

    def add_phrase(self, node: PhraseNode) -> PhraseNode:
        """Add (or return the existing) phrase node."""
        existing = self.phrases.get(node.node_id)
        if existing is not None:
            return existing
        self.phrases[node.node_id] = node
        self.means.setdefault(node.node_id, set())
        self.same_as.setdefault(node.node_id, set())
        return node

    def add_entity(self, node: EntityNode) -> EntityNode:
        """Add (or return the existing) entity node."""
        existing = self.entities.get(node.node_id)
        if existing is not None:
            return existing
        self.entities[node.node_id] = node
        return node

    def add_clause(self, node: ClauseNode) -> ClauseNode:
        """Add a clause node."""
        self.clauses[node.node_id] = node
        self.depends.setdefault(node.node_id, [])
        return node

    def add_means(self, phrase_id: str, entity_id: str) -> None:
        """Link a phrase to an entity candidate."""
        self.means[phrase_id].add(entity_id)

    def add_same_as(self, a: str, b: str) -> None:
        """Link two phrase nodes as co-reference candidates."""
        if a == b:
            return
        self.same_as[a].add(b)
        self.same_as[b].add(a)

    def add_relation(self, edge: RelationEdge) -> None:
        """Add a relation edge."""
        self.relation_edges.append(edge)

    def add_depends(self, clause_id: str, phrase_id: str) -> None:
        """Record that a phrase belongs to a clause (fact boundary)."""
        self.depends[clause_id].append(phrase_id)

    # ---- removal (densification operations) ----------------------------------

    def remove_means(self, phrase_id: str, entity_id: str) -> None:
        """Remove one means edge."""
        self.means[phrase_id].discard(entity_id)

    def remove_same_as(self, a: str, b: str) -> None:
        """Remove one sameAs edge."""
        self.same_as[a].discard(b)
        self.same_as[b].discard(a)

    # ---- queries --------------------------------------------------------------

    def candidates(self, phrase_id: str) -> Set[str]:
        """ent(n): entity candidate ids of a noun-phrase node."""
        return self.means.get(phrase_id, set())

    def pronoun_candidates(self, pronoun_id: str) -> Set[str]:
        """ent(p): union of candidates over sameAs-linked noun phrases."""
        out: Set[str] = set()
        for neighbor in self.same_as.get(pronoun_id, ()):
            out.update(self.means.get(neighbor, ()))
        return out

    def pronouns(self) -> List[str]:
        """Ids of all pronoun nodes."""
        return [
            pid for pid, node in self.phrases.items()
            if node.node_type == NodeType.PRONOUN
        ]

    def noun_phrases(self) -> List[str]:
        """Ids of all noun-phrase nodes."""
        return [
            pid for pid, node in self.phrases.items()
            if node.node_type == NodeType.NOUN_PHRASE
        ]

    def np_same_as_group(self, phrase_id: str) -> Set[str]:
        """Connected component of ``phrase_id`` over NP-NP sameAs edges."""
        group: Set[str] = set()
        stack = [phrase_id]
        while stack:
            node = stack.pop()
            if node in group:
                continue
            if self.phrases[node].node_type != NodeType.NOUN_PHRASE:
                continue
            group.add(node)
            stack.extend(self.same_as.get(node, ()))
        return group

    def relation_edges_of(self, phrase_id: str) -> List[RelationEdge]:
        """All relation edges incident to a phrase node."""
        return [
            e for e in self.relation_edges
            if e.source == phrase_id or e.target == phrase_id
        ]

    def stats(self) -> Dict[str, int]:
        """Size summary for logging and tests."""
        return {
            "phrases": len(self.phrases),
            "entities": len(self.entities),
            "clauses": len(self.clauses),
            "relation_edges": len(self.relation_edges),
            "means_edges": sum(len(s) for s in self.means.values()),
            "same_as_edges": sum(len(s) for s in self.same_as.values()) // 2,
        }

    def copy_assignments(self) -> Dict[str, Set[str]]:
        """Deep copy of the means map (used by confidence scoring)."""
        return {k: set(v) for k, v in self.means.items()}


def phrase_node_id(sentence_index: int, start: int, end: int) -> str:
    """Canonical phrase node id for a sentence span."""
    return f"n{sentence_index}:{start}-{end}"


def entity_node_id(entity_id: str) -> str:
    """Canonical entity node id."""
    return f"e:{entity_id}"


def clause_node_id(sentence_index: int, verb_index: int) -> str:
    """Canonical clause node id."""
    return f"c{sentence_index}:{verb_index}"


__all__ = [
    "ClauseNode",
    "EdgeType",
    "EntityNode",
    "NodeType",
    "PhraseNode",
    "RelationEdge",
    "SemanticGraph",
    "clause_node_id",
    "entity_node_id",
    "phrase_node_id",
]
