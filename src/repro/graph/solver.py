"""Exact 0-1 integer linear programming by branch and bound.

The paper solves the Appendix-A program with Gurobi; offline we provide
our own exact solver: best-first branch and bound with LP-relaxation
bounds computed by :func:`scipy.optimize.linprog`. It is deliberately a
*generic* 0-1 ILP solver (maximize c^T x subject to A_ub x <= b_ub,
A_eq x = b_eq, x in {0,1}^n) — the point of the Table 6 comparison is
precisely that a general-purpose exact solver is orders of magnitude
slower than the tailored greedy algorithm.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog


@dataclass
class IlpProblem:
    """A 0-1 maximization problem.

    maximize    objective . x
    subject to  le_matrix x <= le_rhs
                eq_matrix x == eq_rhs
                x binary
    """

    objective: np.ndarray
    le_matrix: Optional[np.ndarray] = None
    le_rhs: Optional[np.ndarray] = None
    eq_matrix: Optional[np.ndarray] = None
    eq_rhs: Optional[np.ndarray] = None

    @property
    def num_variables(self) -> int:
        """Number of binary variables."""
        return len(self.objective)


@dataclass
class IlpSolution:
    """Solver outcome."""

    values: np.ndarray
    objective: float
    optimal: bool           # False when the time budget truncated search
    nodes_explored: int = 0
    wall_seconds: float = 0.0


class BranchAndBoundSolver:
    """Best-first branch and bound with LP-relaxation bounding."""

    def __init__(
        self,
        time_budget: float = 120.0,
        max_nodes: int = 200_000,
        tolerance: float = 1e-6,
    ) -> None:
        self.time_budget = time_budget
        self.max_nodes = max_nodes
        self.tolerance = tolerance

    def solve(
        self,
        problem: IlpProblem,
        warm_start: Optional[np.ndarray] = None,
    ) -> IlpSolution:
        """Solve the 0-1 program exactly (subject to the time budget)."""
        start = time.perf_counter()
        n = problem.num_variables
        best_value = float("-inf")
        best_x: Optional[np.ndarray] = None
        if warm_start is not None and self._feasible(problem, warm_start):
            best_value = float(problem.objective @ warm_start)
            best_x = warm_start.astype(float)

        # Best-first queue ordered by -bound. Fixings: dict var -> {0,1}.
        root_bound, root_frac = self._lp_bound(problem, {})
        if root_frac is None:
            # Infeasible root.
            return IlpSolution(
                values=np.zeros(n), objective=0.0, optimal=False
            )
        counter = itertools.count()
        heap: List[Tuple[float, int, Dict[int, int]]] = [
            (-root_bound, next(counter), {})
        ]
        nodes = 0
        optimal = True
        while heap:
            if time.perf_counter() - start > self.time_budget or nodes > self.max_nodes:
                optimal = False
                break
            neg_bound, _, fixings = heapq.heappop(heap)
            bound = -neg_bound
            if bound <= best_value + self.tolerance:
                continue
            bound, fractional = self._lp_bound(problem, fixings)
            nodes += 1
            if fractional is None or bound <= best_value + self.tolerance:
                continue
            branch_var = self._most_fractional(fractional, fixings)
            if branch_var is None:
                # LP solution is integral: candidate incumbent.
                x = np.round(fractional)
                if self._feasible(problem, x):
                    value = float(problem.objective @ x)
                    if value > best_value:
                        best_value = value
                        best_x = x
                continue
            for value in (1, 0):
                child = dict(fixings)
                child[branch_var] = value
                heapq.heappush(heap, (-bound, next(counter), child))

        if best_x is None:
            # Fall back to rounding the root relaxation.
            x = np.round(root_frac)
            if not self._feasible(problem, x):
                x = np.zeros(n)
            best_x = x
            best_value = float(problem.objective @ x)
            optimal = False
        return IlpSolution(
            values=best_x,
            objective=best_value,
            optimal=optimal and bool(not heap or all(-b <= best_value + self.tolerance for b, _, _ in heap)),
            nodes_explored=nodes,
            wall_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------

    def _lp_bound(
        self, problem: IlpProblem, fixings: Dict[int, int]
    ) -> Tuple[float, Optional[np.ndarray]]:
        """LP relaxation bound under variable fixings."""
        n = problem.num_variables
        bounds = []
        for i in range(n):
            fixed = fixings.get(i)
            if fixed is None:
                bounds.append((0.0, 1.0))
            else:
                bounds.append((float(fixed), float(fixed)))
        result = linprog(
            c=-problem.objective,
            A_ub=problem.le_matrix,
            b_ub=problem.le_rhs,
            A_eq=problem.eq_matrix,
            b_eq=problem.eq_rhs,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return float("-inf"), None
        return -result.fun, result.x

    def _most_fractional(
        self, x: np.ndarray, fixings: Dict[int, int]
    ) -> Optional[int]:
        best_var: Optional[int] = None
        best_gap = self.tolerance
        for i, value in enumerate(x):
            if i in fixings:
                continue
            gap = min(value, 1.0 - value)
            if gap > best_gap:
                best_gap = gap
                best_var = i
        return best_var

    def _feasible(self, problem: IlpProblem, x: np.ndarray) -> bool:
        if problem.le_matrix is not None:
            if np.any(problem.le_matrix @ x > problem.le_rhs + 1e-6):
                return False
        if problem.eq_matrix is not None:
            if np.any(np.abs(problem.eq_matrix @ x - problem.eq_rhs) > 1e-6):
                return False
        return True


__all__ = ["BranchAndBoundSolver", "IlpProblem", "IlpSolution"]
