"""Greedy constrained densest-subgraph algorithm (Section 4, Algorithm 1).

Jointly performs named-entity disambiguation and co-reference resolution:
starting from the full semantic graph, it repeatedly removes the means or
(pronoun) sameAs edge with the smallest contribution to the objective
W(S) — the sum of all means and relation edge weights — until the four
constraints hold:

(1) each noun-phrase node keeps at most one entity candidate;
(2) each pronoun keeps at most one antecedent noun phrase;
(3) mutually sameAs-linked noun phrases share one entity — enforced by
    treating NP sameAs groups as removal units over the *intersection*
    of their members' candidate sets;
(4) pronoun gender must match the entity's gender when the background
    repository provides one — enforced by pruning gender-incompatible
    pronoun links upfront (as in the paper's pseudocode).

Weight recomputation after a removal is selective and incremental: only
relation edges incident to the affected phrase nodes (and to pronouns
linked to them) are re-evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.graph.semantic_graph import NodeType, RelationEdge, SemanticGraph
from repro.graph.weights import EdgeWeights


@dataclass
class DensifyResult:
    """Outcome of the densification.

    Attributes:
        assignment: noun-phrase node id -> chosen entity id (absent or
            None when the phrase stays out-of-KB / emerging).
        antecedent: pronoun node id -> resolved noun-phrase node id.
        confidence: phrase node id -> normalized confidence score of its
            disambiguation (Section 4, "Confidence Scores").
        objective: final W(S*).
        removals: number of edges removed (diagnostics).
    """

    assignment: Dict[str, Optional[str]] = field(default_factory=dict)
    antecedent: Dict[str, Optional[str]] = field(default_factory=dict)
    confidence: Dict[str, float] = field(default_factory=dict)
    objective: float = 0.0
    removals: int = 0

    def entity_of(self, phrase_id: str) -> Optional[str]:
        """Chosen entity for a phrase (following pronoun antecedents)."""
        direct = self.assignment.get(phrase_id)
        if direct is not None:
            return direct
        antecedent = self.antecedent.get(phrase_id)
        if antecedent is not None:
            return self.assignment.get(antecedent)
        return None


class DensestSubgraph:
    """The greedy approximation algorithm."""

    def __init__(self, max_rounds: int = 10_000) -> None:
        self._max_rounds = max_rounds

    def run(self, graph: SemanticGraph, weights: EdgeWeights) -> DensifyResult:
        """Densify ``graph`` in place and return the assignments."""
        state = _State(graph, weights)
        state.prune_gender_incompatible_links()

        removals = 0
        for _ in range(self._max_rounds):
            move = state.cheapest_move()
            if move is None:
                break
            state.apply(move)
            removals += 1

        result = DensifyResult(removals=removals, objective=state.objective())
        for group in state.groups:
            cands = sorted(state.group_cands[group])
            chosen = cands[0] if len(cands) == 1 else None
            for phrase_id in group:
                result.assignment[phrase_id] = chosen
        for pronoun_id, links in state.pronoun_links.items():
            ordered = sorted(links)
            result.antecedent[pronoun_id] = (
                ordered[0] if len(ordered) == 1 else None
            )
        state.compute_confidences(result)
        state.write_back()
        return result


# ---------------------------------------------------------------------------
# Internal state
# ---------------------------------------------------------------------------

_MOVE_MEANS = "means"
_MOVE_SAME_AS = "sameAs"


class _State:
    """Mutable candidate-set state with incremental edge weights."""

    def __init__(self, graph: SemanticGraph, weights: EdgeWeights) -> None:
        self.graph = graph
        self.weights = weights
        self.groups: List[FrozenSet[str]] = []
        self.group_of: Dict[str, FrozenSet[str]] = {}
        self.group_cands: Dict[FrozenSet[str], Set[str]] = {}
        self.original_cands: Dict[FrozenSet[str], Set[str]] = {}
        self.pronoun_links: Dict[str, Set[str]] = {}
        self.pronoun_exclusions: Dict[str, Set[str]] = {}
        self._build_groups()
        self._build_pronouns()
        self._edges_by_phrase: Dict[str, List[int]] = {}
        for index, edge in enumerate(graph.relation_edges):
            self._edges_by_phrase.setdefault(edge.source, []).append(index)
            self._edges_by_phrase.setdefault(edge.target, []).append(index)
        self._edge_weights: List[float] = [
            self._compute_edge_weight(edge) for edge in graph.relation_edges
        ]

    # ---- construction -----------------------------------------------------

    def _build_groups(self) -> None:
        seen: Set[str] = set()
        for phrase_id in self.graph.noun_phrases():
            if phrase_id in seen:
                continue
            members = frozenset(self.graph.np_same_as_group(phrase_id))
            seen.update(members)
            self.groups.append(members)
            for member in members:
                self.group_of[member] = members
            # Intersect candidate sets over members that have candidates
            # (members with none stay unlinked without vetoing the rest).
            cands: Optional[Set[str]] = None
            for member in members:
                member_cands = self.graph.candidates(member)
                if not member_cands:
                    continue
                cands = (
                    set(member_cands) if cands is None
                    else cands & set(member_cands)
                )
            if cands is None:
                cands = set()
            if not cands:
                # Empty intersection of non-empty sets: fall back to the
                # union so a false-positive sameAs cannot erase all
                # linking options (the greedy loop will prune it).
                union: Set[str] = set()
                for member in members:
                    union.update(self.graph.candidates(member))
                cands = union
            self.group_cands[members] = set(cands)
            self.original_cands[members] = set(cands)

    def _build_pronouns(self) -> None:
        for pronoun_id in self.graph.pronouns():
            links = {
                neighbor
                for neighbor in self.graph.same_as.get(pronoun_id, ())
                if self.graph.phrases[neighbor].node_type == NodeType.NOUN_PHRASE
            }
            self.pronoun_links[pronoun_id] = links
            self.pronoun_exclusions[pronoun_id] = set()

    def prune_gender_incompatible_links(self) -> None:
        """Constraint (4): drop candidates/links violating pronoun gender."""
        for pronoun_id, links in self.pronoun_links.items():
            gender = self.graph.phrases[pronoun_id].gender
            if not gender:
                continue
            # Exclude entities with a known, mismatching gender.
            for entity_id in self.pronoun_candidates(pronoun_id):
                node = self.graph.entities.get(f"e:{entity_id}")
                if node is not None and node.gender and node.gender != gender:
                    self.pronoun_exclusions[pronoun_id].add(entity_id)
            # Drop links to groups whose every candidate is incompatible —
            # but only when the group is surely in-KB: a group with a
            # named mention that has no repository candidates may be an
            # emerging entity of unknown gender, and constraint (4) only
            # applies "for which the background KB provides gender".
            to_drop = []
            for np_id in links:
                group = self.group_of[np_id]
                cands = self.group_cands[group]
                named = [
                    m for m in group
                    if self.graph.phrases[m].ner not in ("O", "TIME", "MONEY")
                ]
                surely_linked = bool(named) and all(
                    self.graph.candidates(m) for m in named
                )
                if (
                    surely_linked
                    and cands
                    and all(
                        c in self.pronoun_exclusions[pronoun_id] for c in cands
                    )
                ):
                    to_drop.append(np_id)
            for np_id in to_drop:
                links.discard(np_id)
        self._refresh_all_edges()

    # ---- candidate views --------------------------------------------------------

    def effective_candidates(self, phrase_id: str) -> Set[str]:
        """ent(n, S): current candidates of any phrase node."""
        node = self.graph.phrases[phrase_id]
        if node.node_type == NodeType.PRONOUN:
            return self.pronoun_candidates(phrase_id)
        group = self.group_of.get(phrase_id)
        if group is None:
            return set()
        return self.group_cands[group]

    def pronoun_candidates(self, pronoun_id: str) -> Set[str]:
        """ent(p, S): union over linked groups minus gender exclusions."""
        out: Set[str] = set()
        for np_id in self.pronoun_links.get(pronoun_id, ()):
            out.update(self.group_cands[self.group_of[np_id]])
        return out - self.pronoun_exclusions.get(pronoun_id, set())

    # ---- objective ---------------------------------------------------------------

    def objective(self) -> float:
        """W(S): sum of all current means and relation edge weights."""
        total = 0.0
        for group in self.groups:
            for entity_id in sorted(self.group_cands[group]):
                for member in sorted(group):
                    if entity_id in self.graph.candidates(member):
                        total += self.weights.means_weight(member, entity_id)
        total += sum(self._edge_weights)
        return total

    def _compute_edge_weight(self, edge: RelationEdge) -> float:
        return self.weights.relation_weight(
            edge,
            self.effective_candidates(edge.source),
            self.effective_candidates(edge.target),
        )

    def _refresh_all_edges(self) -> None:
        self._edge_weights = [
            self._compute_edge_weight(edge)
            for edge in self.graph.relation_edges
        ]

    def _refresh_edges_of(self, phrase_ids: Set[str]) -> None:
        """Selective incremental recomputation after a removal."""
        affected: Set[int] = set()
        for phrase_id in phrase_ids:
            affected.update(self._edges_by_phrase.get(phrase_id, ()))
        for index in affected:
            self._edge_weights[index] = self._compute_edge_weight(
                self.graph.relation_edges[index]
            )

    def _touched_by_group(self, group: FrozenSet[str]) -> Set[str]:
        """Group members plus pronouns whose union includes the group."""
        touched = set(group)
        for pronoun_id, links in self.pronoun_links.items():
            if any(self.group_of.get(np_id) == group for np_id in links):
                touched.add(pronoun_id)
        return touched

    # ---- moves ----------------------------------------------------------------------

    def cheapest_move(self) -> Optional[Tuple[str, object, object]]:
        """The means/sameAs removal with the smallest contribution c(x,y,S)."""
        best: Optional[Tuple[str, object, object]] = None
        best_cost = float("inf")
        for group in self.groups:
            cands = self.group_cands[group]
            if len(cands) < 2:
                continue
            for entity_id in sorted(cands):
                cost = self._means_removal_cost(group, entity_id)
                if cost < best_cost:
                    best_cost = cost
                    best = (_MOVE_MEANS, group, entity_id)
        for pronoun_id in sorted(self.pronoun_links):
            links = self.pronoun_links[pronoun_id]
            if len(links) < 2:
                continue
            for np_id in sorted(links):
                cost = self._link_removal_cost(pronoun_id, np_id)
                if cost < best_cost:
                    best_cost = cost
                    best = (_MOVE_SAME_AS, pronoun_id, np_id)
        return best

    def _means_removal_cost(self, group: FrozenSet[str], entity_id: str) -> float:
        """c for removing candidate ``entity_id`` from a whole NP group."""
        cost = 0.0
        for member in group:
            if entity_id in self.graph.candidates(member):
                cost += self.weights.means_weight(member, entity_id)
        # Relation edges touching the group or linked pronouns.
        touched = self._touched_by_group(group)
        saved = {g: set(c) for g, c in self.group_cands.items()}
        self.group_cands[group] = self.group_cands[group] - {entity_id}
        for phrase_id in touched:
            for index in self._edges_by_phrase.get(phrase_id, ()):
                new_weight = self._compute_edge_weight(
                    self.graph.relation_edges[index]
                )
                cost += self._edge_weights[index] - new_weight
        self.group_cands = saved
        return cost

    def _link_removal_cost(self, pronoun_id: str, np_id: str) -> float:
        """c for removing a pronoun sameAs edge."""
        cost = 0.0
        saved = self.pronoun_links[pronoun_id]
        self.pronoun_links[pronoun_id] = saved - {np_id}
        for index in self._edges_by_phrase.get(pronoun_id, ()):
            new_weight = self._compute_edge_weight(
                self.graph.relation_edges[index]
            )
            cost += self._edge_weights[index] - new_weight
        self.pronoun_links[pronoun_id] = saved
        # Salience retention bonus: recent antecedents and clause
        # subjects are harder to cut (the standard coref preferences,
        # acting only as a tie-breaker against the semantic weights).
        pronoun = self.graph.phrases[pronoun_id]
        np_node = self.graph.phrases[np_id]
        distance = max(0, pronoun.sentence_index - np_node.sentence_index)
        cost += 0.002 / (1.0 + distance)
        if np_node.is_subject:
            cost += 0.002
        return cost

    def apply(self, move: Tuple[str, object, object]) -> None:
        """Apply a removal move and refresh affected edge weights."""
        kind, x, y = move
        if kind == _MOVE_MEANS:
            group: FrozenSet[str] = x  # type: ignore[assignment]
            entity_id: str = y  # type: ignore[assignment]
            self.group_cands[group].discard(entity_id)
            self._refresh_edges_of(self._touched_by_group(group))
        else:
            pronoun_id: str = x  # type: ignore[assignment]
            np_id: str = y  # type: ignore[assignment]
            self.pronoun_links[pronoun_id].discard(np_id)
            self._refresh_edges_of({pronoun_id})

    # ---- confidence scores --------------------------------------------------------------

    def compute_confidences(self, result: DensifyResult) -> None:
        """Normalized confidence per disambiguated phrase (Section 4).

        score(ni, e, S*) = c(ni, e, S*) / sum_t c(ni, e_t, S_t) where S_t
        swaps the chosen candidate for each original alternative.
        """
        for group in self.groups:
            cands = self.group_cands[group]
            if len(cands) != 1:
                continue
            chosen = sorted(cands)[0]
            chosen_cost = self._means_removal_cost_final(group, chosen)
            denominator = 0.0
            for alternative in sorted(self.original_cands[group]):
                if alternative == chosen:
                    denominator += chosen_cost
                    continue
                saved = self.group_cands[group]
                self.group_cands[group] = {alternative}
                self._refresh_edges_of(self._touched_by_group(group))
                denominator += self._means_removal_cost_final(group, alternative)
                self.group_cands[group] = saved
                self._refresh_edges_of(self._touched_by_group(group))
            score = chosen_cost / denominator if denominator > 0 else 1.0
            for member in group:
                result.confidence[member] = score

    def _means_removal_cost_final(
        self, group: FrozenSet[str], entity_id: str
    ) -> float:
        """c(x, y, S) in the final graph, allowing the last candidate."""
        cost = 0.0
        for member in group:
            if entity_id in self.graph.candidates(member):
                cost += self.weights.means_weight(member, entity_id)
        touched = self._touched_by_group(group)
        saved = {g: set(c) for g, c in self.group_cands.items()}
        self.group_cands[group] = self.group_cands[group] - {entity_id}
        for phrase_id in touched:
            for index in self._edges_by_phrase.get(phrase_id, ()):
                new_weight = self._compute_edge_weight(
                    self.graph.relation_edges[index]
                )
                cost += self._edge_weights[index] - new_weight
        self.group_cands = saved
        return cost

    # ---- write back -----------------------------------------------------------------------

    def write_back(self) -> None:
        """Mutate the graph to reflect the densified subgraph S*."""
        for group in self.groups:
            cands = self.group_cands[group]
            for member in group:
                for entity_id in list(self.graph.candidates(member)):
                    if entity_id not in cands:
                        self.graph.remove_means(member, entity_id)
        for pronoun_id, links in self.pronoun_links.items():
            for neighbor in list(self.graph.same_as.get(pronoun_id, ())):
                if neighbor not in links:
                    self.graph.remove_same_as(pronoun_id, neighbor)


__all__ = ["DensestSubgraph", "DensifyResult"]
