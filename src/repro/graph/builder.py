"""Semantic-graph construction from annotated documents (Section 3).

Builds one graph per document: per-sentence subgraphs from ClausIE
clauses, linked across sentences by the initial sameAs edges from
:mod:`repro.graph.coref`. Adds:

- phrase nodes for clause constituents (anchored at the primary entity
  mention inside each constituent span),
- relation edges labeled with lemmatized verb(+preposition) patterns,
- the "'s <noun>" possessive relation heuristic from the paper,
- predicate-nominal sameAs links from copular clauses ("Brad Pitt is an
  actor" makes the two phrases co-referent),
- means edges to every entity-repository candidate of each mention.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graph.coref import initialize_same_as
from repro.graph.semantic_graph import (
    ClauseNode,
    EntityNode,
    NodeType,
    PhraseNode,
    RelationEdge,
    SemanticGraph,
    clause_node_id,
    entity_node_id,
    phrase_node_id,
)
from repro.kb.entity_repository import EntityRepository
from repro.nlp.lexicon import pronoun_features
from repro.nlp.tokens import Document, Sentence, Span
from repro.openie.clausie import ClausIE
from repro.openie.clauses import Clause, Constituent
from repro.utils.text import strip_determiners

_COPULAS = {"be"}


class GraphBuilder:
    """Builds semantic graphs from annotated documents."""

    def __init__(
        self,
        entity_repository: EntityRepository,
        clausie: Optional[ClausIE] = None,
        possessive_heuristic: bool = True,
        copula_same_as: bool = True,
    ) -> None:
        self.repository = entity_repository
        self.clausie = clausie or ClausIE()
        self.possessive_heuristic = possessive_heuristic
        self.copula_same_as = copula_same_as

    def build(
        self,
        document: Document,
        clauses: Optional[List[List[Clause]]] = None,
    ) -> SemanticGraph:
        """Build the document-level semantic graph.

        ``clauses`` optionally supplies precomputed per-sentence clause
        lists (one list per sentence, in order) so the extraction stage
        can be cached independently of graph construction — see
        :mod:`repro.service.stage_cache`; the lists are treated as
        read-only and must come from :attr:`clausie` over these exact
        sentences. When omitted, clauses are extracted inline.
        """
        graph = SemanticGraph()
        for index, sentence in enumerate(document.sentences):
            self._add_sentence(
                graph,
                sentence,
                clauses[index] if clauses is not None else None,
            )
        initialize_same_as(graph)
        self._add_means_edges(graph)
        return graph

    # ------------------------------------------------------------------
    # Sentence-level construction
    # ------------------------------------------------------------------

    def _add_sentence(
        self,
        graph: SemanticGraph,
        sentence: Sentence,
        clauses: Optional[List[Clause]] = None,
    ) -> None:
        if clauses is None:
            clauses = self.clausie.extract(sentence)
        clause_ids: List[str] = []
        for clause in clauses:
            clause_id = clause_node_id(sentence.index, clause.verb_span.end - 1)
            graph.add_clause(
                ClauseNode(
                    node_id=clause_id,
                    sentence_index=sentence.index,
                    clause_type=clause.clause_type,
                    pattern=clause.pattern(),
                    negated=clause.negated,
                )
            )
            clause_ids.append(clause_id)
            self._add_clause_structure(graph, sentence, clause, clause_id)
        for clause, clause_id in zip(clauses, clause_ids):
            if 0 <= clause.parent < len(clause_ids):
                graph.clause_parents[clause_id] = clause_ids[clause.parent]
        if self.possessive_heuristic:
            self._add_possessives(graph, sentence)

    def _add_clause_structure(
        self,
        graph: SemanticGraph,
        sentence: Sentence,
        clause: Clause,
        clause_id: str,
    ) -> None:
        if clause.subject is None:
            return
        subject_node = self._phrase_node(graph, sentence, clause.subject)
        subject_node.is_subject = True
        graph.add_depends(clause_id, subject_node.node_id)

        primary_prep = ""
        for adverbial in clause.adverbials:
            if (
                not primary_prep
                and adverbial.preposition
                and adverbial.kind in ("np", "pronoun")
            ):
                primary_prep = adverbial.preposition

        folded = (
            clause.verb_lemma in _COPULAS
            and clause.complement is not None
            and clause.complement.kind in ("np", "literal")
            and bool(primary_prep)
        )
        if folded:
            complement_head = sentence.tokens[clause.complement.head]
            folded_pattern = f"be {complement_head.lemma} {primary_prep}"
        else:
            folded_pattern = ""

        for constituent in clause.objects:
            node = self._phrase_node(graph, sentence, constituent)
            graph.add_depends(clause_id, node.node_id)
            graph.add_relation(
                RelationEdge(
                    source=subject_node.node_id,
                    target=node.node_id,
                    pattern=clause.pattern(),
                    clause_id=clause_id,
                )
            )
        if clause.complement is not None and not folded:
            node = self._phrase_node(graph, sentence, clause.complement)
            graph.add_depends(clause_id, node.node_id)
            graph.add_relation(
                RelationEdge(
                    source=subject_node.node_id,
                    target=node.node_id,
                    pattern=clause.pattern(),
                    clause_id=clause_id,
                )
            )
            if (
                self.copula_same_as
                and clause.verb_lemma in _COPULAS
                and not clause.negated
                and node.kind in ("np", "literal")
            ):
                graph.add_same_as(subject_node.node_id, node.node_id)
        for adverbial in clause.adverbials:
            if adverbial.kind == "literal" and not adverbial.preposition:
                continue
            node = self._phrase_node(graph, sentence, adverbial)
            graph.add_depends(clause_id, node.node_id)
            if folded and adverbial.preposition == primary_prep:
                pattern = folded_pattern
            else:
                pattern = clause.pattern(adverbial.preposition)
            graph.add_relation(
                RelationEdge(
                    source=subject_node.node_id,
                    target=node.node_id,
                    pattern=pattern,
                    clause_id=clause_id,
                )
            )

    # ------------------------------------------------------------------
    # Phrase nodes
    # ------------------------------------------------------------------

    def _phrase_node(
        self, graph: SemanticGraph, sentence: Sentence, constituent: Constituent
    ) -> PhraseNode:
        span, ner = self._primary_span(sentence, constituent)
        surface = sentence.text(span.start, span.end)
        if constituent.kind == "pronoun":
            features = pronoun_features(surface)
            gender = features[0] if features and features[0] in ("male", "female") else ""
            node = PhraseNode(
                node_id=phrase_node_id(sentence.index, span.start, span.end),
                node_type=NodeType.PRONOUN,
                sentence_index=sentence.index,
                start=span.start,
                end=span.end,
                surface=surface,
                ner="PERSON" if gender else "O",
                kind="pronoun",
                gender=gender,
            )
        else:
            node = PhraseNode(
                node_id=phrase_node_id(sentence.index, span.start, span.end),
                node_type=NodeType.NOUN_PHRASE,
                sentence_index=sentence.index,
                start=span.start,
                end=span.end,
                surface=surface,
                ner=ner,
                kind=constituent.kind,
                normalized=constituent.normalized,
            )
        return graph.add_phrase(node)

    def _primary_span(
        self, sentence: Sentence, constituent: Constituent
    ) -> Tuple[Span, str]:
        """The primary mention span inside a constituent, with its label.

        Prefers the NER mention containing the constituent head, then the
        longest mention overlapping the span, then the raw span.
        """
        if constituent.kind in ("time", "money", "pronoun"):
            label = {"time": "TIME", "money": "MONEY", "pronoun": "O"}[
                constituent.kind
            ]
            return constituent.span, label
        containing = [
            m for m in sentence.entity_mentions if m.contains(constituent.head)
        ]
        if containing:
            mention = max(containing, key=len)
            return Span(mention.start, mention.end), mention.label
        overlapping = [
            m for m in sentence.entity_mentions if m.overlaps(constituent.span)
        ]
        if overlapping:
            mention = max(overlapping, key=len)
            return Span(mention.start, mention.end), mention.label
        return constituent.span, "O"

    # ------------------------------------------------------------------
    # Possessive heuristic ("Pitt's ex-wife Angelina Jolie")
    # ------------------------------------------------------------------

    def _add_possessives(self, graph: SemanticGraph, sentence: Sentence) -> None:
        tokens = sentence.tokens
        for i, token in enumerate(tokens):
            if token.pos != "POS":
                continue
            possessor = self._mention_ending_at(sentence, i - 1)
            if possessor is None:
                continue
            # The middle noun directly after 's.
            j = i + 1
            if j >= len(tokens) or tokens[j].pos not in ("NN", "NNS"):
                continue
            middle = tokens[j]
            # A name mention following the middle noun.
            name = self._mention_starting_at(sentence, j + 1)
            if name is None:
                continue
            possessor_node = self._span_phrase(graph, sentence, possessor)
            name_node = self._span_phrase(graph, sentence, name)
            graph.add_relation(
                RelationEdge(
                    source=possessor_node.node_id,
                    target=name_node.node_id,
                    pattern=middle.lemma,
                    clause_id="",
                )
            )

    def _mention_ending_at(self, sentence: Sentence, index: int) -> Optional[Span]:
        for mention in sentence.entity_mentions:
            if mention.end - 1 == index:
                return Span(mention.start, mention.end, mention.label)
        return None

    def _mention_starting_at(self, sentence: Sentence, index: int) -> Optional[Span]:
        for mention in sentence.entity_mentions:
            if mention.start == index:
                return Span(mention.start, mention.end, mention.label)
        return None

    def _span_phrase(
        self, graph: SemanticGraph, sentence: Sentence, span: Span
    ) -> PhraseNode:
        node = PhraseNode(
            node_id=phrase_node_id(sentence.index, span.start, span.end),
            node_type=NodeType.NOUN_PHRASE,
            sentence_index=sentence.index,
            start=span.start,
            end=span.end,
            surface=sentence.text(span.start, span.end),
            ner=span.label or "O",
            kind="np",
        )
        return graph.add_phrase(node)

    # ------------------------------------------------------------------
    # Means edges
    # ------------------------------------------------------------------

    def _add_means_edges(self, graph: SemanticGraph) -> None:
        for phrase_id in graph.noun_phrases():
            node = graph.phrases[phrase_id]
            if node.kind in ("time", "money"):
                continue
            for candidate in self._entity_candidates(node.surface):
                entity = self.repository.get(candidate)
                graph.add_entity(
                    EntityNode(
                        node_id=entity_node_id(candidate),
                        entity_id=candidate,
                        name=entity.canonical_name,
                        types=tuple(
                            self.repository.types_of(candidate, with_ancestors=True)
                        ),
                        gender=entity.gender,
                    )
                )
                graph.add_means(phrase_id, candidate)

    def _entity_candidates(self, surface: str) -> List[str]:
        """Alias-dictionary candidates for a mention surface.

        Strict alias lookup only: partial-name backoff would wrongly give
        an emerging "Verena Wexford" the candidates of a repository
        entity that happens to share the surname.
        """
        cleaned = strip_determiners(surface).strip()
        return [c.entity_id for c in self.repository.candidates(cleaned)]


__all__ = ["GraphBuilder"]
