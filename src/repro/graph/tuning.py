"""Hyper-parameter learning for the alpha weights (Section 4).

The paper annotates 162 sentences (203 facts, each a pair of Yago
entities plus a relation pattern), builds an independent two-node graph
per fact, defines

    prob(n_i, e_ij, n_t, e_tk, G) = W(S) / W(G)

where S keeps only the ground-truth candidate pair, and learns
alpha_1..4 by maximizing the probability of the ground truth with
L-BFGS. We reproduce this with training instances sampled from the
background corpus's emitted facts, and scipy's L-BFGS-B optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.corpus.background import BackgroundCorpus, build_background_corpus
from repro.corpus.statistics import content_tokens
from repro.corpus.world import World
from repro.graph.weights import WeightParameters
from repro.utils.rng import DeterministicRng
from repro.utils.vectors import weighted_overlap


@dataclass
class TrainingInstance:
    """One annotated fact: feature sums for truth pair vs. all pairs.

    For the probability W(S)/W(G) with linear weights, only the per-alpha
    feature aggregates matter:

    - ``truth``: feature vector (prior, sim, coh, ts) of the ground-truth
      candidate pair,
    - ``total``: the same features summed over all candidate pairs of the
      two mentions.
    """

    truth: np.ndarray
    total: np.ndarray


def build_training_instances(
    world: World,
    corpus: Optional[BackgroundCorpus] = None,
    limit: int = 203,
    seed: int = 162,
) -> List[TrainingInstance]:
    """Sample annotated facts with two linkable entity arguments."""
    corpus = corpus or build_background_corpus(world)
    statistics = corpus.statistics
    rng = DeterministicRng(seed, namespace="tuning")

    candidates_facts = []
    for doc in corpus.documents:
        sentences = doc.sentences
        for emitted in doc.emitted:
            entity_args = emitted.entity_args()
            if not entity_args:
                continue
            subject = world.entities.get(emitted.subject_id)
            obj = world.entities.get(entity_args[0])
            if subject is None or obj is None:
                continue
            if not subject.in_repository or not obj.in_repository:
                continue
            sentence_text = (
                sentences[emitted.sentence_index]
                if emitted.sentence_index < len(sentences)
                else ""
            )
            candidates_facts.append((emitted, subject, obj, sentence_text))
    rng.shuffle(candidates_facts)

    instances: List[TrainingInstance] = []
    for emitted, subject, obj, sentence_text in candidates_facts[: limit * 3]:
        instance = _instance_for(
            world, statistics, emitted, subject, obj, sentence_text
        )
        if instance is not None:
            instances.append(instance)
        if len(instances) >= limit:
            break
    return instances


def _instance_for(world, statistics, emitted, subject, obj, sentence_text):
    repository = world.entity_repository
    subject_cands = [e.entity_id for e in repository.candidates(subject.name)]
    object_cands = [e.entity_id for e in repository.candidates(obj.name)]
    # Ambiguity via the short aliases as well.
    for alias in subject.aliases[1:]:
        for cand in repository.candidates(alias):
            if cand.entity_id not in subject_cands:
                subject_cands.append(cand.entity_id)
    for alias in obj.aliases[1:]:
        for cand in repository.candidates(alias):
            if cand.entity_id not in object_cands:
                object_cands.append(cand.entity_id)
    if subject.entity_id not in subject_cands or obj.entity_id not in object_cands:
        return None
    if len(subject_cands) * len(object_cands) < 2:
        return None  # unambiguous instances carry no training signal

    sentence_vector = statistics.tfidf_vector(content_tokens(sentence_text))

    def features(s_id: str, o_id: str) -> np.ndarray:
        prior = statistics.prior(subject.name, s_id) + statistics.prior(
            obj.name, o_id
        )
        sim = weighted_overlap(
            sentence_vector, statistics.context_of(s_id)
        ) + weighted_overlap(sentence_vector, statistics.context_of(o_id))
        coh = weighted_overlap(
            statistics.context_of(s_id), statistics.context_of(o_id)
        )
        ts = 0.0
        s_entity = world.entities.get(s_id)
        o_entity = world.entities.get(o_id)
        if s_entity is not None and o_entity is not None:
            for s_type in world.type_system.with_ancestors(s_entity.types[0]):
                for o_type in world.type_system.with_ancestors(o_entity.types[0]):
                    ts += statistics.type_signature(
                        s_type, o_type, emitted.pattern
                    )
        return np.array([prior, sim, coh, ts])

    truth = features(subject.entity_id, obj.entity_id)
    total = np.zeros(4)
    for s_id in subject_cands:
        for o_id in object_cands:
            total += features(s_id, o_id)
    if not np.any(total > 0):
        return None
    return TrainingInstance(truth=truth, total=total)


def learn_parameters(
    instances: Sequence[TrainingInstance],
    initial: Optional[WeightParameters] = None,
) -> WeightParameters:
    """Maximize sum log(W(S)/W(G)) over the instances with L-BFGS-B."""
    if not instances:
        raise ValueError("no training instances")
    x0 = np.array(
        (initial or WeightParameters()).as_tuple(), dtype=float
    )

    truths = np.stack([i.truth for i in instances])
    totals = np.stack([i.total for i in instances])

    def negative_log_likelihood(alphas: np.ndarray) -> float:
        numerators = truths @ alphas
        denominators = totals @ alphas
        eps = 1e-9
        return float(
            -np.sum(np.log((numerators + eps) / (denominators + eps)))
        )

    result = minimize(
        negative_log_likelihood,
        x0,
        method="L-BFGS-B",
        bounds=[(1e-4, 10.0)] * 4,
    )
    alphas = result.x
    # The probability is a ratio of linear forms, hence scale-invariant:
    # normalize so alpha1 = 1 to make learned parameters comparable.
    if alphas[0] > 0:
        alphas = alphas / alphas[0]
    return WeightParameters(
        alpha1=float(alphas[0]),
        alpha2=float(alphas[1]),
        alpha3=float(alphas[2]),
        alpha4=float(alphas[3]),
    )


def tune_world(world: World) -> WeightParameters:
    """End-to-end: sample instances from the world and learn the alphas."""
    instances = build_training_instances(world)
    return learn_parameters(instances)


__all__ = [
    "TrainingInstance",
    "build_training_instances",
    "learn_parameters",
    "tune_world",
]
