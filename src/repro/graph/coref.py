"""Initial co-reference linking (the Bamman et al. [3] stand-in).

Creates the initial ``sameAs`` edges of the semantic graph:

- between noun-phrase nodes with the same NER label whose surfaces match
  by shared trailing words ("Brad Pitt" ~ "Pitt");
- between a pronoun node and every preceding noun-phrase node within a
  backward window of five sentences (the paper's setting), restricted to
  person-like phrases for personal pronouns.

The graph algorithm later removes all but the most likely pronoun edge;
NP-NP edges act as hard constraints (constraint (3)).
"""

from __future__ import annotations

from typing import Dict

from repro.graph.semantic_graph import PhraseNode, SemanticGraph
from repro.nlp.lexicon import pronoun_features
from repro.utils.text import longest_common_suffix_words, strip_determiners

PRONOUN_WINDOW_SENTENCES = 5


def link_noun_phrases(graph: SemanticGraph) -> int:
    """Add NP-NP sameAs edges by label + string matching. Returns count."""
    nps = [graph.phrases[pid] for pid in graph.noun_phrases()]
    added = 0
    for i, a in enumerate(nps):
        for b in nps[i + 1:]:
            if _np_match(a, b):
                graph.add_same_as(a.node_id, b.node_id)
                added += 1
    return added


def _np_match(a: PhraseNode, b: PhraseNode) -> bool:
    if a.kind in ("time", "money") or b.kind in ("time", "money"):
        return False
    if a.ner != b.ner or a.ner in ("O", "TIME", "MONEY"):
        return False
    surface_a = strip_determiners(a.surface)
    surface_b = strip_determiners(b.surface)
    if surface_a.lower() == surface_b.lower():
        return True
    shared = longest_common_suffix_words(surface_a, surface_b)
    shorter = min(len(surface_a.split()), len(surface_b.split()))
    return shared > 0 and shared == shorter


def link_pronouns(graph: SemanticGraph) -> int:
    """Add pronoun -> NP sameAs edges within the backward window."""
    added = 0
    nps = [graph.phrases[pid] for pid in graph.noun_phrases()]
    for pronoun_id in graph.pronouns():
        pronoun = graph.phrases[pronoun_id]
        features = pronoun_features(pronoun.surface)
        personal = features is not None and features[0] in ("male", "female")
        for np in nps:
            if np.sentence_index > pronoun.sentence_index:
                continue
            if pronoun.sentence_index - np.sentence_index > PRONOUN_WINDOW_SENTENCES:
                continue
            # Must precede the pronoun.
            if (
                np.sentence_index == pronoun.sentence_index
                and np.start >= pronoun.start
            ):
                continue
            if personal and np.ner not in ("PERSON", "O"):
                continue
            graph.add_same_as(pronoun_id, np.node_id)
            added += 1
    return added


def initialize_same_as(graph: SemanticGraph) -> Dict[str, int]:
    """Run both linkers; returns edge counts for diagnostics."""
    return {
        "np_np": link_noun_phrases(graph),
        "pronoun_np": link_pronouns(graph),
    }


__all__ = [
    "PRONOUN_WINDOW_SENTENCES",
    "initialize_same_as",
    "link_noun_phrases",
    "link_pronouns",
]
