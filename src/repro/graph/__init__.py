"""Semantic graph and the joint NED + co-reference graph algorithm.

The heart of QKBfly (Sections 3-4): per-sentence semantic graphs over
clause / noun-phrase / pronoun / entity nodes with depends / relation /
sameAs / means edges, densified by a greedy constrained densest-subgraph
algorithm that jointly disambiguates entities and resolves co-references.
An exact ILP formulation (Appendix A) is provided for comparison, solved
by our own branch-and-bound 0-1 solver (the Gurobi stand-in).
"""

from repro.graph.builder import GraphBuilder
from repro.graph.densify import DensestSubgraph, DensifyResult
from repro.graph.semantic_graph import (
    EdgeType,
    EntityNode,
    NodeType,
    PhraseNode,
    RelationEdge,
    SemanticGraph,
)
from repro.graph.weights import EdgeWeights, WeightParameters

__all__ = [
    "DensestSubgraph",
    "DensifyResult",
    "EdgeType",
    "EdgeWeights",
    "EntityNode",
    "GraphBuilder",
    "NodeType",
    "PhraseNode",
    "RelationEdge",
    "SemanticGraph",
    "WeightParameters",
]
