"""Evaluation: metrics and simulated assessment against ground truth.

The paper evaluates with two human assessors over 200-extraction samples
(Cohen's kappa 0.7), Wald 95% confidence intervals, precision at recall
levels, and macro-averaged P/R/F1 for QA. We reproduce the measurement
process: an oracle checks extractions against the realizer's emitted
ground truth, and two simulated assessors add calibrated judgement noise.
"""

from repro.eval.assess import Assessment, FactMatcher, SimulatedAssessors
from repro.eval.metrics import (
    cohen_kappa,
    macro_prf,
    paired_t_test,
    precision_recall_f1,
    wald_interval,
)

__all__ = [
    "Assessment",
    "FactMatcher",
    "SimulatedAssessors",
    "cohen_kappa",
    "macro_prf",
    "paired_t_test",
    "precision_recall_f1",
    "wald_interval",
]
