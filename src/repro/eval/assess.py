"""Ground-truth fact matching and simulated human assessment.

:class:`FactMatcher` decides whether an extracted fact is supported by
the realizer's per-document emitted ground truth — the oracle replacing
the paper's human judgement. :class:`SimulatedAssessors` reproduces the
measurement process: two assessors whose judgements flip the oracle's
verdict with a small independent error rate, calibrated so that
inter-assessor agreement lands near the paper's kappa = 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.realizer import EmittedFact, RealizedDocument
from repro.corpus.world import World
from repro.eval.metrics import cohen_kappa, wald_interval
from repro.kb.facts import (
    ARG_EMERGING,
    ARG_ENTITY,
    ARG_LITERAL,
    ARG_MONEY,
    ARG_TIME,
    Argument,
    Fact,
    KnowledgeBase,
)
from repro.utils.rng import DeterministicRng
from repro.utils.text import strip_determiners


class FactMatcher:
    """Checks extracted facts against emitted ground truth."""

    def __init__(self, world: World) -> None:
        self.world = world
        self.patterns = world.pattern_repository

    def is_correct(
        self,
        fact: Fact,
        document: RealizedDocument,
        kb: Optional[KnowledgeBase] = None,
    ) -> bool:
        """True when some emitted fact of ``document`` supports ``fact``."""
        for emitted in document.emitted:
            if self._matches(fact, emitted, kb):
                return True
        return False

    # ------------------------------------------------------------------

    def _matches(
        self, fact: Fact, emitted: EmittedFact, kb: Optional[KnowledgeBase]
    ) -> bool:
        if not self._predicate_matches(fact, emitted):
            return False
        symmetric = self._is_symmetric(emitted)
        if self._argument_is_entity(fact.subject, emitted.subject_id, kb):
            return self._objects_match(fact.objects, emitted.args, kb)
        if symmetric and len(fact.objects) >= 1:
            # <A, married_to, B> matches emitted <B, married_to, A>: the
            # extracted subject must be the emitted object and vice versa.
            entity_args = [v for k, v in emitted.args if k == "entity"]
            if entity_args and self._argument_is_entity(
                fact.subject, entity_args[0], kb
            ):
                swapped = [("entity", emitted.subject_id)] + [
                    a for a in emitted.args
                    if not (a[0] == "entity" and a[1] == entity_args[0])
                ]
                return self._objects_match(fact.objects, swapped, kb)
        return False

    def _is_symmetric(self, emitted: EmittedFact) -> bool:
        if emitted.relation_id is None:
            return False
        spec = None
        from repro.corpus.schema import SPECS_BY_ID

        spec = SPECS_BY_ID.get(emitted.relation_id)
        return bool(spec and spec.symmetric)

    def _predicate_matches(self, fact: Fact, emitted: EmittedFact) -> bool:
        if fact.canonical_predicate:
            if emitted.relation_id is not None:
                return fact.predicate == emitted.relation_id
            # Extracted canonical relation vs narrative pattern: compare
            # through the pattern repository.
            return self.patterns.canonicalize(emitted.pattern) == fact.predicate
        # New relation: lemmatized pattern comparison (synset-tolerant).
        if _normalize_pattern(fact.pattern) == _normalize_pattern(emitted.pattern):
            return True
        extracted_rel = self.patterns.canonicalize(fact.pattern)
        emitted_rel = (
            emitted.relation_id
            if emitted.relation_id is not None
            else self.patterns.canonicalize(emitted.pattern)
        )
        return extracted_rel is not None and extracted_rel == emitted_rel

    def _objects_match(
        self,
        objects: Sequence[Argument],
        emitted_args: Sequence[Tuple[str, str]],
        kb: Optional[KnowledgeBase],
    ) -> bool:
        """Every extracted object must be supported by an emitted arg."""
        remaining = list(emitted_args)
        for argument in objects:
            index = self._find_match(argument, remaining, kb)
            if index is None:
                return False
            remaining.pop(index)
        return True

    def _find_match(
        self,
        argument: Argument,
        emitted_args: List[Tuple[str, str]],
        kb: Optional[KnowledgeBase],
    ) -> Optional[int]:
        for index, (kind, value) in enumerate(emitted_args):
            if kind == "entity" and self._argument_is_entity(argument, value, kb):
                return index
            if kind == "time" and argument.kind == ARG_TIME:
                if _time_compatible(argument.value, value):
                    return index
            if kind == "money" and argument.kind == ARG_MONEY:
                if argument.value.replace(" ", "") == value.replace(" ", ""):
                    return index
            if kind == "literal" and argument.kind == ARG_LITERAL:
                extracted = strip_determiners(argument.value).lower()
                if value.lower() in extracted or extracted in value.lower():
                    return index
        return None

    def _argument_is_entity(
        self, argument: Argument, entity_id: str, kb: Optional[KnowledgeBase]
    ) -> bool:
        """Does an extracted argument denote the given world entity?"""
        entity = self.world.entities.get(entity_id)
        if entity is None:
            return False
        if argument.kind == ARG_ENTITY:
            return argument.value == entity_id
        if argument.kind == ARG_EMERGING:
            aliases = {a.lower() for a in entity.aliases}
            mentions = {argument.display.lower()}
            if kb is not None and argument.value in kb.emerging:
                mentions.update(
                    strip_determiners(m).lower()
                    for m in kb.emerging[argument.value].mentions
                )
            return bool(aliases & mentions)
        if argument.kind == ARG_LITERAL:
            return argument.value.lower() in {a.lower() for a in entity.aliases}
        return False


def _normalize_pattern(pattern: str) -> str:
    return " ".join(pattern.lower().replace("not ", "").split())


def _time_compatible(a: str, b: str) -> bool:
    """ISO-ish prefix compatibility: "2009" matches "2009-04-19"."""
    a, b = a.strip(), b.strip()
    if not a or not b:
        return False
    return a.startswith(b) or b.startswith(a)


def ned_verdicts(
    world: World,
    document: RealizedDocument,
    graph,
    result,
) -> List[bool]:
    """Entity-linking correctness per linked mention (Table 4 judging).

    For every noun-phrase node the densification linked to an entity,
    the verdict is True when a realizer mention with the same sentence
    and surface refers to that entity.
    """
    truth: Dict[Tuple[int, str], str] = {}
    for mention in document.mentions:
        truth.setdefault(
            (mention.sentence_index, mention.surface.lower()),
            mention.entity_id,
        )
    verdicts: List[bool] = []
    for phrase_id, entity_id in sorted(result.assignment.items()):
        if entity_id is None:
            continue
        node = graph.phrases[phrase_id]
        key = (node.sentence_index, node.surface.lower())
        expected = truth.get(key)
        if expected is None:
            stripped = strip_determiners(node.surface).lower()
            expected = truth.get((node.sentence_index, stripped))
        if expected is None:
            continue  # descriptor spans etc.: not judged
        verdicts.append(expected == entity_id)
    return verdicts


def babelfy_verdicts(
    world: World, document: RealizedDocument, links: Dict
) -> List[bool]:
    """Entity-linking correctness for a Babelfy-style linker output."""
    truth: Dict[Tuple[int, str], str] = {}
    for mention in document.mentions:
        truth.setdefault(
            (mention.sentence_index, mention.surface.lower()),
            mention.entity_id,
        )
    # links: (sentence, start, end) -> entity id; we need surfaces, which
    # the caller supplies via an annotated document in links_surfaces.
    verdicts: List[bool] = []
    for (sentence_index, surface), entity_id in links.items():
        if entity_id is None:
            continue
        expected = truth.get((sentence_index, surface.lower()))
        if expected is None:
            continue
        verdicts.append(expected == entity_id)
    return verdicts


@dataclass
class Assessment:
    """Outcome of a (simulated) manual assessment."""

    sample_size: int
    precision: float
    interval: float          # Wald 95% half-width
    kappa: float
    oracle_precision: float  # noise-free precision over the same sample


class SimulatedAssessors:
    """Two noisy assessors over a sample of extraction correctness."""

    def __init__(self, seed: int = 2017, error_rate: float = 0.09) -> None:
        # Two independent assessors flipping the oracle verdict with
        # probability ``error_rate`` land near kappa = 0.7, matching the
        # inter-assessor agreement reported in Section 7.1.
        self._rng = DeterministicRng(seed, namespace="assessors")
        self.error_rate = error_rate

    def assess(
        self, oracle_verdicts: Sequence[bool], sample_size: int = 200
    ) -> Assessment:
        """Sample extractions and produce the reported precision."""
        verdicts = list(oracle_verdicts)
        if not verdicts:
            return Assessment(0, 0.0, 0.0, 1.0, 0.0)
        rng = self._rng.fork(f"sample:{len(verdicts)}")
        if len(verdicts) > sample_size:
            indices = rng.sample(range(len(verdicts)), sample_size)
            verdicts = [verdicts[i] for i in sorted(indices)]
        labels_a = [self._judge(rng.fork("a"), v, i) for i, v in enumerate(verdicts)]
        labels_b = [self._judge(rng.fork("b"), v, i) for i, v in enumerate(verdicts)]
        precision = (sum(labels_a) + sum(labels_b)) / (2 * len(verdicts))
        kappa = cohen_kappa(labels_a, labels_b)
        return Assessment(
            sample_size=len(verdicts),
            precision=precision,
            interval=wald_interval(precision, len(verdicts)),
            kappa=kappa,
            oracle_precision=sum(verdicts) / len(verdicts),
        )

    def _judge(self, rng: DeterministicRng, verdict: bool, index: int) -> int:
        flip = rng.fork(str(index)).maybe(self.error_rate)
        return int(verdict != flip)


__all__ = ["Assessment", "FactMatcher", "SimulatedAssessors"]
