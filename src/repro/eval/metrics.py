"""Statistical metrics used throughout the experiments."""

from __future__ import annotations

import math
from typing import List, Sequence, Set, Tuple


def wald_interval(p: float, n: int, z: float = 1.96) -> float:
    """Half-width of the Wald confidence interval for a proportion.

    The paper reports "precision values ... with Wald confidence
    intervals at 95%"; z = 1.96 corresponds to 95%.
    """
    if n <= 0:
        return 0.0
    return z * math.sqrt(max(p * (1.0 - p), 0.0) / n)


def cohen_kappa(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """Cohen's kappa for two binary annotators."""
    if len(labels_a) != len(labels_b):
        raise ValueError("annotator label lists must have the same length")
    n = len(labels_a)
    if n == 0:
        return 0.0
    agree = sum(1 for a, b in zip(labels_a, labels_b) if a == b) / n
    pa = sum(labels_a) / n
    pb = sum(labels_b) / n
    expected = pa * pb + (1 - pa) * (1 - pb)
    if expected >= 1.0:
        return 1.0
    return (agree - expected) / (1.0 - expected)


def precision_recall_f1(
    predicted: Set, gold: Set
) -> Tuple[float, float, float]:
    """Set-based precision / recall / F1 for one instance."""
    if not predicted and not gold:
        return 1.0, 1.0, 1.0
    if not predicted:
        return 0.0, 0.0, 0.0
    if not gold:
        return 0.0, 0.0, 0.0
    hits = len(predicted & gold)
    precision = hits / len(predicted)
    recall = hits / len(gold)
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def macro_prf(
    answer_sets: Sequence[Set], gold_sets: Sequence[Set]
) -> Tuple[float, float, float]:
    """Macro-averaged precision / recall / F1 across questions.

    Exactly the formulas of Section 7.4: per-question P/R/F1 averaged
    uniformly over questions.
    """
    if len(answer_sets) != len(gold_sets):
        raise ValueError("answer and gold lists must have the same length")
    if not answer_sets:
        return 0.0, 0.0, 0.0
    totals = [0.0, 0.0, 0.0]
    for predicted, gold in zip(answer_sets, gold_sets):
        p, r, f = precision_recall_f1(predicted, gold)
        totals[0] += p
        totals[1] += r
        totals[2] += f
    n = len(answer_sets)
    return totals[0] / n, totals[1] / n, totals[2] / n


def paired_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Paired t-test; returns (t statistic, two-sided p-value).

    Used for the significance claim in Section 7.2 (greedy vs ILP).
    """
    from scipy import stats

    t, p = stats.ttest_rel(list(a), list(b))
    return float(t), float(p)


def precision_at(ranked_correctness: Sequence[bool], k: int) -> float:
    """Precision within the top-``k`` of a confidence-ranked list."""
    if k <= 0:
        return 0.0
    window = list(ranked_correctness)[:k]
    if not window:
        return 0.0
    return sum(window) / len(window)


def precision_recall_curve(
    ranked_correctness: Sequence[bool],
) -> List[Tuple[int, float]]:
    """(#extractions, precision) points along a confidence ranking.

    This is the curve of Figure 5: precision as a function of the number
    of extractions kept.
    """
    points: List[Tuple[int, float]] = []
    correct = 0
    for index, is_correct in enumerate(ranked_correctness, start=1):
        if is_correct:
            correct += 1
        points.append((index, correct / index))
    return points


__all__ = [
    "cohen_kappa",
    "macro_prf",
    "paired_t_test",
    "precision_at",
    "precision_recall_curve",
    "precision_recall_f1",
    "wald_interval",
]
