"""Pretty-printing of reproduced tables (used by the benchmark harness)."""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence, rows: Iterable[Sequence]) -> None:
    """Print one reproduced table in a paper-like fixed-width layout."""
    rows = [tuple(row) for row in rows]
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


__all__ = ["print_table"]
