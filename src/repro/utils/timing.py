"""Wall-clock measurement used by the runtime columns of the benchmarks."""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class Stopwatch:
    """Accumulates named timing intervals.

    The paper reports average runtime per document / per sentence with
    confidence intervals; :class:`Stopwatch` collects the raw samples so
    the benchmark harness can compute both.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}
        self._open: Dict[str, float] = {}

    def start(self, name: str) -> None:
        """Begin timing the interval ``name``."""
        self._open[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """End timing ``name`` and return the elapsed seconds."""
        if name not in self._open:
            raise KeyError(f"stopwatch interval {name!r} was never started")
        elapsed = time.perf_counter() - self._open.pop(name)
        self._samples.setdefault(name, []).append(elapsed)
        return elapsed

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured sample."""
        self._samples.setdefault(name, []).append(seconds)

    def samples(self, name: str) -> List[float]:
        """Return all samples recorded under ``name``."""
        return list(self._samples.get(name, []))

    def mean(self, name: str) -> float:
        """Return the mean of the samples recorded under ``name``."""
        samples = self._samples.get(name)
        if not samples:
            raise KeyError(f"no samples for {name!r}")
        return sum(samples) / len(samples)

    def total(self, name: str) -> float:
        """Return the summed time recorded under ``name``."""
        return sum(self._samples.get(name, []))

    def names(self) -> List[str]:
        """Return all interval names with at least one sample."""
        return sorted(self._samples)


class timed:
    """Context manager recording one sample into a :class:`Stopwatch`."""

    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self._watch.record(self._name, time.perf_counter() - self._start)


__all__ = ["Stopwatch", "timed"]
