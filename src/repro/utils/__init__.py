"""Shared utilities: deterministic RNG, timing, text and vector helpers."""

from repro.utils.rng import DeterministicRng
from repro.utils.text import normalize_whitespace, title_case
from repro.utils.timing import Stopwatch
from repro.utils.vectors import SparseVector, weighted_overlap

__all__ = [
    "DeterministicRng",
    "SparseVector",
    "Stopwatch",
    "normalize_whitespace",
    "title_case",
    "weighted_overlap",
]
