"""Sparse vectors and the weighted-overlap similarity of the paper.

Section 4 of the paper weights `means` edges with a TF-IDF context
similarity computed as the *weighted overlap coefficient*::

    sim(u, v) = sum_k min(u_k, v_k) / min(sum_k u_k, sum_k v_k)

which is bounded in [0, 1] and equals 1 when one vector is contained in
the other. We implement it over dictionary-backed sparse vectors.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class SparseVector:
    """An immutable-by-convention sparse vector keyed by string dimensions."""

    __slots__ = ("_data", "_total")

    def __init__(self, data: Mapping[str, float] = ()) -> None:
        self._data: Dict[str, float] = {k: float(v) for k, v in dict(data).items() if v}
        self._total = sum(self._data.values())

    @classmethod
    def from_counts(cls, tokens: Iterable[str]) -> "SparseVector":
        """Build a term-frequency vector from a token stream."""
        counts: Dict[str, float] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0.0) + 1.0
        return cls(counts)

    def get(self, key: str, default: float = 0.0) -> float:
        """Return the weight of ``key`` (0 when absent)."""
        return self._data.get(key, default)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate over (dimension, weight) pairs."""
        return iter(self._data.items())

    def keys(self):
        """Return the non-zero dimensions."""
        return self._data.keys()

    def total(self) -> float:
        """Return the L1 mass of the vector."""
        return self._total

    def norm(self) -> float:
        """Return the L2 norm of the vector."""
        return math.sqrt(sum(v * v for v in self._data.values()))

    def scale(self, factor: float) -> "SparseVector":
        """Return a new vector with every weight multiplied by ``factor``."""
        return SparseVector({k: v * factor for k, v in self._data.items()})

    def reweight(self, weights: Mapping[str, float]) -> "SparseVector":
        """Return a new vector with each dimension multiplied by ``weights``.

        Dimensions missing from ``weights`` are dropped; this is how raw
        term-frequency vectors become TF-IDF vectors.
        """
        return SparseVector(
            {k: v * weights[k] for k, v in self._data.items() if k in weights}
        )

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = dict(sorted(self._data.items(), key=lambda kv: -kv[1])[:4])
        return f"SparseVector({len(self._data)} dims, top={preview})"


def weighted_overlap(a: SparseVector, b: SparseVector) -> float:
    """Weighted overlap coefficient between two sparse vectors.

    Returns 0 when either vector is empty. Iterates over the smaller
    vector so the cost is O(min(|a|, |b|)).
    """
    if not a or not b:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    shared = 0.0
    for key, value in small.items():
        other = large.get(key)
        if other:
            shared += min(value, other)
    denom = min(a.total(), b.total())
    if denom <= 0.0:
        return 0.0
    return shared / denom


def cosine(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity, used by some baselines (Babelfy-style NED)."""
    if not a or not b:
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    dot = 0.0
    for key, value in small.items():
        other = large.get(key)
        if other:
            dot += value * other
    denom = a.norm() * b.norm()
    if denom <= 0.0:
        return 0.0
    return dot / denom


__all__ = ["SparseVector", "cosine", "weighted_overlap"]
