"""Deterministic random number generation.

Every stochastic component in the reproduction (world generation, noisy
assessors, sampling for evaluation) draws from a :class:`DeterministicRng`
seeded from a root seed plus a string *namespace*. This makes every
experiment bit-for-bit reproducible while keeping independent components
statistically independent: two namespaces never share a stream.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(root_seed: int, namespace: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a ``namespace``.

    The derivation hashes both inputs with SHA-256 so that nearby root
    seeds or similar namespaces still yield unrelated child streams.
    """
    payload = f"{root_seed}:{namespace}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & _MASK_64


class DeterministicRng:
    """A small, fast, seedable PRNG (xorshift64*) with sampling helpers.

    We intentionally avoid :mod:`random` so that the stream is fully under
    our control and stable across Python versions. The generator passes
    basic equidistribution needs for simulation purposes; it is *not* a
    cryptographic PRNG and is not meant to be one.
    """

    def __init__(self, seed: int = 1, namespace: str = "") -> None:
        if namespace:
            seed = derive_seed(seed, namespace)
        # xorshift must not start at state 0.
        self._state = (seed & _MASK_64) or 0x9E3779B97F4A7C15

    def fork(self, namespace: str) -> "DeterministicRng":
        """Return an independent child generator for ``namespace``."""
        return DeterministicRng(self._state, namespace=namespace)

    def next_u64(self) -> int:
        """Advance the state and return the next raw 64-bit value."""
        x = self._state
        x ^= (x >> 12) & _MASK_64
        x ^= (x << 25) & _MASK_64
        x ^= (x >> 27) & _MASK_64
        self._state = x & _MASK_64
        return (self._state * 0x2545F4914F6CDD1D) & _MASK_64

    def random(self) -> float:
        """Return a float uniformly distributed in ``[0, 1)``."""
        return self.next_u64() / float(1 << 64)

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniformly random element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Return an element of ``items`` sampled proportionally to ``weights``."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        target = self.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if target < cumulative:
                return item
        return items[-1]

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Return ``k`` distinct elements sampled without replacement."""
        if k > len(items):
            raise ValueError(f"cannot sample {k} from {len(items)} items")
        pool = list(items)
        out: List[T] = []
        for _ in range(k):
            index = self.randint(0, len(pool) - 1)
            out.append(pool.pop(index))
        return out

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a new shuffled list of ``items``."""
        out = list(items)
        self.shuffle(out)
        return out

    def zipf_rank(self, n: int, exponent: float = 1.1) -> int:
        """Sample a 0-based rank from a Zipf distribution over ``n`` ranks.

        Used to give entities a realistic prominence skew: a handful of
        very popular entities and a long tail, mirroring Wikipedia anchor
        statistics the paper's prior feature is built on.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
        ranks = list(range(n))
        return self.weighted_choice(ranks, weights)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Return a normally distributed sample (Box-Muller)."""
        import math

        u1 = max(self.random(), 1e-12)
        u2 = self.random()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return mu + sigma * z

    def maybe(self, probability: float) -> bool:
        """Return True with the given ``probability``."""
        return self.random() < probability

    def pick_subset(self, items: Sequence[T], probability: float) -> List[T]:
        """Return the subset of ``items`` where each element is kept i.i.d."""
        return [item for item in items if self.maybe(probability)]


def spread(rng: DeterministicRng, count: int, namespace: str = "spread") -> List[DeterministicRng]:
    """Return ``count`` independent children of ``rng``."""
    return [rng.fork(f"{namespace}:{index}") for index in range(count)]


__all__ = ["DeterministicRng", "derive_seed", "spread"]
