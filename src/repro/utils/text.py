"""Small text helpers shared across the pipeline."""

from __future__ import annotations

import re
from typing import Iterable, List

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_whitespace(text: str) -> str:
    """Collapse all whitespace runs to single spaces and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def title_case(text: str) -> str:
    """Capitalize the first letter of every word, leaving the rest intact.

    Unlike :meth:`str.title` this does not lowercase interior letters, so
    acronyms like "ONE Campaign" survive.
    """
    words = text.split(" ")
    out = []
    for word in words:
        if word:
            out.append(word[0].upper() + word[1:])
        else:
            out.append(word)
    return " ".join(out)


def is_capitalized(token: str) -> bool:
    """Return True when the token starts with an uppercase letter."""
    return bool(token) and token[0].isupper()


def is_all_caps(token: str) -> bool:
    """Return True for all-uppercase alphabetic tokens such as acronyms."""
    return len(token) > 1 and token.isalpha() and token.isupper()


def token_shape(token: str) -> str:
    """Return a coarse orthographic shape, e.g. ``Xxx``, ``dd``, ``$d``.

    Runs of the same character class are collapsed, which is the standard
    shape feature used by NER taggers.
    """
    out: List[str] = []
    for ch in token:
        if ch.isupper():
            code = "X"
        elif ch.islower():
            code = "x"
        elif ch.isdigit():
            code = "d"
        else:
            code = ch
        if not out or out[-1] != code:
            out.append(code)
    return "".join(out)


def ngrams(tokens: Iterable[str], n: int) -> List[tuple]:
    """Return the list of ``n``-grams over ``tokens``."""
    toks = list(tokens)
    if n <= 0:
        raise ValueError("n must be positive")
    return [tuple(toks[i : i + n]) for i in range(len(toks) - n + 1)]


def longest_common_suffix_words(a: str, b: str) -> int:
    """Number of trailing words shared by two phrases (case-insensitive).

    Used by the string-match co-reference heuristic: "Brad Pitt" and
    "Pitt" share one trailing word.
    """
    aw = a.lower().split()
    bw = b.lower().split()
    count = 0
    while count < len(aw) and count < len(bw) and aw[-1 - count] == bw[-1 - count]:
        count += 1
    return count


def strip_determiners(phrase: str) -> str:
    """Drop a leading determiner ("the", "a", "an") from a phrase."""
    words = phrase.split()
    if words and words[0].lower() in {"the", "a", "an"}:
        return " ".join(words[1:])
    return phrase


__all__ = [
    "is_all_caps",
    "is_capitalized",
    "longest_common_suffix_words",
    "ngrams",
    "normalize_whitespace",
    "strip_determiners",
    "title_case",
    "token_shape",
]
