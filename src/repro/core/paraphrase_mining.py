"""On-the-fly relational paraphrase mining (the paper's future work).

Section 9 names "on-the-fly relational paraphrase mining" as an
important follow-up direction: new relation patterns discovered during
KB construction should be clustered into synsets *without* a
pre-computed dictionary. This module implements the standard
distributional approach: two out-of-repository patterns are paraphrases
when they connect (near-)identical sets of argument pairs — the same
signal PATTY itself was mined with, applied to the on-the-fly KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.kb.facts import Fact, KnowledgeBase


@dataclass
class MinedSynset:
    """A cluster of mutually paraphrastic new patterns."""

    patterns: List[str]
    support: int                 # distinct argument pairs covered
    representative: str = ""

    def __post_init__(self) -> None:
        if not self.representative and self.patterns:
            self.representative = min(self.patterns, key=len)


class ParaphraseMiner:
    """Clusters new (out-of-repository) relation patterns by argument overlap.

    Args:
        min_shared: Minimum number of argument pairs two patterns must
            share to be merged.
        min_jaccard: Minimum Jaccard similarity between their argument
            pair sets.
    """

    def __init__(self, min_shared: int = 2, min_jaccard: float = 0.5) -> None:
        self.min_shared = min_shared
        self.min_jaccard = min_jaccard

    def mine(self, kb: KnowledgeBase) -> List[MinedSynset]:
        """Cluster the KB's non-canonical predicates into synsets."""
        pairs_of: Dict[str, Set[Tuple[str, str]]] = {}
        for fact in kb.facts:
            if fact.canonical_predicate:
                continue
            key = self._argument_pair(fact)
            if key is None:
                continue
            pairs_of.setdefault(fact.predicate, set()).add(key)

        patterns = sorted(pairs_of)
        parent: Dict[str, str] = {p: p for p in patterns}

        def find(p: str) -> str:
            while parent[p] != p:
                parent[p] = parent[parent[p]]
                p = parent[p]
            return p

        for i, a in enumerate(patterns):
            for b in patterns[i + 1:]:
                if self._paraphrase(pairs_of[a], pairs_of[b]):
                    parent[find(b)] = find(a)

        clusters: Dict[str, List[str]] = {}
        for pattern in patterns:
            clusters.setdefault(find(pattern), []).append(pattern)
        out = []
        for members in clusters.values():
            support_pairs: Set[Tuple[str, str]] = set()
            for member in members:
                support_pairs.update(pairs_of[member])
            out.append(
                MinedSynset(patterns=sorted(members), support=len(support_pairs))
            )
        out.sort(key=lambda s: (-s.support, s.representative))
        return out

    def apply(self, kb: KnowledgeBase) -> int:
        """Rewrite the KB's new predicates onto mined representatives.

        Returns the number of facts whose predicate was rewritten. Only
        multi-pattern synsets cause rewrites (singletons stay as-is).
        """
        mapping: Dict[str, str] = {}
        for synset in self.mine(kb):
            if len(synset.patterns) < 2:
                continue
            for pattern in synset.patterns:
                mapping[pattern] = synset.representative
        rewritten = 0
        for fact in kb.facts:
            target = mapping.get(fact.predicate)
            if target is not None and target != fact.predicate:
                fact.predicate = target
                rewritten += 1
        return rewritten

    def _argument_pair(self, fact: Fact):
        if not fact.subject.is_entity():
            return None
        for obj in fact.objects:
            if obj.is_entity():
                return (fact.subject.value, obj.value)
        return None

    def _paraphrase(
        self, pairs_a: Set[Tuple[str, str]], pairs_b: Set[Tuple[str, str]]
    ) -> bool:
        shared = pairs_a & pairs_b
        if len(shared) < self.min_shared:
            return False
        union = pairs_a | pairs_b
        return len(shared) / len(union) >= self.min_jaccard


__all__ = ["MinedSynset", "ParaphraseMiner"]
