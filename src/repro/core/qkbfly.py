"""QKBfly: the end-to-end query-driven on-the-fly KB builder.

Pipeline (Figure 1): query -> document retrieval -> linguistic
pre-processing -> semantic graph -> graph densification (joint NED + CR)
-> canonicalization -> on-the-fly KB.

Variants used in the paper's experiments (Section 7):

- ``mode="joint"`` — full QKBfly: fact extraction, NED and CR jointly.
- ``mode="pipeline"`` — three separate stages; NED uses only prior +
  context similarity (the type-signature feature is omitted), CR is
  recency/salience-based. Mirrors "QKBfly-pipeline".
- ``mode="noun"`` — no co-reference resolution: pronoun nodes are
  dropped. Mirrors "QKBfly-noun".
- ``algorithm="ilp"`` — Stage 2 solved exactly by the ILP of Appendix A
  instead of the greedy algorithm. Mirrors "QKBfly-ilp".
- ``triples_only=True`` — restrict the KB to SPO triples ("QKBfly-
  triples" in the QA experiment).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.canonicalize import Canonicalizer, CanonicalizerConfig
from repro.corpus.background import build_background_corpus
from repro.corpus.retrieval import SearchEngine
from repro.corpus.statistics import BackgroundStatistics
from repro.corpus.world import World
from repro.graph.builder import GraphBuilder
from repro.graph.densify import DensestSubgraph, DensifyResult
from repro.graph.semantic_graph import NodeType, SemanticGraph
from repro.graph.weights import EdgeWeights, WeightParameters
from repro.kb.entity_repository import EntityRepository
from repro.kb.facts import Fact, KnowledgeBase
from repro.kb.pattern_repository import PatternRepository
from repro.nlp.pipeline import NlpPipeline, PipelineConfig
from repro.nlp.tokens import Document


@dataclass
class QKBflyConfig:
    """Configuration of the end-to-end system."""

    mode: str = "joint"          # joint | pipeline | noun
    algorithm: str = "greedy"    # greedy | ilp
    parser: str = "greedy"       # greedy | chart
    tau: float = 0.5
    triples_only: bool = False
    weights: WeightParameters = field(default_factory=WeightParameters)
    ilp_time_budget: float = 120.0


@dataclass
class DocumentTrace:
    """Per-document diagnostics (timings in seconds, graph sizes)."""

    doc_id: str
    preprocess_seconds: float = 0.0
    graph_seconds: float = 0.0
    canonicalize_seconds: float = 0.0
    graph_stats: Dict[str, int] = field(default_factory=dict)
    num_facts: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end processing time for the document."""
        return (
            self.preprocess_seconds
            + self.graph_seconds
            + self.canonicalize_seconds
        )


class SessionState:
    """The expensive, shareable half of a QKBfly deployment.

    Building background statistics, the search index and the NLP
    pipeline dominates start-up cost; none of it depends on an
    individual query. A :class:`SessionState` bundles those pieces so
    many :class:`QKBfly` instances (and many concurrent queries) can
    share one copy. Everything here is treated as read-only after
    construction, which is what makes sharing across threads safe.

    ``corpus_version`` stamps the exact corpus snapshot the session
    serves; the query cache and the persistent KB store key on it so
    results from a stale corpus are never returned. It is computed
    lazily on first access — pipelines that never touch the serving
    layer don't pay for corpus-wide fingerprinting.

    A session is **picklable**, which is what lets the serving layer's
    multi-process executor bootstrap one per worker. The NLP pipeline is
    derived state (parser name + a gazetteer snapshot of the entity
    repository), so it is excluded from the pickle and rebuilt lazily
    in the receiving process — pickles stay small and can never be
    poisoned by transient pipeline caches.
    """

    def __init__(
        self,
        entity_repository: EntityRepository,
        pattern_repository: PatternRepository,
        statistics: BackgroundStatistics,
        search_engine: Optional[SearchEngine] = None,
        nlp: Optional[NlpPipeline] = None,
        parser: str = "greedy",
        corpus_version: str = "",
    ) -> None:
        self.entity_repository = entity_repository
        self.pattern_repository = pattern_repository
        self.statistics = statistics
        self.search_engine = search_engine
        self.parser = parser
        self._corpus_version = corpus_version
        self._nlp = nlp

    @property
    def nlp(self) -> NlpPipeline:
        """The shared NLP pipeline, built on first access."""
        if self._nlp is None:
            self._nlp = NlpPipeline(
                PipelineConfig(
                    parser=self.parser,
                    gazetteer=self.entity_repository.gazetteer(),
                )
            )
        return self._nlp

    @nlp.setter
    def nlp(self, pipeline: Optional[NlpPipeline]) -> None:
        self._nlp = pipeline

    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state["_nlp"] = None  # derived; rebuilt lazily after unpickling
        return state

    @property
    def corpus_version(self) -> str:
        """The corpus fingerprint, computed on first access."""
        if not self._corpus_version:
            self._corpus_version = self.compute_corpus_version()
        return self._corpus_version

    @corpus_version.setter
    def corpus_version(self, value: str) -> None:
        self._corpus_version = value

    def rebuild_nlp(self) -> None:
        """Rebuild the NLP pipeline from the current entity repository.

        The NER gazetteer is a snapshot taken at construction; call this
        after the entity repository changes so new entities are tagged.
        """
        self._nlp = NlpPipeline(
            PipelineConfig(
                parser=self.parser,
                gazetteer=self.entity_repository.gazetteer(),
            )
        )

    @classmethod
    def from_world(
        cls,
        world: World,
        parser: str = "greedy",
        with_search: bool = True,
    ) -> "SessionState":
        """Build the shared session state for a synthetic world."""
        background = build_background_corpus(world)
        engine = None
        if with_search:
            engine = SearchEngine.from_world(world, background.documents)
        return cls(
            entity_repository=world.entity_repository,
            pattern_repository=world.pattern_repository,
            statistics=background.statistics,
            search_engine=engine,
            parser=parser,
        )

    def compute_corpus_version(self) -> str:
        """Deterministic fingerprint of the served corpus snapshot.

        Hashes every input that shapes query results: the entity
        repository, the pattern repository, the background statistics,
        and the retrievable documents — ids, titles *and* text, so an
        in-place edit to any of them yields a new version, which
        invalidates cached and stored query results.
        """
        digest = hashlib.sha1()
        digest.update(self.entity_repository.fingerprint().encode("utf-8"))
        digest.update(self.pattern_repository.fingerprint().encode("utf-8"))
        digest.update(self.statistics.fingerprint().encode("utf-8"))
        if self.search_engine is not None:
            for prefix, docs in (
                (b"w", self.search_engine.wikipedia_docs),
                (b"n", self.search_engine.news_docs),
            ):
                for doc_id in sorted(docs):
                    doc = docs[doc_id]
                    digest.update(prefix + doc_id.encode("utf-8"))
                    digest.update(doc.title.encode("utf-8"))
                    digest.update(doc.text.encode("utf-8"))
        return digest.hexdigest()[:16]


class QKBfly:
    """The on-the-fly KB construction system."""

    def __init__(
        self,
        entity_repository: Optional[EntityRepository] = None,
        pattern_repository: Optional[PatternRepository] = None,
        statistics: Optional[BackgroundStatistics] = None,
        search_engine: Optional[SearchEngine] = None,
        config: Optional[QKBflyConfig] = None,
        session: Optional[SessionState] = None,
    ) -> None:
        self.config = config or QKBflyConfig()
        if session is None:
            if (
                entity_repository is None
                or pattern_repository is None
                or statistics is None
            ):
                raise TypeError(
                    "QKBfly needs entity_repository, pattern_repository and "
                    "statistics when no session is given"
                )
            session = SessionState(
                entity_repository=entity_repository,
                pattern_repository=pattern_repository,
                statistics=statistics,
                search_engine=search_engine,
                parser=self.config.parser,
            )
        elif any(
            argument is not None
            for argument in (
                entity_repository, pattern_repository, statistics, search_engine
            )
        ):
            raise TypeError(
                "pass either a session or explicit repositories, not both"
            )
        self.session = session
        self.entity_repository = session.entity_repository
        self.pattern_repository = session.pattern_repository
        self.statistics = session.statistics
        self.search_engine = session.search_engine
        if session.parser == self.config.parser:
            self.nlp = session.nlp
        else:
            # A per-instance pipeline only when the parser differs from
            # the session's; repositories stay shared either way.
            self.nlp = NlpPipeline(
                PipelineConfig(
                    parser=self.config.parser,
                    gazetteer=session.entity_repository.gazetteer(),
                )
            )
        self.builder = GraphBuilder(session.entity_repository)
        self.canonicalizer = Canonicalizer(
            session.pattern_repository,
            session.entity_repository,
            CanonicalizerConfig(tau=self.config.tau),
        )

    @classmethod
    def from_session(
        cls,
        session: SessionState,
        config: Optional[QKBflyConfig] = None,
    ) -> "QKBfly":
        """Cheap per-query/per-config instance over shared session state."""
        return cls(config=config, session=session)

    @classmethod
    def from_world(
        cls,
        world: World,
        config: Optional[QKBflyConfig] = None,
        with_search: bool = True,
    ) -> "QKBfly":
        """Assemble the system from a synthetic world's repositories."""
        parser = (config or QKBflyConfig()).parser
        session = SessionState.from_world(
            world, parser=parser, with_search=with_search
        )
        return cls.from_session(session, config=config)

    # ------------------------------------------------------------------
    # Query-driven entry point
    # ------------------------------------------------------------------

    def build_kb(
        self,
        query: str,
        source: str = "wikipedia",
        num_documents: int = 1,
    ) -> KnowledgeBase:
        """Retrieve documents for ``query`` and build the on-the-fly KB."""
        if self.search_engine is None:
            raise RuntimeError("QKBfly was constructed without a search engine")
        documents = self.search_engine.search(query, source=source, k=num_documents)
        kb = KnowledgeBase()
        for document in documents:
            fragment, _ = self.process_text(document.text, doc_id=document.doc_id)
            kb.merge(fragment)
        return kb

    # ------------------------------------------------------------------
    # Document processing
    # ------------------------------------------------------------------

    def process_text(
        self, text: str, doc_id: str = "doc"
    ) -> Tuple[KnowledgeBase, DocumentTrace]:
        """Run the full pipeline over raw text."""
        trace = DocumentTrace(doc_id=doc_id)
        t0 = time.perf_counter()
        annotated = self.nlp.annotate_text(text, doc_id=doc_id)
        trace.preprocess_seconds = time.perf_counter() - t0
        kb, _, _ = self.process_document(annotated, trace)
        return kb, trace

    def process_document(
        self,
        annotated: Document,
        trace: Optional[DocumentTrace] = None,
    ) -> Tuple[KnowledgeBase, SemanticGraph, DensifyResult]:
        """Stages 1-3 over a pre-annotated document."""
        trace = trace or DocumentTrace(doc_id=annotated.doc_id)
        t0 = time.perf_counter()
        graph = self.builder.build(annotated)
        if self.config.mode == "noun":
            self._drop_pronouns(graph)
        if self.config.mode == "pipeline":
            result = self._pipeline_stage2(graph, annotated)
        elif self.config.algorithm == "ilp":
            result = self._ilp_stage2(graph, annotated)
        else:
            weights = EdgeWeights(
                graph, annotated, self.statistics, self.config.weights
            )
            result = DensestSubgraph().run(graph, weights)
        trace.graph_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        kb = self.canonicalizer.canonicalize(graph, result, doc_id=annotated.doc_id)
        if self.config.triples_only:
            kb = _restrict_to_triples(kb)
        trace.canonicalize_seconds = time.perf_counter() - t0
        trace.graph_stats = graph.stats()
        trace.num_facts = len(kb)
        return kb, graph, result

    # ------------------------------------------------------------------
    # Variant stage-2 implementations
    # ------------------------------------------------------------------

    def _drop_pronouns(self, graph: SemanticGraph) -> None:
        """QKBfly-noun: remove all pronoun sameAs links."""
        for pronoun_id in graph.pronouns():
            for neighbor in list(graph.same_as.get(pronoun_id, ())):
                graph.remove_same_as(pronoun_id, neighbor)

    def _pipeline_stage2(
        self, graph: SemanticGraph, annotated: Document
    ) -> DensifyResult:
        """QKBfly-pipeline: independent NED then CR, no joint inference.

        NED picks, per sameAs group, the candidate maximizing only the
        means weight (prior + context similarity); the type-signature and
        coherence features are omitted. CR resolves each pronoun to the
        nearest preceding subject noun phrase with compatible gender.
        """
        params = WeightParameters(
            alpha1=self.config.weights.alpha1,
            alpha2=self.config.weights.alpha2,
            alpha3=0.0,
            alpha4=0.0,
        )
        weights = EdgeWeights(graph, annotated, self.statistics, params)
        result = DensifyResult()
        seen: set = set()
        for phrase_id in sorted(graph.noun_phrases()):
            if phrase_id in seen:
                continue
            group = sorted(graph.np_same_as_group(phrase_id))
            seen.update(group)
            scores: Dict[str, float] = {}
            for member in group:
                for entity_id in graph.candidates(member):
                    scores[entity_id] = scores.get(entity_id, 0.0) + (
                        weights.means_weight(member, entity_id)
                    )
            if scores:
                ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
                chosen, best = ranked[0]
                total = sum(v for _, v in ranked) or 1.0
                for member in group:
                    result.assignment[member] = chosen
                    result.confidence[member] = best / total
            else:
                for member in group:
                    result.assignment[member] = None
        for pronoun_id in sorted(graph.pronouns()):
            result.antecedent[pronoun_id] = self._nearest_antecedent(
                graph, pronoun_id
            )
        return result

    def _nearest_antecedent(
        self, graph: SemanticGraph, pronoun_id: str
    ) -> Optional[str]:
        pronoun = graph.phrases[pronoun_id]
        best: Optional[str] = None
        best_key: Tuple = ()
        for neighbor in sorted(graph.same_as.get(pronoun_id, ())):
            node = graph.phrases[neighbor]
            if node.node_type != NodeType.NOUN_PHRASE:
                continue
            distance = pronoun.sentence_index - node.sentence_index
            key = (node.is_subject, -distance, node.start)
            if best is None or key > best_key:
                best = neighbor
                best_key = key
        return best

    def _ilp_stage2(
        self, graph: SemanticGraph, annotated: Document
    ) -> DensifyResult:
        """QKBfly-ilp: exact Stage 2 via the Appendix-A ILP."""
        from repro.graph.ilp import IlpStage2

        weights = EdgeWeights(
            graph, annotated, self.statistics, self.config.weights
        )
        return IlpStage2(time_budget=self.config.ilp_time_budget).run(
            graph, weights
        )


def _restrict_to_triples(kb: KnowledgeBase) -> KnowledgeBase:
    """Keep only subject-predicate-object projections of the facts."""
    out = KnowledgeBase()
    out.emerging = dict(kb.emerging)
    out.entity_mentions = {k: set(v) for k, v in kb.entity_mentions.items()}
    out.entity_types = {k: list(v) for k, v in kb.entity_types.items()}
    for fact in kb.facts:
        out.add_fact(
            Fact(
                subject=fact.subject,
                predicate=fact.predicate,
                objects=fact.objects[:1],
                pattern=fact.pattern,
                confidence=fact.confidence,
                doc_id=fact.doc_id,
                sentence_index=fact.sentence_index,
                canonical_predicate=fact.canonical_predicate,
            )
        )
    return out


__all__ = ["DocumentTrace", "QKBfly", "QKBflyConfig", "SessionState"]
