"""QKBfly: the end-to-end query-driven on-the-fly KB builder.

Pipeline (Figure 1): query -> document retrieval -> linguistic
pre-processing -> semantic graph -> graph densification (joint NED + CR)
-> canonicalization -> on-the-fly KB.

Variants used in the paper's experiments (Section 7):

- ``mode="joint"`` — full QKBfly: fact extraction, NED and CR jointly.
- ``mode="pipeline"`` — three separate stages; NED uses only prior +
  context similarity (the type-signature feature is omitted), CR is
  recency/salience-based. Mirrors "QKBfly-pipeline".
- ``mode="noun"`` — no co-reference resolution: pronoun nodes are
  dropped. Mirrors "QKBfly-noun".
- ``algorithm="ilp"`` — Stage 2 solved exactly by the ILP of Appendix A
  instead of the greedy algorithm. Mirrors "QKBfly-ilp".
- ``triples_only=True`` — restrict the KB to SPO triples ("QKBfly-
  triples" in the QA experiment).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.canonicalize import Canonicalizer, CanonicalizerConfig
from repro.corpus.background import build_background_corpus
from repro.corpus.realizer import RealizedDocument
from repro.corpus.retrieval import SearchEngine
from repro.corpus.statistics import BackgroundStatistics
from repro.corpus.world import World
from repro.graph.builder import GraphBuilder
from repro.graph.densify import DensestSubgraph, DensifyResult
from repro.graph.semantic_graph import NodeType, SemanticGraph
from repro.graph.weights import EdgeWeights, WeightParameters
from repro.kb.entity_repository import EntityRepository
from repro.kb.facts import Fact, KnowledgeBase
from repro.kb.pattern_repository import PatternRepository
from repro.nlp.pipeline import NlpPipeline, PipelineConfig
from repro.nlp.tokens import Document
from repro.openie.clausie import EXTRACTOR_VERSION
from repro.openie.clauses import Clause

if TYPE_CHECKING:  # typing only; the runtime import would be circular
    from repro.service.stage_cache import StageCache


def _stage_signature(*parts: str) -> str:
    """Forward to :func:`repro.service.stage_cache.stage_signature`.

    Imported lazily at call time: ``repro.service`` imports this module
    at package init, so a module-level import here would be circular.
    By the time a signature is computed (inside a query), both packages
    are fully initialized.
    """
    from repro.service.stage_cache import stage_signature

    return stage_signature(*parts)


@dataclass
class QKBflyConfig:
    """Configuration of the end-to-end system."""

    mode: str = "joint"          # joint | pipeline | noun
    algorithm: str = "greedy"    # greedy | ilp
    parser: str = "greedy"       # greedy | chart
    tau: float = 0.5
    triples_only: bool = False
    weights: WeightParameters = field(default_factory=WeightParameters)
    ilp_time_budget: float = 120.0


@dataclass
class DocumentTrace:
    """Per-document diagnostics (timings in seconds, graph sizes)."""

    doc_id: str
    preprocess_seconds: float = 0.0
    graph_seconds: float = 0.0
    canonicalize_seconds: float = 0.0
    graph_stats: Dict[str, int] = field(default_factory=dict)
    num_facts: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end processing time for the document."""
        return (
            self.preprocess_seconds
            + self.graph_seconds
            + self.canonicalize_seconds
        )


class SessionState:
    """The expensive, shareable half of a QKBfly deployment.

    Building background statistics, the search index and the NLP
    pipeline dominates start-up cost; none of it depends on an
    individual query. A :class:`SessionState` bundles those pieces so
    many :class:`QKBfly` instances (and many concurrent queries) can
    share one copy. Everything here is treated as read-only after
    construction, which is what makes sharing across threads safe.

    ``corpus_version`` stamps the exact corpus snapshot the session
    serves; the query cache and the persistent KB store key on it so
    results from a stale corpus are never returned. It is computed
    lazily on first access — pipelines that never touch the serving
    layer don't pay for corpus-wide fingerprinting.

    A session is **picklable**, which is what lets the serving layer's
    multi-process executor bootstrap one per worker. The NLP pipeline is
    derived state (parser name + a gazetteer snapshot of the entity
    repository), so it is excluded from the pickle and rebuilt lazily
    in the receiving process — pickles stay small and can never be
    poisoned by transient pipeline caches.
    """

    def __init__(
        self,
        entity_repository: EntityRepository,
        pattern_repository: PatternRepository,
        statistics: BackgroundStatistics,
        search_engine: Optional[SearchEngine] = None,
        nlp: Optional[NlpPipeline] = None,
        parser: str = "greedy",
        corpus_version: str = "",
        stage_cache: Optional["StageCache"] = None,
    ) -> None:
        self.entity_repository = entity_repository
        self.pattern_repository = pattern_repository
        self.statistics = statistics
        self.search_engine = search_engine
        self.parser = parser
        self._corpus_version = corpus_version
        self._nlp = nlp
        self._stage_cache = stage_cache
        # Per-entity version vector, installed by the serving layer's
        # live-ingest path (an :class:`~repro.service.ingest.versions.
        # EntityVersionVector`); None outside a serving deployment.
        # The retrieval stage folds its query slice into signatures.
        self.entity_versions = None

    @property
    def stage_cache(self) -> Optional["StageCache"]:
        """The shared stage-level cache, or None when disabled.

        Installed by the serving layer
        (:class:`~repro.service.service.ServiceConfig` stage-cache
        knobs) and shared by every :class:`QKBfly` and service over
        this session; see :mod:`repro.service.stage_cache` and
        ``docs/PIPELINE.md``.
        """
        return self._stage_cache

    @stage_cache.setter
    def stage_cache(self, cache: Optional["StageCache"]) -> None:
        self._stage_cache = cache

    @property
    def nlp(self) -> NlpPipeline:
        """The shared NLP pipeline, built on first access."""
        if self._nlp is None:
            self._nlp = NlpPipeline(
                PipelineConfig(
                    parser=self.parser,
                    gazetteer=self.entity_repository.gazetteer(),
                )
            )
        return self._nlp

    @nlp.setter
    def nlp(self, pipeline: Optional[NlpPipeline]) -> None:
        self._nlp = pipeline

    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        state["_nlp"] = None  # derived; rebuilt lazily after unpickling
        # The version vector is serving-process state (and carries a
        # lock): workers see None and use the empty versions token.
        state["entity_versions"] = None
        cache = state.get("_stage_cache")
        if cache is not None:
            # Entries are process-local (and potentially large); only
            # the eviction policy crosses the pickle boundary, so every
            # process-pool worker rebuilds an empty cache with the same
            # limits.
            state["_stage_cache"] = cache.spec()
        return state

    def __setstate__(self, state: Dict) -> None:
        spec = state.pop("_stage_cache", None)
        self.__dict__.update(state)
        self._stage_cache = spec.build() if spec is not None else None

    @property
    def corpus_version(self) -> str:
        """The corpus fingerprint, computed on first access."""
        if not self._corpus_version:
            self._corpus_version = self.compute_corpus_version()
        return self._corpus_version

    @corpus_version.setter
    def corpus_version(self, value: str) -> None:
        self._corpus_version = value

    def rebuild_nlp(self) -> None:
        """Rebuild the NLP pipeline from the current entity repository.

        The NER gazetteer is a snapshot taken at construction; call this
        after the entity repository changes so new entities are tagged.
        """
        self._nlp = NlpPipeline(
            PipelineConfig(
                parser=self.parser,
                gazetteer=self.entity_repository.gazetteer(),
            )
        )

    @classmethod
    def from_world(
        cls,
        world: World,
        parser: str = "greedy",
        with_search: bool = True,
    ) -> "SessionState":
        """Build the shared session state for a synthetic world."""
        background = build_background_corpus(world)
        engine = None
        if with_search:
            engine = SearchEngine.from_world(world, background.documents)
        return cls(
            entity_repository=world.entity_repository,
            pattern_repository=world.pattern_repository,
            statistics=background.statistics,
            search_engine=engine,
            parser=parser,
        )

    def compute_corpus_version(self) -> str:
        """Deterministic fingerprint of the served corpus snapshot.

        Hashes every input that shapes query results: the entity
        repository, the pattern repository, the background statistics,
        and the retrievable documents — ids, titles *and* text, so an
        in-place edit to any of them yields a new version, which
        invalidates cached and stored query results.
        """
        digest = hashlib.sha1()
        digest.update(self.entity_repository.fingerprint().encode("utf-8"))
        digest.update(self.pattern_repository.fingerprint().encode("utf-8"))
        digest.update(self.statistics.fingerprint().encode("utf-8"))
        if self.search_engine is not None:
            for prefix, docs in (
                (b"w", self.search_engine.wikipedia_docs),
                (b"n", self.search_engine.news_docs),
            ):
                for doc_id in sorted(docs):
                    doc = docs[doc_id]
                    digest.update(prefix + doc_id.encode("utf-8"))
                    digest.update(doc.title.encode("utf-8"))
                    digest.update(doc.text.encode("utf-8"))
        return digest.hexdigest()[:16]


class QKBfly:
    """The on-the-fly KB construction system."""

    def __init__(
        self,
        entity_repository: Optional[EntityRepository] = None,
        pattern_repository: Optional[PatternRepository] = None,
        statistics: Optional[BackgroundStatistics] = None,
        search_engine: Optional[SearchEngine] = None,
        config: Optional[QKBflyConfig] = None,
        session: Optional[SessionState] = None,
    ) -> None:
        self.config = config or QKBflyConfig()
        if session is None:
            if (
                entity_repository is None
                or pattern_repository is None
                or statistics is None
            ):
                raise TypeError(
                    "QKBfly needs entity_repository, pattern_repository and "
                    "statistics when no session is given"
                )
            session = SessionState(
                entity_repository=entity_repository,
                pattern_repository=pattern_repository,
                statistics=statistics,
                search_engine=search_engine,
                parser=self.config.parser,
            )
        elif any(
            argument is not None
            for argument in (
                entity_repository, pattern_repository, statistics, search_engine
            )
        ):
            raise TypeError(
                "pass either a session or explicit repositories, not both"
            )
        self.session = session
        self.entity_repository = session.entity_repository
        self.pattern_repository = session.pattern_repository
        self.statistics = session.statistics
        self.search_engine = session.search_engine
        if session.parser == self.config.parser:
            self.nlp = session.nlp
        else:
            # A per-instance pipeline only when the parser differs from
            # the session's; repositories stay shared either way.
            self.nlp = NlpPipeline(
                PipelineConfig(
                    parser=self.config.parser,
                    gazetteer=session.entity_repository.gazetteer(),
                )
            )
        self.builder = GraphBuilder(session.entity_repository)
        # Memoized NLP-stage configuration digest (parser + entity-
        # repository fingerprint); computed on first staged build. A
        # corpus refresh rebinds a fresh QKBfly, which recomputes it.
        self._nlp_stage_digest_memo: Optional[str] = None
        self.canonicalizer = Canonicalizer(
            session.pattern_repository,
            session.entity_repository,
            CanonicalizerConfig(tau=self.config.tau),
        )

    @classmethod
    def from_session(
        cls,
        session: SessionState,
        config: Optional[QKBflyConfig] = None,
    ) -> "QKBfly":
        """Cheap per-query/per-config instance over shared session state."""
        return cls(config=config, session=session)

    @classmethod
    def from_world(
        cls,
        world: World,
        config: Optional[QKBflyConfig] = None,
        with_search: bool = True,
    ) -> "QKBfly":
        """Assemble the system from a synthetic world's repositories."""
        parser = (config or QKBflyConfig()).parser
        session = SessionState.from_world(
            world, parser=parser, with_search=with_search
        )
        return cls.from_session(session, config=config)

    # ------------------------------------------------------------------
    # Query-driven entry point
    # ------------------------------------------------------------------

    @property
    def stage_cache(self) -> Optional["StageCache"]:
        """The session's stage-level cache (None when disabled).

        Read dynamically from the session so a cache installed by the
        serving layer after this instance was built is still used.
        """
        return self.session.stage_cache

    def build_kb(
        self,
        query: str,
        source: str = "wikipedia",
        num_documents: int = 1,
    ) -> KnowledgeBase:
        """Retrieve documents for ``query`` and build the on-the-fly KB.

        The build runs as explicit stages — retrieval → NLP annotation
        → clause extraction → graph/densify/canonicalize — and when the
        session carries a :class:`~repro.service.stage_cache.StageCache`
        the upstream stages are served from it under content-addressed
        signatures, so overlapping queries (same documents, different
        query strings) only re-run the per-query graph stage. Output is
        bit-identical with and without the cache (see
        ``docs/PIPELINE.md``).
        """
        if self.search_engine is None:
            raise RuntimeError("QKBfly was constructed without a search engine")
        documents = self._retrieval_stage(query, source, num_documents)
        kb = KnowledgeBase()
        for document in documents:
            annotated, nlp_signature = self._nlp_stage(document)
            clauses = self._extraction_stage(annotated, nlp_signature)
            fragment, _, _ = self.process_document(annotated, clauses=clauses)
            kb.merge(fragment)
        return kb

    # ------------------------------------------------------------------
    # Cacheable upstream stages
    # ------------------------------------------------------------------

    def _retrieval_stage(
        self, query: str, source: str, num_documents: int
    ) -> List[RealizedDocument]:
        """Stage 0: ranked documents for ``query`` on one channel.

        The cached product is the ranked *doc-id list* (documents
        themselves live in the search engine), keyed on the corpus
        version, the channel, the result count, and the normalized
        query text — a corpus bump changes the version and therefore
        every signature, so stale rankings are unreachable. Ids that no
        longer resolve (an engine swapped without a version bump, which
        the session contract forbids but a cache must survive) fall
        back to a fresh search.
        """
        cache = self.stage_cache
        if cache is None:
            return self.search_engine.search(
                query, source=source, k=num_documents
            )
        normalized = " ".join(query.lower().split())
        # Live ingest bumps a per-entity version vector instead of the
        # global corpus version (see docs/INGEST.md); the token of the
        # slice relevant to this query joins the signature, so an
        # ingest touching the query's entities makes the old ranking
        # unreachable while every other query's entry stays addressed.
        # Sessions without the serving layer (or process-pool workers,
        # whose vector is not pickled) contribute the empty token.
        vector = getattr(self.session, "entity_versions", None)
        versions_token = (
            vector.token_for_query(normalized) if vector is not None else ""
        )
        signature = _stage_signature(
            "retrieval",
            self.session.corpus_version,
            versions_token,
            source,
            str(num_documents),
            normalized,
        )
        doc_ids = cache.get("retrieval", signature)
        if doc_ids is not None:
            documents = self._resolve_documents(doc_ids, source)
            if documents is not None:
                return documents
        documents = self.search_engine.search(
            query, source=source, k=num_documents
        )
        cache.put(
            "retrieval",
            signature,
            [document.doc_id for document in documents],
            tag=normalized,
        )
        return documents

    def _resolve_documents(
        self, doc_ids: Sequence[str], source: str
    ) -> Optional[List[RealizedDocument]]:
        """Map cached doc ids back to documents; None if any is gone."""
        if source == "wikipedia":
            table = self.search_engine.wikipedia_docs
        elif source == "news":
            table = self.search_engine.news_docs
        else:  # unknown channel: let search() raise its own error
            return None
        documents = []
        for doc_id in doc_ids:
            document = table.get(doc_id)
            if document is None:
                return None
            documents.append(document)
        return documents

    def _nlp_stage(
        self, document: RealizedDocument
    ) -> Tuple[Document, str]:
        """Stage 1: the annotated document, plus its stage signature.

        Content-addressed on the document's id, title, and text plus
        the annotation configuration (parser name and the entity-
        repository fingerprint, which determines the NER gazetteer) —
        deliberately *not* on the corpus version, so a corpus bump that
        leaves a document unchanged leaves its annotation reusable.
        Returns an empty signature when caching is off.
        """
        cache = self.stage_cache
        if cache is None:
            return (
                self.nlp.annotate_text(document.text, doc_id=document.doc_id),
                "",
            )
        signature = _stage_signature(
            "nlp",
            self._nlp_stage_digest(),
            _stage_signature(
                "doc", document.doc_id, document.title, document.text
            ),
        )
        annotated = cache.get("nlp", signature)
        if annotated is None:
            annotated = self.nlp.annotate_text(
                document.text, doc_id=document.doc_id
            )
            cache.put("nlp", signature, annotated)
        return annotated, signature

    def _extraction_stage(
        self, annotated: Document, nlp_signature: str
    ) -> Optional[List[List[Clause]]]:
        """Stage 2: per-sentence ClausIE clause lists for the document.

        Keyed on the extractor version and the upstream NLP signature —
        extraction is deterministic over the annotation, so the chained
        signature is its complete identity. Returns None when caching
        is off, letting :meth:`GraphBuilder.build` extract inline.
        """
        cache = self.stage_cache
        if cache is None or not nlp_signature:
            return None
        signature = _stage_signature(
            "extract", EXTRACTOR_VERSION, nlp_signature
        )
        clauses = cache.get("extract", signature)
        if clauses is None:
            clauses = [
                self.builder.clausie.extract(sentence)
                for sentence in annotated.sentences
            ]
            cache.put("extract", signature, clauses)
        return clauses

    def _nlp_stage_digest(self) -> str:
        if self._nlp_stage_digest_memo is None:
            self._nlp_stage_digest_memo = _stage_signature(
                "nlp-config",
                self.config.parser,
                self.entity_repository.fingerprint(),
            )
        return self._nlp_stage_digest_memo

    # ------------------------------------------------------------------
    # Document processing
    # ------------------------------------------------------------------

    def process_text(
        self, text: str, doc_id: str = "doc"
    ) -> Tuple[KnowledgeBase, DocumentTrace]:
        """Run the full pipeline over raw text."""
        trace = DocumentTrace(doc_id=doc_id)
        t0 = time.perf_counter()
        annotated = self.nlp.annotate_text(text, doc_id=doc_id)
        trace.preprocess_seconds = time.perf_counter() - t0
        kb, _, _ = self.process_document(annotated, trace)
        return kb, trace

    def process_document(
        self,
        annotated: Document,
        trace: Optional[DocumentTrace] = None,
        clauses: Optional[List[List[Clause]]] = None,
    ) -> Tuple[KnowledgeBase, SemanticGraph, DensifyResult]:
        """Stages 1-3 over a pre-annotated document.

        ``clauses`` optionally injects precomputed (possibly cached)
        per-sentence clause lists; extraction runs inline when omitted.
        """
        trace = trace or DocumentTrace(doc_id=annotated.doc_id)
        t0 = time.perf_counter()
        graph = self.builder.build(annotated, clauses=clauses)
        if self.config.mode == "noun":
            self._drop_pronouns(graph)
        if self.config.mode == "pipeline":
            result = self._pipeline_stage2(graph, annotated)
        elif self.config.algorithm == "ilp":
            result = self._ilp_stage2(graph, annotated)
        else:
            weights = EdgeWeights(
                graph, annotated, self.statistics, self.config.weights
            )
            result = DensestSubgraph().run(graph, weights)
        trace.graph_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        kb = self.canonicalizer.canonicalize(graph, result, doc_id=annotated.doc_id)
        if self.config.triples_only:
            kb = _restrict_to_triples(kb)
        trace.canonicalize_seconds = time.perf_counter() - t0
        trace.graph_stats = graph.stats()
        trace.num_facts = len(kb)
        return kb, graph, result

    # ------------------------------------------------------------------
    # Variant stage-2 implementations
    # ------------------------------------------------------------------

    def _drop_pronouns(self, graph: SemanticGraph) -> None:
        """QKBfly-noun: remove all pronoun sameAs links."""
        for pronoun_id in graph.pronouns():
            for neighbor in list(graph.same_as.get(pronoun_id, ())):
                graph.remove_same_as(pronoun_id, neighbor)

    def _pipeline_stage2(
        self, graph: SemanticGraph, annotated: Document
    ) -> DensifyResult:
        """QKBfly-pipeline: independent NED then CR, no joint inference.

        NED picks, per sameAs group, the candidate maximizing only the
        means weight (prior + context similarity); the type-signature and
        coherence features are omitted. CR resolves each pronoun to the
        nearest preceding subject noun phrase with compatible gender.
        """
        params = WeightParameters(
            alpha1=self.config.weights.alpha1,
            alpha2=self.config.weights.alpha2,
            alpha3=0.0,
            alpha4=0.0,
        )
        weights = EdgeWeights(graph, annotated, self.statistics, params)
        result = DensifyResult()
        seen: set = set()
        for phrase_id in sorted(graph.noun_phrases()):
            if phrase_id in seen:
                continue
            group = sorted(graph.np_same_as_group(phrase_id))
            seen.update(group)
            scores: Dict[str, float] = {}
            for member in group:
                for entity_id in graph.candidates(member):
                    scores[entity_id] = scores.get(entity_id, 0.0) + (
                        weights.means_weight(member, entity_id)
                    )
            if scores:
                ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
                chosen, best = ranked[0]
                total = sum(v for _, v in ranked) or 1.0
                for member in group:
                    result.assignment[member] = chosen
                    result.confidence[member] = best / total
            else:
                for member in group:
                    result.assignment[member] = None
        for pronoun_id in sorted(graph.pronouns()):
            result.antecedent[pronoun_id] = self._nearest_antecedent(
                graph, pronoun_id
            )
        return result

    def _nearest_antecedent(
        self, graph: SemanticGraph, pronoun_id: str
    ) -> Optional[str]:
        pronoun = graph.phrases[pronoun_id]
        best: Optional[str] = None
        best_key: Tuple = ()
        for neighbor in sorted(graph.same_as.get(pronoun_id, ())):
            node = graph.phrases[neighbor]
            if node.node_type != NodeType.NOUN_PHRASE:
                continue
            distance = pronoun.sentence_index - node.sentence_index
            key = (node.is_subject, -distance, node.start)
            if best is None or key > best_key:
                best = neighbor
                best_key = key
        return best

    def _ilp_stage2(
        self, graph: SemanticGraph, annotated: Document
    ) -> DensifyResult:
        """QKBfly-ilp: exact Stage 2 via the Appendix-A ILP."""
        from repro.graph.ilp import IlpStage2

        weights = EdgeWeights(
            graph, annotated, self.statistics, self.config.weights
        )
        return IlpStage2(time_budget=self.config.ilp_time_budget).run(
            graph, weights
        )


def _restrict_to_triples(kb: KnowledgeBase) -> KnowledgeBase:
    """Keep only subject-predicate-object projections of the facts."""
    out = KnowledgeBase()
    out.emerging = dict(kb.emerging)
    out.entity_mentions = {k: set(v) for k, v in kb.entity_mentions.items()}
    out.entity_types = {k: list(v) for k, v in kb.entity_types.items()}
    for fact in kb.facts:
        out.add_fact(
            Fact(
                subject=fact.subject,
                predicate=fact.predicate,
                objects=fact.objects[:1],
                pattern=fact.pattern,
                confidence=fact.confidence,
                doc_id=fact.doc_id,
                sentence_index=fact.sentence_index,
                canonical_predicate=fact.canonical_predicate,
            )
        )
    return out


__all__ = ["DocumentTrace", "QKBfly", "QKBflyConfig", "SessionState"]
