"""QKBfly core: canonicalization and the end-to-end system."""

from repro.core.canonicalize import Canonicalizer
from repro.core.qkbfly import QKBfly, QKBflyConfig

__all__ = ["Canonicalizer", "QKBfly", "QKBflyConfig"]
