"""On-the-fly KB canonicalization (Section 5 of the paper).

Turns a densified semantic graph into knowledge-base facts:

- noun-phrase sameAs groups become canonical entities (when confidently
  linked to the repository) or *emerging entities* (out-of-repository
  groups, or groups linked with very low confidence);
- relation patterns are canonicalized through the pattern repository:
  patterns in the same PATTY synset collapse onto one relation id,
  out-of-repository patterns become new relations;
- clause structure determines fact boundaries: all phrase nodes linked
  to one clause by depends edges merge into a single (possibly
  higher-arity) fact;
- fact confidence is the minimum confidence over disambiguated entity
  arguments; facts below the threshold tau are dropped (tau = 0.5 in
  the paper's experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.densify import DensifyResult
from repro.graph.semantic_graph import NodeType, RelationEdge, SemanticGraph
from repro.kb.entity_repository import EntityRepository
from repro.kb.facts import (
    ARG_EMERGING,
    ARG_ENTITY,
    ARG_LITERAL,
    ARG_MONEY,
    ARG_TIME,
    Argument,
    EmergingEntity,
    Fact,
    KnowledgeBase,
)
from repro.kb.pattern_repository import PatternRepository
from repro.utils.text import strip_determiners


@dataclass
class CanonicalizerConfig:
    """Thresholds of the canonicalization stage.

    Attributes:
        tau: Fact confidence threshold (0.5 in the paper; 0.9 for the
            precision-oriented spouse-extraction experiment).
        emerging_below: Linked groups whose confidence falls below this
            become emerging entities instead (the "very low confidence"
            rule of Section 5). Defaults to ``tau``: a link too weak to
            pass the fact threshold is demoted to an emerging entity,
            preserving recall.
        keep_literal_facts: Whether facts whose arguments are all
            literals/time/money survive (they carry confidence 1.0).
    """

    tau: float = 0.5
    emerging_below: Optional[float] = None
    keep_literal_facts: bool = True

    def __post_init__(self) -> None:
        if self.emerging_below is None:
            self.emerging_below = self.tau


class Canonicalizer:
    """Stage 3: graph + assignments -> canonical knowledge base."""

    def __init__(
        self,
        pattern_repository: PatternRepository,
        entity_repository: EntityRepository,
        config: Optional[CanonicalizerConfig] = None,
    ) -> None:
        self.patterns = pattern_repository
        self.entities = entity_repository
        self.config = config or CanonicalizerConfig()

    def canonicalize(
        self,
        graph: SemanticGraph,
        result: DensifyResult,
        doc_id: str = "",
    ) -> KnowledgeBase:
        """Build the on-the-fly KB fragment for one document.

        Reentrant: all per-call state lives on the stack, so one
        canonicalizer instance can serve concurrent queries.
        """
        kb = KnowledgeBase()
        cluster_of = self._emerging_clusters(graph, result, kb, doc_id)
        cluster_displays: Dict[str, str] = {
            cluster_id: emerging.display_name
            for cluster_id, emerging in kb.emerging.items()
        }

        # Group relation edges into facts by clause (fact boundaries via
        # depends edges); clause-less edges (possessive heuristic) form
        # binary facts on their own.
        by_clause: Dict[str, List[RelationEdge]] = {}
        standalone: List[RelationEdge] = []
        for edge in graph.relation_edges:
            if edge.clause_id:
                by_clause.setdefault(edge.clause_id, []).append(edge)
            else:
                standalone.append(edge)

        for clause_id in sorted(by_clause):
            edges = by_clause[clause_id]
            fact = self._fact_from_edges(
                graph, result, kb, cluster_of, cluster_displays, edges, doc_id,
                negated=graph.clauses[clause_id].negated,
                sentence_index=graph.clauses[clause_id].sentence_index,
            )
            if fact is not None:
                kb.add_fact(fact)
        for edge in standalone:
            fact = self._fact_from_edges(
                graph, result, kb, cluster_of, cluster_displays, [edge], doc_id,
                negated=False,
                sentence_index=graph.phrases[edge.source].sentence_index,
            )
            if fact is not None:
                kb.add_fact(fact)
        return kb

    # ------------------------------------------------------------------
    # Emerging entities
    # ------------------------------------------------------------------

    def _emerging_clusters(
        self,
        graph: SemanticGraph,
        result: DensifyResult,
        kb: KnowledgeBase,
        doc_id: str,
    ) -> Dict[str, str]:
        """Assign cluster ids to out-of-KB / low-confidence groups.

        Returns phrase node id -> cluster id for emerging phrases.
        """
        cluster_of: Dict[str, str] = {}
        seen: set = set()
        counter = 0
        for phrase_id in sorted(graph.noun_phrases()):
            if phrase_id in seen:
                continue
            group = sorted(graph.np_same_as_group(phrase_id))
            seen.update(group)
            entity_id = result.assignment.get(group[0])
            confidence = result.confidence.get(group[0], 1.0)
            linked = (
                entity_id is not None
                and confidence >= self.config.emerging_below
            )
            members = [graph.phrases[pid] for pid in group]
            named = [
                m for m in members
                if m.kind == "np" and m.ner not in ("TIME", "MONEY")
            ]
            if linked:
                for member in members:
                    kb.observe_mention(entity_id, member.surface)
                if entity_id in self.entities:
                    kb.set_entity_types(
                        entity_id,
                        self.entities.types_of(entity_id, with_ancestors=True),
                    )
                continue
            # Emerging entity only for groups with a proper-name mention.
            has_name = any(m.ner not in ("O",) for m in named)
            if not has_name:
                continue
            counter += 1
            cluster_id = f"{doc_id}#new{counter}"
            display = max(
                (m.surface for m in named if m.ner != "O"),
                key=lambda s: len(s),
            )
            guessed = next(
                (m.ner for m in named if m.ner != "O"), "MISC"
            )
            kb.add_emerging(
                EmergingEntity(
                    cluster_id=cluster_id,
                    display_name=strip_determiners(display),
                    mentions=sorted({m.surface for m in members}),
                    guessed_type=guessed,
                )
            )
            for member_id in group:
                cluster_of[member_id] = cluster_id
        return cluster_of

    # ------------------------------------------------------------------
    # Facts
    # ------------------------------------------------------------------

    def _fact_from_edges(
        self,
        graph: SemanticGraph,
        result: DensifyResult,
        kb: KnowledgeBase,
        cluster_of: Dict[str, str],
        cluster_displays: Dict[str, str],
        edges: List[RelationEdge],
        doc_id: str,
        negated: bool,
        sentence_index: int,
    ) -> Optional[Fact]:
        subject_id = edges[0].source
        subject = self._argument(
            graph, result, cluster_of, cluster_displays, subject_id
        )
        if subject is None:
            return None

        # Choose the primary pattern: prefer a pattern carrying a
        # preposition / complement noun over the bare verb.
        patterns = [e.pattern for e in edges]
        primary = next((p for p in patterns if " " in p), patterns[0])
        if negated:
            primary = f"not {primary}"

        objects: List[Argument] = []
        confidences: List[float] = []
        if subject.kind == ARG_ENTITY:
            confidences.append(result.confidence.get(subject_id, 1.0))
        ordered = sorted(
            edges,
            key=lambda e: (
                graph.phrases[e.target].sentence_index,
                graph.phrases[e.target].kind == "time",
                graph.phrases[e.target].start,
            ),
        )
        for edge in ordered:
            argument = self._argument(
                graph, result, cluster_of, cluster_displays, edge.target
            )
            if argument is None:
                continue
            # A copular complement co-referent with the subject ("X is an
            # actor" after the predicate-nominal sameAs merge) stays a
            # literal so the triple survives, as in the paper's Figure 2.
            if (
                argument.is_entity()
                and subject.is_entity()
                and argument.value == subject.value
            ):
                node = graph.phrases[edge.target]
                argument = Argument(
                    kind=ARG_LITERAL,
                    value=strip_determiners(node.surface).lower(),
                    display=node.surface,
                )
            objects.append(argument)
            if argument.kind == ARG_ENTITY:
                confidences.append(
                    result.confidence.get(edge.target, 1.0)
                )
        if not objects:
            return None
        if not self.config.keep_literal_facts and not (
            subject.is_entity() or any(o.is_entity() for o in objects)
        ):
            return None

        relation_id = self.patterns.canonicalize(primary)
        if relation_id is not None:
            predicate = relation_id
            canonical = True
        else:
            predicate = primary
            canonical = False
        confidence = min(confidences) if confidences else 1.0
        if confidence < self.config.tau:
            return None
        return Fact(
            subject=subject,
            predicate=predicate,
            objects=objects,
            pattern=primary,
            confidence=confidence,
            doc_id=doc_id,
            sentence_index=sentence_index,
            canonical_predicate=canonical,
        )

    def _argument(
        self,
        graph: SemanticGraph,
        result: DensifyResult,
        cluster_of: Dict[str, str],
        cluster_displays: Dict[str, str],
        phrase_id: str,
    ) -> Optional[Argument]:
        node = graph.phrases[phrase_id]
        if node.kind == "time":
            display = node.normalized or node.surface
            return Argument(kind=ARG_TIME, value=display, display=node.surface)
        if node.kind == "money":
            return Argument(kind=ARG_MONEY, value=node.surface, display=node.surface)

        resolved_id = phrase_id
        if node.node_type == NodeType.PRONOUN:
            antecedent = result.antecedent.get(phrase_id)
            if antecedent is None:
                return None
            resolved_id = antecedent
            node = graph.phrases[resolved_id]

        entity_id = result.assignment.get(resolved_id)
        confidence = result.confidence.get(resolved_id, 1.0)
        if entity_id is not None and confidence >= self.config.emerging_below:
            name = (
                self.entities.get(entity_id).canonical_name
                if entity_id in self.entities
                else node.surface
            )
            return Argument(kind=ARG_ENTITY, value=entity_id, display=name)
        cluster_id = cluster_of.get(resolved_id)
        if cluster_id is not None:
            display = cluster_displays.get(
                cluster_id, strip_determiners(node.surface)
            )
            return Argument(
                kind=ARG_EMERGING, value=cluster_id, display=display
            )
        return Argument(
            kind=ARG_LITERAL,
            value=strip_determiners(node.surface).lower(),
            display=node.surface,
        )


__all__ = ["Canonicalizer", "CanonicalizerConfig"]
