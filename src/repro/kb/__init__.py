"""Background repositories and the knowledge-base model.

The paper's static inputs (Section 2.2): an entity repository (Yago) used
only for alias names and gender, a pattern repository (PATTY) of
relational paraphrase synsets, and a type system derived from Wikipedia
infobox templates with a manually built subsumption hierarchy. This
package provides all three plus the fact/KB data model, including
higher-arity facts.
"""

from repro.kb.entity_repository import Entity, EntityRepository
from repro.kb.facts import Argument, Fact, KnowledgeBase
from repro.kb.pattern_repository import PatternRepository, Relation
from repro.kb.typesystem import TypeSystem

__all__ = [
    "Argument",
    "Entity",
    "EntityRepository",
    "Fact",
    "KnowledgeBase",
    "PatternRepository",
    "Relation",
    "TypeSystem",
]
