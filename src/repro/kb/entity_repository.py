"""Entity repository: the Yago stand-in.

The paper uses Yago only for (a) alias names of entities, (b) gender
attributes for pronoun resolution, and (c) semantic types — none of the
actual KB facts. This module provides exactly that interface: an alias
dictionary with ambiguous names (several entities can share an alias),
gender lookup, and type lookup against :class:`repro.kb.typesystem.TypeSystem`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.kb.typesystem import TypeSystem


@dataclass
class Entity:
    """A registered entity.

    Attributes:
        entity_id: Stable unique id (e.g. ``"E000042"``).
        canonical_name: Preferred display name.
        aliases: All surface names, including the canonical one.
        types: Semantic types (most specific first by convention).
        gender: ``"male"``, ``"female"`` or ``""`` when unknown /
            not applicable.
        prominence: Relative popularity weight (drives the link prior in
            the background corpus; more prominent entities are linked
            more often).
    """

    entity_id: str
    canonical_name: str
    aliases: List[str] = field(default_factory=list)
    types: List[str] = field(default_factory=list)
    gender: str = ""
    prominence: float = 1.0

    def __post_init__(self) -> None:
        if self.canonical_name and self.canonical_name not in self.aliases:
            self.aliases.insert(0, self.canonical_name)

    def to_dict(self) -> Dict:
        """Plain-dict form for persistence and fingerprinting."""
        return {
            "entity_id": self.entity_id,
            "canonical_name": self.canonical_name,
            "aliases": list(self.aliases),
            "types": list(self.types),
            "gender": self.gender,
            "prominence": self.prominence,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Entity":
        """Inverse of :meth:`to_dict`."""
        return cls(
            entity_id=data["entity_id"],
            canonical_name=data["canonical_name"],
            aliases=list(data.get("aliases", [])),
            types=list(data.get("types", [])),
            gender=data.get("gender", ""),
            prominence=data.get("prominence", 1.0),
        )


class EntityRepository:
    """Alias-indexed store of entities.

    Ambiguity is first-class: ``candidates("liverpool")`` may return both
    the city and the football club; disambiguation is the job of the
    graph algorithm, not the repository.
    """

    def __init__(self, type_system: Optional[TypeSystem] = None) -> None:
        self.type_system = type_system or TypeSystem()
        self._entities: Dict[str, Entity] = {}
        self._alias_index: Dict[str, List[str]] = {}

    # ---- population ------------------------------------------------------

    def add(self, entity: Entity) -> None:
        """Register an entity and index all of its aliases."""
        if entity.entity_id in self._entities:
            raise ValueError(f"duplicate entity id {entity.entity_id!r}")
        for type_name in entity.types:
            if type_name not in self.type_system:
                raise ValueError(
                    f"entity {entity.entity_id}: unknown type {type_name!r}"
                )
        self._entities[entity.entity_id] = entity
        for alias in entity.aliases:
            key = alias.lower()
            bucket = self._alias_index.setdefault(key, [])
            if entity.entity_id not in bucket:
                bucket.append(entity.entity_id)

    def add_alias(self, entity_id: str, alias: str) -> None:
        """Attach an extra alias to an existing entity."""
        entity = self._entities[entity_id]
        if alias not in entity.aliases:
            entity.aliases.append(alias)
        bucket = self._alias_index.setdefault(alias.lower(), [])
        if entity_id not in bucket:
            bucket.append(entity_id)

    # ---- lookup ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def get(self, entity_id: str) -> Entity:
        """Return the entity for ``entity_id`` (KeyError when missing)."""
        return self._entities[entity_id]

    def entities(self) -> Iterable[Entity]:
        """Iterate over all registered entities."""
        return self._entities.values()

    def candidates(self, mention: str) -> List[Entity]:
        """All entities whose alias matches ``mention`` (case-insensitive).

        This is the candidate-generation step of NED: the semantic graph
        creates one ``means`` edge per returned candidate.
        """
        ids = self._alias_index.get(mention.lower().strip(), [])
        return [self._entities[eid] for eid in ids]

    def is_known_alias(self, mention: str) -> bool:
        """True when some entity carries this alias."""
        return mention.lower().strip() in self._alias_index

    def gender(self, entity_id: str) -> str:
        """Gender attribute used by constraint (4) of the graph algorithm."""
        return self._entities[entity_id].gender

    def types_of(self, entity_id: str, with_ancestors: bool = False) -> List[str]:
        """Semantic types of an entity, optionally with all supertypes."""
        entity = self._entities[entity_id]
        if not with_ancestors:
            return list(entity.types)
        out: List[str] = []
        for type_name in entity.types:
            for expanded in self.type_system.with_ancestors(type_name):
                if expanded not in out:
                    out.append(expanded)
        return out

    def coarse_type(self, entity_id: str) -> str:
        """Coarse NER type of an entity (PERSON / ORGANIZATION / ...)."""
        entity = self._entities[entity_id]
        if not entity.types:
            return "MISC"
        return self.type_system.coarse(entity.types[0])

    def gazetteer(self) -> Dict[str, str]:
        """alias -> coarse NER type map for :class:`repro.nlp.ner.NerTagger`.

        When an alias is ambiguous across coarse types the most prominent
        entity wins, matching how gazetteer-based NER taggers behave.
        """
        out: Dict[str, str] = {}
        best: Dict[str, float] = {}
        for entity in self._entities.values():
            coarse = self.coarse_type(entity.entity_id)
            for alias in entity.aliases:
                key = alias.lower()
                if entity.prominence >= best.get(key, float("-inf")):
                    best[key] = entity.prominence
                    out[key] = coarse
        return out

    # ---- persistence -------------------------------------------------------

    def to_dict(self) -> Dict:
        """Canonical plain-dict form (entities sorted by id)."""
        return {
            "entities": [
                self._entities[entity_id].to_dict()
                for entity_id in sorted(self._entities)
            ]
        }

    @classmethod
    def from_dict(
        cls, data: Dict, type_system: Optional[TypeSystem] = None
    ) -> "EntityRepository":
        """Inverse of :meth:`to_dict`.

        Types are validated against ``type_system`` when given; pass the
        original system to preserve ``coarse_type`` / ancestor lookups.
        """
        repository = cls(type_system=type_system)
        for entity_data in data.get("entities", []):
            repository.add(Entity.from_dict(entity_data))
        return repository

    def fingerprint(self) -> str:
        """Content hash: two repositories with equal entities share it.

        Feeds the session's ``corpus_version`` stamp — registering or
        changing any entity yields a new fingerprint and therefore
        invalidates cached query results.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def ambiguous_aliases(self) -> List[Tuple[str, List[str]]]:
        """Aliases shared by several entities, for diagnostics and tests."""
        return sorted(
            (alias, list(ids))
            for alias, ids in self._alias_index.items()
            if len(ids) > 1
        )


__all__ = ["Entity", "EntityRepository"]
