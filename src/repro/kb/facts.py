"""Fact and knowledge-base model, including higher-arity facts.

A fact is an n-tuple: subject, predicate, and one or more objects.
Arguments are either canonical entities (linked to the entity
repository), *emerging* entities (out-of-repository sameAs clusters), or
literals (strings, time expressions, amounts). The KB supports the
search operations of the paper's demo UI (Figures 3-4): filtering by
subject / predicate / object substring and ``Type:`` category search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

ARG_ENTITY = "entity"
ARG_EMERGING = "emerging"
ARG_LITERAL = "literal"
ARG_TIME = "time"
ARG_MONEY = "money"


@dataclass(frozen=True)
class Argument:
    """One argument slot of a fact.

    Attributes:
        kind: One of ``entity``, ``emerging``, ``literal``, ``time``,
            ``money``.
        value: Entity id for ``entity``; cluster id for ``emerging``;
            surface/normalized string otherwise.
        display: Human-readable rendering.
    """

    kind: str
    value: str
    display: str

    def is_entity(self) -> bool:
        """True for canonical or emerging entity arguments."""
        return self.kind in (ARG_ENTITY, ARG_EMERGING)

    def to_dict(self) -> Dict[str, str]:
        """Plain-dict form for persistence (see :mod:`repro.service`)."""
        return {"kind": self.kind, "value": self.value, "display": self.display}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Argument":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"], value=data["value"], display=data["display"]
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        marker = "*" if self.kind == ARG_EMERGING else ""
        return f"{self.display}{marker}"


@dataclass
class Fact:
    """An extracted n-ary fact.

    Attributes:
        subject: Subject argument.
        predicate: Canonical relation id when the pattern was found in
            the pattern repository, else the lemmatized surface pattern
            (a *new relation*).
        objects: One object for a triple; more for higher-arity facts.
        pattern: The original lemmatized surface pattern.
        confidence: Min confidence over disambiguated arguments
            (Section 4, "Confidence Scores").
        doc_id / sentence_index: Provenance.
        canonical_predicate: True when ``predicate`` came from the
            pattern repository.
    """

    subject: Argument
    predicate: str
    objects: List[Argument]
    pattern: str = ""
    confidence: float = 1.0
    doc_id: str = ""
    sentence_index: int = -1
    canonical_predicate: bool = False

    @property
    def arity(self) -> int:
        """Total argument count (subject + objects)."""
        return 1 + len(self.objects)

    def is_triple(self) -> bool:
        """True for plain subject-predicate-object facts."""
        return len(self.objects) == 1

    def arguments(self) -> List[Argument]:
        """Subject followed by all objects."""
        return [self.subject] + list(self.objects)

    def key(self) -> Tuple:
        """Deduplication key: predicate plus argument identities."""
        return (
            self.predicate,
            self.subject.kind,
            self.subject.value,
            tuple((o.kind, o.value) for o in self.objects),
        )

    def to_dict(self) -> Dict:
        """Plain-dict form (stable field order) for persistence."""
        return {
            "subject": self.subject.to_dict(),
            "predicate": self.predicate,
            "objects": [o.to_dict() for o in self.objects],
            "pattern": self.pattern,
            "confidence": self.confidence,
            "doc_id": self.doc_id,
            "sentence_index": self.sentence_index,
            "canonical_predicate": self.canonical_predicate,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Fact":
        """Inverse of :meth:`to_dict`."""
        return cls(
            subject=Argument.from_dict(data["subject"]),
            predicate=data["predicate"],
            objects=[Argument.from_dict(o) for o in data["objects"]],
            pattern=data.get("pattern", ""),
            confidence=data.get("confidence", 1.0),
            doc_id=data.get("doc_id", ""),
            sentence_index=data.get("sentence_index", -1),
            canonical_predicate=data.get("canonical_predicate", False),
        )

    def __str__(self) -> str:
        return f"<{self.subject}, {self.predicate}, " + ", ".join(
            str(o) for o in self.objects
        ) + ">"


@dataclass
class EmergingEntity:
    """An out-of-repository entity discovered on the fly.

    Formed from a sameAs cluster of noun-phrase mentions that could not
    be linked to the entity repository (Section 5).
    """

    cluster_id: str
    display_name: str
    mentions: List[str] = field(default_factory=list)
    guessed_type: str = "MISC"

    def to_dict(self) -> Dict:
        """Plain-dict form for persistence."""
        return {
            "cluster_id": self.cluster_id,
            "display_name": self.display_name,
            "mentions": list(self.mentions),
            "guessed_type": self.guessed_type,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EmergingEntity":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cluster_id=data["cluster_id"],
            display_name=data["display_name"],
            mentions=list(data.get("mentions", [])),
            guessed_type=data.get("guessed_type", "MISC"),
        )


class KnowledgeBase:
    """The on-the-fly KB: facts plus entity/mention bookkeeping."""

    def __init__(self) -> None:
        self.facts: List[Fact] = []
        self.emerging: Dict[str, EmergingEntity] = {}
        # entity id -> mentions observed in the input documents.
        self.entity_mentions: Dict[str, Set[str]] = {}
        # entity id -> semantic types (with ancestors), for Type: search.
        self.entity_types: Dict[str, List[str]] = {}
        self._fact_keys: Set[Tuple] = set()

    # ---- population ------------------------------------------------------

    def add_fact(self, fact: Fact) -> bool:
        """Add a fact unless an identical one is already present.

        Returns True when the fact was new. Duplicate facts keep the
        maximum confidence seen.
        """
        key = fact.key()
        if key in self._fact_keys:
            for existing in self.facts:
                if existing.key() == key:
                    existing.confidence = max(existing.confidence, fact.confidence)
                    break
            return False
        self._fact_keys.add(key)
        self.facts.append(fact)
        return True

    def add_emerging(self, entity: EmergingEntity) -> None:
        """Register an emerging entity cluster."""
        self.emerging[entity.cluster_id] = entity

    def observe_mention(self, entity_id: str, mention: str) -> None:
        """Record that ``mention`` referred to ``entity_id``."""
        self.entity_mentions.setdefault(entity_id, set()).add(mention)

    def set_entity_types(self, entity_id: str, types: Sequence[str]) -> None:
        """Attach semantic types for ``Type:`` search."""
        self.entity_types[entity_id] = list(types)

    # ---- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.facts)

    def triples(self) -> List[Fact]:
        """Only the binary facts."""
        return [f for f in self.facts if f.is_triple()]

    def higher_arity_facts(self) -> List[Fact]:
        """Only the ternary-and-above facts."""
        return [f for f in self.facts if not f.is_triple()]

    def predicates(self) -> List[str]:
        """Distinct predicates, sorted."""
        return sorted({f.predicate for f in self.facts})

    def num_new_relations(self) -> int:
        """Predicates not found in the pattern repository."""
        return len({f.predicate for f in self.facts if not f.canonical_predicate})

    # ---- search (demo UI semantics, Figures 3-4) ---------------------------

    def search(
        self,
        subject: str = "",
        predicate: str = "",
        obj: str = "",
        min_confidence: float = 0.0,
    ) -> List[Fact]:
        """Filter facts by substring / ``Type:`` queries per slot.

        Each non-empty filter must match: a plain string matches as a
        case-insensitive substring of the slot's display text; a string
        prefixed with ``Type:`` matches entity arguments whose type set
        contains the given category (subject/object slots only).
        """
        out: List[Fact] = []
        for fact in self.facts:
            if fact.confidence < min_confidence:
                continue
            if subject and not self._slot_matches(fact.subject, subject):
                continue
            if predicate and predicate.lower() not in fact.predicate.lower():
                continue
            if obj and not any(self._slot_matches(o, obj) for o in fact.objects):
                continue
            out.append(fact)
        return out

    def _slot_matches(self, argument: Argument, query: str) -> bool:
        if query.startswith("Type:"):
            wanted = query[len("Type:"):].strip().upper().replace(" ", "_")
            if argument.kind == ARG_ENTITY:
                return wanted in {
                    t.upper() for t in self.entity_types.get(argument.value, [])
                }
            if argument.kind == ARG_EMERGING:
                emerging = self.emerging.get(argument.value)
                return emerging is not None and emerging.guessed_type.upper() == wanted
            return False
        return query.lower() in argument.display.lower()

    def copy(self) -> "KnowledgeBase":
        """Deep-enough copy: mutating the copy never touches the original.

        ``Fact`` rows are mutable (``add_fact`` raises confidences on
        duplicates, ``merge`` folds KBs together), so the serving layer
        hands out copies — a consumer merging a cached KB must not
        write through to the cache. Frozen ``Argument`` instances are
        shared; everything mutable is duplicated.
        """
        out = KnowledgeBase()
        for fact in self.facts:
            out.facts.append(
                Fact(
                    subject=fact.subject,
                    predicate=fact.predicate,
                    objects=list(fact.objects),
                    pattern=fact.pattern,
                    confidence=fact.confidence,
                    doc_id=fact.doc_id,
                    sentence_index=fact.sentence_index,
                    canonical_predicate=fact.canonical_predicate,
                )
            )
        out._fact_keys = set(self._fact_keys)
        for cluster_id, emerging in self.emerging.items():
            out.emerging[cluster_id] = EmergingEntity(
                cluster_id=emerging.cluster_id,
                display_name=emerging.display_name,
                mentions=list(emerging.mentions),
                guessed_type=emerging.guessed_type,
            )
        out.entity_mentions = {
            eid: set(mentions) for eid, mentions in self.entity_mentions.items()
        }
        out.entity_types = {
            eid: list(types) for eid, types in self.entity_types.items()
        }
        return out

    # ---- persistence -------------------------------------------------------

    def to_dict(self) -> Dict:
        """Canonical plain-dict form of the whole KB.

        Deterministic (mentions and map keys are sorted), so two KBs
        with identical content serialize identically — the property the
        store round-trip and batch-equivalence tests rely on.
        """
        return {
            "facts": [f.to_dict() for f in self.facts],
            "emerging": {
                cid: self.emerging[cid].to_dict()
                for cid in sorted(self.emerging)
            },
            "entity_mentions": {
                eid: sorted(self.entity_mentions[eid])
                for eid in sorted(self.entity_mentions)
            },
            "entity_types": {
                eid: list(self.entity_types[eid])
                for eid in sorted(self.entity_types)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "KnowledgeBase":
        """Inverse of :meth:`to_dict`."""
        kb = cls()
        for fact_data in data.get("facts", []):
            kb.add_fact(Fact.from_dict(fact_data))
        for emerging_data in data.get("emerging", {}).values():
            kb.add_emerging(EmergingEntity.from_dict(emerging_data))
        for entity_id, mentions in data.get("entity_mentions", {}).items():
            for mention in mentions:
                kb.observe_mention(entity_id, mention)
        for entity_id, types in data.get("entity_types", {}).items():
            kb.set_entity_types(entity_id, types)
        return kb

    def merge(self, other: "KnowledgeBase") -> None:
        """Fold another KB (e.g. from a second document) into this one."""
        for fact in other.facts:
            self.add_fact(fact)
        for cluster_id, emerging in other.emerging.items():
            if cluster_id not in self.emerging:
                self.emerging[cluster_id] = emerging
        for entity_id, mentions in other.entity_mentions.items():
            self.entity_mentions.setdefault(entity_id, set()).update(mentions)
        for entity_id, types in other.entity_types.items():
            self.entity_types.setdefault(entity_id, list(types))


__all__ = [
    "ARG_EMERGING",
    "ARG_ENTITY",
    "ARG_LITERAL",
    "ARG_MONEY",
    "ARG_TIME",
    "Argument",
    "EmergingEntity",
    "Fact",
    "KnowledgeBase",
]
