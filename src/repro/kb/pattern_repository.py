"""Pattern repository: the PATTY stand-in.

PATTY is a dictionary of relational paraphrases organized in synsets with
semantic type signatures (e.g. "play in" / "act in" / "star in" all
express ``plays_role_in(ACTOR, FILM)``). QKBfly's canonicalization stage
(Section 5) merges relation edges whose lemmatized patterns belong to the
same synset; patterns outside the repository become new relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class Relation:
    """A canonical relation with its paraphrase synset.

    Attributes:
        relation_id: Stable identifier, e.g. ``"married_to"``.
        display_name: Canonical predicate label shown in facts.
        patterns: Lemmatized surface patterns in the synset (e.g.
            ``"marry"``, ``"be married to"``, ``"wed"``).
        signature: Semantic types of (subject, object) arguments.
        symmetric: True for relations like ``married_to`` where
            <a, r, b> entails <b, r, a>.
        arity_hint: Minimum argument count (2 for binary; 3 when the
            relation naturally takes an extra argument, like
            ``plays_role_in(actor, character, film)``).
    """

    relation_id: str
    display_name: str
    patterns: List[str] = field(default_factory=list)
    signature: Tuple[str, str] = ("MISC", "MISC")
    symmetric: bool = False
    arity_hint: int = 2


class PatternRepository:
    """Lemmatized-pattern index over relation synsets."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._pattern_index: Dict[str, str] = {}

    def add(self, relation: Relation) -> None:
        """Register a relation and index every pattern of its synset."""
        if relation.relation_id in self._relations:
            raise ValueError(f"duplicate relation {relation.relation_id!r}")
        self._relations[relation.relation_id] = relation
        for pattern in relation.patterns:
            key = self._normalize(pattern)
            # First registration wins: PATTY synsets are disjoint.
            self._pattern_index.setdefault(key, relation.relation_id)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, relation_id: str) -> bool:
        return relation_id in self._relations

    def relations(self) -> Iterable[Relation]:
        """Iterate over all registered relations."""
        return self._relations.values()

    def get(self, relation_id: str) -> Relation:
        """Return a relation by id (KeyError when missing)."""
        return self._relations[relation_id]

    def num_patterns(self) -> int:
        """Total number of indexed paraphrases."""
        return len(self._pattern_index)

    def fingerprint(self) -> str:
        """Content hash over all relations, patterns and signatures.

        Feeds the serving layer's ``corpus_version`` stamp: editing the
        pattern inventory changes canonicalization output, so it must
        invalidate cached query results.
        """
        import hashlib

        digest = hashlib.sha1()
        for relation_id in sorted(self._relations):
            relation = self._relations[relation_id]
            digest.update(
                "|".join(
                    (
                        relation.relation_id,
                        relation.display_name,
                        ",".join(sorted(relation.patterns)),
                        ",".join(relation.signature),
                        str(relation.symmetric),
                        str(relation.arity_hint),
                    )
                ).encode("utf-8")
            )
        return digest.hexdigest()

    def canonicalize(self, pattern: str) -> Optional[str]:
        """Map a lemmatized surface pattern to its relation id.

        Tries the exact pattern first, then backs off by dropping a
        trailing preposition ("donate to" -> "donate") and finally the
        bare head verb, mirroring how paraphrase dictionaries are matched
        in practice. Returns None for out-of-repository patterns (these
        become *new relations* in the on-the-fly KB).
        """
        key = self._normalize(pattern)
        found = self._pattern_index.get(key)
        if found is not None:
            return found
        words = key.split()
        if len(words) > 1:
            found = self._pattern_index.get(" ".join(words[:-1]))
            if found is not None:
                return found
            found = self._pattern_index.get(words[0])
            if found is not None:
                return found
        return None

    def synonyms(self, pattern: str) -> List[str]:
        """All paraphrases in the same synset as ``pattern`` (incl. itself)."""
        relation_id = self.canonicalize(pattern)
        if relation_id is None:
            return [self._normalize(pattern)]
        return list(self._relations[relation_id].patterns)

    def same_synset(self, pattern_a: str, pattern_b: str) -> bool:
        """True when both patterns canonicalize to the same relation."""
        a = self.canonicalize(pattern_a)
        return a is not None and a == self.canonicalize(pattern_b)

    def signature_of(self, relation_id: str) -> Tuple[str, str]:
        """(subject type, object type) signature of a relation."""
        return self._relations[relation_id].signature

    @staticmethod
    def _normalize(pattern: str) -> str:
        return " ".join(pattern.lower().split())


__all__ = ["PatternRepository", "Relation"]
