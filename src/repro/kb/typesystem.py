"""Semantic type system with a subsumption hierarchy.

The paper extends the five coarse NER types (PERSON, ORGANIZATION,
LOCATION, MISC, TIME) with 167 prominent Wikipedia infobox types arranged
in a manually built subsumption hierarchy (e.g. FOOTBALLER ⊆ ATHLETE ⊆
PERSON). We embed an equivalent hierarchy covering the domains the
synthetic world generates; the exact inventory is configurable, the
mechanics (subsumption checks, coarse projection, type signatures) are
identical.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

# type -> direct parent (None for roots). Kept flat and explicit so tests
# can assert the full transitive closure.
_DEFAULT_HIERARCHY: Dict[str, Optional[str]] = {
    "PERSON": None,
    "ORGANIZATION": None,
    "LOCATION": None,
    "MISC": None,
    "TIME": None,
    "MONEY": None,
    # People.
    "ARTIST": "PERSON",
    "ACTOR": "ARTIST",
    "MUSICAL_ARTIST": "ARTIST",
    "SINGER": "MUSICAL_ARTIST",
    "PIANIST": "MUSICAL_ARTIST",
    "DIRECTOR": "ARTIST",
    "WRITER": "ARTIST",
    "MODEL": "PERSON",
    "ATHLETE": "PERSON",
    "FOOTBALLER": "ATHLETE",
    "GOALKEEPER": "FOOTBALLER",
    "TENNIS_PLAYER": "ATHLETE",
    "POLITICIAN": "PERSON",
    "PRESIDENT": "POLITICIAN",
    "MINISTER": "POLITICIAN",
    "MAYOR": "POLITICIAN",
    "SCIENTIST": "PERSON",
    "PHYSICIST": "SCIENTIST",
    "COMPUTER_SCIENTIST": "SCIENTIST",
    "HISTORIAN": "SCIENTIST",
    "BUSINESSPERSON": "PERSON",
    "CEO": "BUSINESSPERSON",
    "INVESTOR": "BUSINESSPERSON",
    "JOURNALIST": "PERSON",
    "COACH": "PERSON",
    "CHARACTER": "PERSON",
    # Organizations.
    "COMPANY": "ORGANIZATION",
    "STARTUP": "COMPANY",
    "RECORD_LABEL": "COMPANY",
    "FILM_STUDIO": "COMPANY",
    "SPORTS_TEAM": "ORGANIZATION",
    "FOOTBALL_CLUB": "SPORTS_TEAM",
    "UNIVERSITY": "ORGANIZATION",
    "FOUNDATION": "ORGANIZATION",
    "BAND": "ORGANIZATION",
    "NEWSPAPER": "ORGANIZATION",
    "POLITICAL_PARTY": "ORGANIZATION",
    "LEAGUE": "ORGANIZATION",
    # Locations.
    "SETTLEMENT": "LOCATION",
    "CITY": "SETTLEMENT",
    "TOWN": "SETTLEMENT",
    "VILLAGE": "SETTLEMENT",
    "COUNTRY": "LOCATION",
    "REGION": "LOCATION",
    "STADIUM": "LOCATION",
    "VENUE": "LOCATION",
    # Works and other MISC.
    "WORK": "MISC",
    "FILM": "WORK",
    "TELEVISION_SERIES": "WORK",
    "ALBUM": "WORK",
    "SONG": "WORK",
    "BOOK": "WORK",
    "AWARD": "MISC",
    "EVENT": "MISC",
    "FESTIVAL": "EVENT",
    "TOURNAMENT": "EVENT",
    "ELECTION": "EVENT",
}

COARSE_TYPES: FrozenSet[str] = frozenset(
    {"PERSON", "ORGANIZATION", "LOCATION", "MISC", "TIME", "MONEY"}
)


class TypeSystem:
    """Subsumption hierarchy over semantic types.

    Args:
        hierarchy: ``type -> direct parent`` mapping; ``None`` marks a
            root. Defaults to the embedded inventory mirroring the
            paper's infobox-derived type system.
    """

    def __init__(self, hierarchy: Optional[Dict[str, Optional[str]]] = None) -> None:
        self._parent: Dict[str, Optional[str]] = dict(
            hierarchy if hierarchy is not None else _DEFAULT_HIERARCHY
        )
        for child, parent in self._parent.items():
            if parent is not None and parent not in self._parent:
                raise ValueError(f"type {child!r} has unknown parent {parent!r}")
        self._ancestors_cache: Dict[str, Tuple[str, ...]] = {}

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._parent

    def types(self) -> List[str]:
        """All known type names, sorted."""
        return sorted(self._parent)

    def parent(self, type_name: str) -> Optional[str]:
        """Direct parent of ``type_name`` (None for a root)."""
        return self._parent[type_name]

    def ancestors(self, type_name: str) -> Tuple[str, ...]:
        """All strict supertypes from nearest to the root."""
        cached = self._ancestors_cache.get(type_name)
        if cached is not None:
            return cached
        chain: List[str] = []
        node = self._parent.get(type_name)
        while node is not None:
            chain.append(node)
            node = self._parent.get(node)
        result = tuple(chain)
        self._ancestors_cache[type_name] = result
        return result

    def with_ancestors(self, type_name: str) -> Tuple[str, ...]:
        """``type_name`` followed by all its supertypes."""
        return (type_name,) + self.ancestors(type_name)

    def is_subtype(self, child: str, ancestor: str) -> bool:
        """True when ``child`` equals or specializes ``ancestor``."""
        if child == ancestor:
            return True
        return ancestor in self.ancestors(child)

    def coarse(self, type_name: str) -> str:
        """Project a type to its coarse NER root (PERSON, LOCATION, ...)."""
        if type_name in COARSE_TYPES:
            return type_name
        for ancestor in self.ancestors(type_name):
            if ancestor in COARSE_TYPES:
                return ancestor
        return "MISC"

    def children(self, type_name: str) -> List[str]:
        """Direct subtypes of ``type_name``."""
        return sorted(t for t, p in self._parent.items() if p == type_name)

    def compatible(self, types_a: Iterable[str], types_b: Iterable[str]) -> bool:
        """True when some type in ``types_a`` subsumes or is subsumed by one in ``types_b``."""
        set_b: Set[str] = set(types_b)
        for a in types_a:
            for b in set_b:
                if self.is_subtype(a, b) or self.is_subtype(b, a):
                    return True
        return False


__all__ = ["COARSE_TYPES", "TypeSystem"]
