"""Ad-hoc KB-QA: the four-step method of Appendix B.

Step 1 — detect question entities, retrieve relevant documents
(Wikipedia page of the entity + top-10 news articles for the question).
Step 2 — run QKBfly over the retrieved documents; no pre-existing fact
repository is used.
Step 3 — collect answer candidates from the question-specific KB, with
an expected-answer-type filter (Who -> PERSON/CHARACTER/ORGANIZATION,
Where -> LOCATION, When -> TIME, Which <noun> -> mapped type).
Step 4 — score each candidate with a binary linear SVM over hashed
question-token x candidate-token pair features; positives are returned
(top-ranked candidate as fallback for factoid questions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.qkbfly import QKBfly
from repro.datasets.trends_questions import QaQuestion
from repro.kb.facts import ARG_EMERGING, ARG_ENTITY, ARG_TIME, Fact, KnowledgeBase
from repro.qa.classifier import LinearSvm
from repro.qa.features import (
    FEATURE_DIMENSION,
    candidate_tokens,
    evidence_features,
    pair_features,
    question_tokens,
)

_WHICH_TYPE_MAP = {
    "club": ("ORGANIZATION",),
    "team": ("ORGANIZATION",),
    "company": ("ORGANIZATION",),
    "band": ("ORGANIZATION",),
    "newspaper": ("ORGANIZATION",),
    "award": ("MISC",),
    "film": ("MISC",),
    "movie": ("MISC",),
    "album": ("MISC",),
    "festival": ("MISC", "LOCATION"),
    "city": ("LOCATION",),
    "country": ("LOCATION",),
}


@dataclass
class AnswerCandidate:
    """One candidate answer with its KB support."""

    display: str
    types: Tuple[str, ...]
    facts: List[Fact] = field(default_factory=list)
    score: float = 0.0


class QaSystem:
    """QKBfly-backed ad-hoc question answering."""

    def __init__(
        self,
        qkbfly: QKBfly,
        num_news: int = 10,
        use_wikipedia: bool = True,
        use_news: bool = True,
    ) -> None:
        self.qkbfly = qkbfly
        self.num_news = num_news
        self.use_wikipedia = use_wikipedia
        self.use_news = use_news
        self.classifier = LinearSvm(FEATURE_DIMENSION)
        self._trained = False

    # ------------------------------------------------------------------
    # Steps 1-2: retrieval + on-the-fly KB
    # ------------------------------------------------------------------

    def build_question_kb(self, question: QaQuestion) -> KnowledgeBase:
        """Retrieve documents for the question and build its ad-hoc KB."""
        kb = KnowledgeBase()
        if self.use_wikipedia:
            kb.merge(
                self.qkbfly.build_kb(question.query, source="wikipedia", num_documents=1)
            )
        if self.use_news:
            kb.merge(
                self.qkbfly.build_kb(
                    question.question, source="news", num_documents=self.num_news
                )
            )
        return kb

    # ------------------------------------------------------------------
    # Step 3: candidates with type filter
    # ------------------------------------------------------------------

    def collect_candidates(
        self, question: QaQuestion, kb: KnowledgeBase
    ) -> List[AnswerCandidate]:
        """Typed answer candidates from the question-specific KB."""
        answer_types = self._expected_types(question)
        question_lower = question.question.lower()
        by_display: Dict[str, AnswerCandidate] = {}
        for fact in kb.facts:
            for argument in fact.arguments():
                types = self._types_of(kb, argument)
                if argument.kind == ARG_TIME:
                    if "TIME" not in answer_types:
                        continue
                elif argument.kind not in (ARG_ENTITY, ARG_EMERGING):
                    continue
                elif not any(t in answer_types for t in types):
                    continue
                display = argument.display
                if display.lower() in question_lower:
                    continue  # a question entity is not an answer
                candidate = by_display.get(display.lower())
                if candidate is None:
                    candidate = AnswerCandidate(
                        display=display, types=tuple(types)
                    )
                    by_display[display.lower()] = candidate
                candidate.facts.append(fact)
        return list(by_display.values())

    def _expected_types(self, question: QaQuestion) -> Tuple[str, ...]:
        text = question.question.lower()
        if text.startswith("who"):
            return ("PERSON", "CHARACTER", "ORGANIZATION")
        if text.startswith("where"):
            return ("LOCATION",)
        if text.startswith("when"):
            return ("TIME",)
        if text.startswith(("which", "what")):
            words = text.split()
            if len(words) > 1 and words[1] in _WHICH_TYPE_MAP:
                return _WHICH_TYPE_MAP[words[1]]
            return question.answer_types
        return question.answer_types

    def _types_of(self, kb: KnowledgeBase, argument) -> Tuple[str, ...]:
        if argument.kind == ARG_ENTITY:
            types = kb.entity_types.get(argument.value, ())
            coarse = set()
            for type_name in types:
                coarse.add(
                    self.qkbfly.entity_repository.type_system.coarse(type_name)
                )
                coarse.add(type_name)
            return tuple(sorted(coarse)) or ("MISC",)
        if argument.kind == ARG_EMERGING:
            emerging = kb.emerging.get(argument.value)
            return (emerging.guessed_type,) if emerging else ("MISC",)
        if argument.kind == ARG_TIME:
            return ("TIME",)
        return ("MISC",)

    # ------------------------------------------------------------------
    # Step 4: classifier
    # ------------------------------------------------------------------

    def train(self, training_questions: Sequence[QaQuestion]) -> Dict[str, int]:
        """Train the answer SVM on WebQuestions-style pairs.

        Facts extracted by QKBfly that contain correct / incorrect
        answers yield positive / negative examples (Appendix B).
        """
        examples: List[Tuple[List[int], int]] = []
        for question in training_questions:
            kb = self.build_question_kb(question)
            for candidate in self.collect_candidates(question, kb):
                features = self._features(question, candidate)
                label = int(candidate.display.lower() in question.gold)
                examples.append((features, label))
        if not examples:
            raise RuntimeError("no training candidates generated")
        self.classifier.fit(examples)
        self._trained = True
        return {
            "examples": len(examples),
            "positives": sum(label for _, label in examples),
        }

    def _features(self, question: QaQuestion, candidate: AnswerCandidate) -> List[int]:
        q_tokens = question_tokens(question.question)
        features = pair_features(
            q_tokens, candidate_tokens(candidate.display, candidate.facts)
        )
        features.extend(evidence_features(question.question, candidate.facts))
        return sorted(set(features))

    def answer(self, question: QaQuestion) -> Set[str]:
        """Answer one question; returns the predicted answer strings."""
        kb = self.build_question_kb(question)
        return self.answer_from_kb(question, kb)

    def answer_from_kb(
        self, question: QaQuestion, kb: KnowledgeBase
    ) -> Set[str]:
        """Steps 3-4 given a pre-built question-specific KB."""
        if not self._trained:
            raise RuntimeError("call train() before answer()")
        candidates = self.collect_candidates(question, kb)
        if not candidates:
            return set()
        for candidate in candidates:
            candidate.score = self.classifier.decision(
                self._features(question, candidate)
            )
        positives = [c for c in candidates if c.score > 0.0]
        if positives:
            return {c.display.lower() for c in positives}
        best = max(candidates, key=lambda c: c.score)
        return {best.display.lower()}


__all__ = ["AnswerCandidate", "QaSystem"]
