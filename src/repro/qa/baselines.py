"""QA baselines of Table 9: Sentence-Answers, QA-Freebase, AQQU-style.

- :class:`SentenceAnswers` — passage-retrieval QA: same on-the-fly
  corpus, no fact extraction; candidates are entities co-occurring with
  a question entity in a sentence, features are sentence tokens.
- :class:`QaFreebase` — the same QA method over a huge but *static* KB
  (the Freebase stand-in: all non-recent world facts), which lacks the
  trend events entirely.
- :class:`AqquStyle` — a template/relation-matching KB-QA system over
  the static KB, mirroring AQQU's design point (strong on static facts,
  blind to anything on-the-fly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.corpus.retrieval import SearchEngine
from repro.corpus.statistics import content_tokens
from repro.corpus.world import World
from repro.datasets.trends_questions import QaQuestion
from repro.kb.facts import ARG_ENTITY, Argument, Fact
from repro.nlp.pipeline import NlpPipeline, PipelineConfig
from repro.qa.classifier import LinearSvm
from repro.qa.features import FEATURE_DIMENSION, pair_features, question_tokens


class SentenceAnswers:
    """Passage-retrieval QA without fact extraction."""

    def __init__(
        self, world: World, search_engine: SearchEngine, num_news: int = 10
    ) -> None:
        self.world = world
        self.search = search_engine
        self.num_news = num_news
        self.nlp = NlpPipeline(
            PipelineConfig(
                parser="greedy", gazetteer=world.entity_repository.gazetteer()
            )
        )
        self.classifier = LinearSvm(FEATURE_DIMENSION)
        self._trained = False

    def _candidate_sentences(
        self, question: QaQuestion
    ) -> List[Tuple[str, List[str]]]:
        """(entity surface, sentence tokens) for co-occurring entities."""
        documents = self.search.search(
            question.query, source="wikipedia", k=1
        ) + self.search.search(question.question, source="news", k=self.num_news)
        question_lower = question.question.lower()
        out: List[Tuple[str, List[str]]] = []
        for realized in documents:
            annotated = self.nlp.annotate_text(realized.text, doc_id=realized.doc_id)
            for sentence in annotated.sentences:
                surfaces = [
                    sentence.text(m.start, m.end)
                    for m in sentence.entity_mentions
                ]
                has_question_entity = any(
                    s.lower() in question_lower for s in surfaces
                )
                if not has_question_entity:
                    continue
                tokens = content_tokens(sentence.text())
                for surface in surfaces:
                    if surface.lower() in question_lower:
                        continue
                    out.append((surface, tokens))
        return out

    def train(self, training_questions: Sequence[QaQuestion]) -> None:
        """Train the same SVM architecture on sentence-level features."""
        examples = []
        for question in training_questions:
            q_tokens = question_tokens(question.question)
            for surface, tokens in self._candidate_sentences(question):
                features = pair_features(q_tokens, tokens)
                examples.append(
                    (features, int(surface.lower() in question.gold))
                )
        if examples:
            self.classifier.fit(examples)
            self._trained = True

    def answer(self, question: QaQuestion) -> Set[str]:
        """Predict answers from co-occurring sentence entities."""
        if not self._trained:
            raise RuntimeError("call train() first")
        q_tokens = question_tokens(question.question)
        scored: Dict[str, float] = {}
        for surface, tokens in self._candidate_sentences(question):
            features = pair_features(q_tokens, tokens)
            score = self.classifier.decision(features)
            key = surface.lower()
            scored[key] = max(scored.get(key, float("-inf")), score)
        positives = {s for s, v in scored.items() if v > 0.0}
        if positives:
            return positives
        if scored:
            return {max(scored, key=scored.get)}
        return set()


class StaticKb:
    """The Freebase stand-in: all non-recent world facts, as a flat KB."""

    def __init__(self, world: World) -> None:
        self.world = world
        self.facts: List[Fact] = []
        for fact in world.facts:
            if fact.recent:
                continue  # static KBs lack facts about recent events
            subject = world.entities[fact.subject_id]
            objects: List[Argument] = []
            if fact.object_id:
                obj = world.entities[fact.object_id]
                objects.append(Argument(ARG_ENTITY, obj.entity_id, obj.name))
            if fact.object2_id:
                obj2 = world.entities[fact.object2_id]
                objects.append(Argument(ARG_ENTITY, obj2.entity_id, obj2.name))
            if not objects:
                continue
            self.facts.append(
                Fact(
                    subject=Argument(ARG_ENTITY, subject.entity_id, subject.name),
                    predicate=fact.relation_id,
                    objects=objects,
                    pattern=fact.relation_id,
                    canonical_predicate=True,
                )
            )

    def facts_about(self, surfaces: Sequence[str]) -> List[Fact]:
        """Facts whose subject or object matches one of the surfaces."""
        wanted = {s.lower() for s in surfaces}
        out = []
        for fact in self.facts:
            names = [fact.subject.display.lower()] + [
                o.display.lower() for o in fact.objects
            ]
            if any(name in wanted for name in names):
                out.append(fact)
        return out


class QaFreebase:
    """The Appendix-B QA method over the static KB."""

    def __init__(self, world: World) -> None:
        self.world = world
        self.kb = StaticKb(world)
        self.classifier = LinearSvm(FEATURE_DIMENSION)
        self._trained = False

    def _candidates(self, question: QaQuestion) -> Dict[str, List[Fact]]:
        surfaces = self._question_entities(question)
        question_lower = question.question.lower()
        out: Dict[str, List[Fact]] = {}
        for fact in self.kb.facts_about(surfaces):
            for argument in fact.arguments():
                display = argument.display.lower()
                if display in question_lower:
                    continue
                out.setdefault(display, []).append(fact)
        return out

    def _question_entities(self, question: QaQuestion) -> List[str]:
        found = []
        lower = question.question.lower()
        for entity in self.world.entity_repository.entities():
            for alias in entity.aliases:
                if alias.lower() in lower:
                    found.append(alias)
        return found or [question.query]

    def train(self, training_questions: Sequence[QaQuestion]) -> None:
        """Fit the SVM on static-KB candidates."""
        from repro.qa.features import candidate_tokens

        examples = []
        for question in training_questions:
            q_tokens = question_tokens(question.question)
            for display, facts in self._candidates(question).items():
                features = pair_features(
                    q_tokens, candidate_tokens(display, facts)
                )
                examples.append((features, int(display in question.gold)))
        if examples:
            self.classifier.fit(examples)
            self._trained = True

    def answer(self, question: QaQuestion) -> Set[str]:
        """Predict answers from the static KB (empty for unseen events)."""
        if not self._trained:
            raise RuntimeError("call train() first")
        from repro.qa.features import candidate_tokens

        q_tokens = question_tokens(question.question)
        positives: Set[str] = set()
        best: Optional[Tuple[str, float]] = None
        for display, facts in self._candidates(question).items():
            features = pair_features(q_tokens, candidate_tokens(display, facts))
            score = self.classifier.decision(features)
            if score > 0.0:
                positives.add(display)
            if best is None or score > best[1]:
                best = (display, score)
        if positives:
            return positives
        return {best[0]} if best else set()


_AQQU_RELATION_KEYWORDS = {
    "marry": "married_to",
    "divorce": "divorced_from",
    "born": "born_in",
    "live": "lives_in",
    "play for": "plays_for",
    "join": "joins",
    "study": "studied_at",
    "found": "founded",
    "launch": "founded",
    "lead": "ceo_of",
    "win": "wins_award",
    "receive": "receives_from",
    "perform": "performs_at",
    "defeat": "defeats",
    "accuse": "accuses_of",
    "release": "records",
    "appear": "acts_in",
    "plays": "plays_role_in",
}


class AqquStyle:
    """Template-based KB-QA over the static KB (the AQQU stand-in)."""

    def __init__(self, world: World) -> None:
        self.world = world
        self.kb = StaticKb(world)

    def answer(self, question: QaQuestion) -> Set[str]:
        """Match a relation template and query the static KB."""
        lower = question.question.lower()
        relation = None
        for keyword, relation_id in _AQQU_RELATION_KEYWORDS.items():
            if keyword in lower:
                relation = relation_id
                break
        if relation is None:
            return set()
        entities = self._question_entities(lower)
        if not entities:
            return set()
        answers: Set[str] = set()
        for fact in self.kb.facts:
            if fact.predicate != relation:
                continue
            names = {fact.subject.display.lower()} | {
                o.display.lower() for o in fact.objects
            }
            if names & entities:
                for name in names - entities:
                    answers.add(name)
        return answers

    def _question_entities(self, lower_question: str) -> Set[str]:
        found = set()
        for entity in self.world.entity_repository.entities():
            for alias in entity.aliases:
                if alias.lower() in lower_question:
                    found.add(entity.canonical_name.lower())
        return found


__all__ = ["AqquStyle", "QaFreebase", "SentenceAnswers", "StaticKb"]
