"""Ad-hoc question answering over on-the-fly KBs (Section 7.4 / App. B)."""

from repro.qa.answering import QaSystem
from repro.qa.baselines import QaFreebase, SentenceAnswers, AqquStyle
from repro.qa.classifier import LinearSvm

__all__ = ["AqquStyle", "LinearSvm", "QaFreebase", "QaSystem", "SentenceAnswers"]
