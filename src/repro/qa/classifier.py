"""Linear SVM: the Liblinear stand-in (Appendix B, classifier training).

L2-regularized hinge-loss linear classifier trained by averaged
stochastic sub-gradient descent over sparse binary features (feature
indices). Deterministic given the seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.rng import DeterministicRng


class LinearSvm:
    """Sparse binary-feature linear SVM."""

    def __init__(
        self,
        dimension: int,
        c: float = 1.0,
        epochs: int = 10,
        seed: int = 21,
    ) -> None:
        self.dimension = dimension
        self.c = c
        self.epochs = epochs
        self._rng = DeterministicRng(seed, namespace="svm")
        self.weights = np.zeros(dimension)
        self.bias = 0.0
        self._trained = False

    def fit(self, examples: Sequence[Tuple[Sequence[int], int]]) -> None:
        """Train on (feature indices, label in {0, 1}) pairs.

        Classes are re-weighted by inverse frequency: answer-candidate
        data is heavily negative-skewed (most candidates are wrong), and
        an unweighted hinge loss collapses to the majority class.
        """
        if not examples:
            raise ValueError("cannot train on an empty example list")
        data = [(list(f), 1 if label else -1) for f, label in examples]
        n = len(data)
        positives = sum(1 for _, label in data if label == 1)
        negatives = n - positives
        pos_weight = (negatives / positives) if positives else 1.0
        pos_weight = min(max(pos_weight, 1.0), 50.0)
        lam = 1.0 / (self.c * n)
        averaged = np.zeros(self.dimension)
        averaged_bias = 0.0
        step = 0
        for epoch in range(self.epochs):
            self._rng.shuffle(data)
            for features, label in data:
                step += 1
                rate = 1.0 / (lam * step)
                margin = label * (self.weights[features].sum() + self.bias)
                # L2 shrinkage.
                self.weights *= 1.0 - rate * lam
                if margin < 1.0:
                    update = rate * label
                    if label == 1:
                        update *= pos_weight
                    self.weights[features] += update
                    self.bias += 0.1 * update
                averaged += self.weights
                averaged_bias += self.bias
        self.weights = averaged / step
        self.bias = averaged_bias / step
        self._trained = True

    def decision(self, features: Sequence[int]) -> float:
        """Signed decision value for one sparse example."""
        return float(self.weights[list(features)].sum() + self.bias)

    def predict(self, features: Sequence[int]) -> int:
        """1 when the decision value is positive, else 0."""
        return int(self.decision(features) > 0.0)

    def accuracy(
        self, examples: Sequence[Tuple[Sequence[int], int]]
    ) -> float:
        """Fraction of examples classified correctly."""
        if not examples:
            return 0.0
        hits = sum(
            1 for features, label in examples
            if self.predict(features) == int(bool(label))
        )
        return hits / len(examples)


__all__ = ["LinearSvm"]
