"""Question/candidate features for the answer classifier (Appendix B).

"The feature set for a pair of a question and its candidate answer then
are all token pairs (x, y) where x is a token occurring with the
question and y is a token occurring with the candidate" — lemmatized
unigrams plus entity names, treated as binary features via stable
hashing.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Sequence, Set

from repro.corpus.statistics import content_tokens
from repro.kb.facts import Fact

FEATURE_DIMENSION = 1 << 16


def question_tokens(question: str) -> List[str]:
    """Lemma-ish unigrams of a question (stopwords removed, lowered)."""
    from repro.nlp.lemma import lemmatize_token

    tokens = content_tokens(question)
    # Question words are informative here, unlike in retrieval.
    lead = question.strip().split()
    out = list(tokens)
    if lead:
        out.append(lead[0].lower().strip("?,"))
    return [lemmatize_token(t, "NN") for t in out]


def candidate_tokens(candidate_display: str, supporting_facts: Iterable[Fact]) -> List[str]:
    """Tokens co-occurring with a candidate in its supporting facts."""
    out: Set[str] = set(content_tokens(candidate_display))
    for fact in supporting_facts:
        out.update(content_tokens(fact.predicate.replace("_", " ")))
        out.update(content_tokens(fact.subject.display))
        for obj in fact.objects:
            out.update(content_tokens(obj.display))
    return sorted(out)


def pair_features(
    q_tokens: Sequence[str], c_tokens: Sequence[str]
) -> List[int]:
    """Hashed binary token-pair features."""
    features: Set[int] = set()
    for x in q_tokens:
        for y in c_tokens:
            key = f"{x}|{y}".encode("utf-8")
            features.add(zlib.crc32(key) % FEATURE_DIMENSION)
    return sorted(features)


def indicator_feature(name: str) -> int:
    """Stable index for a named indicator feature."""
    return zlib.crc32(f"IND|{name}".encode("utf-8")) % FEATURE_DIMENSION


def evidence_features(
    question: str, candidate_facts: Iterable[Fact]
) -> List[int]:
    """Question-evidence indicators for one candidate.

    Two binary features in the Appendix-B spirit: whether the candidate
    co-occurs in a KB fact with one of the question's entities, and
    whether one of those facts' predicates shares a content word with
    the question. With few training questions these carry most of the
    learnable signal.
    """
    from repro.nlp.lemma import lemmatize_token

    question_lower = question.lower()
    q_verbs = {
        lemmatize_token(token, "VB")
        for token in content_tokens(question)
    }
    features: Set[int] = set()
    for fact in candidate_facts:
        fact_names = [fact.subject.display.lower()] + [
            o.display.lower() for o in fact.objects
        ]
        with_question_entity = any(
            len(name) > 3 and name in question_lower for name in fact_names
        )
        predicate_tokens = {
            lemmatize_token(t, "VB")
            for t in fact.predicate.replace("_", " ").split()
        }
        relation_match = bool(q_verbs & predicate_tokens)
        if with_question_entity:
            features.add(indicator_feature("fact_with_question_entity"))
        if relation_match:
            features.add(indicator_feature("predicate_matches_question"))
        if with_question_entity and relation_match:
            features.add(indicator_feature("entity_and_relation"))
    return sorted(features)


__all__ = [
    "FEATURE_DIMENSION",
    "candidate_tokens",
    "pair_features",
    "question_tokens",
]
