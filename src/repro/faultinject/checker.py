"""Offline invariant checking over recorded serving histories.

The replay half of the harness (recording lives in
:mod:`repro.faultinject.history`): a
:class:`MonotonicFreshnessChecker` walks a recorded event log in its
global sequence order and reports every :class:`Violation` of the
serving tier's freshness/integrity contract:

- **monotonic freshness** (``stale_serve``) — once a client has seen a
  KB built under corpus version V, it must never again be handed one
  built under a version older than V. The version *order* is not
  lexicographic: it is derived from the refresh events in the history
  itself (each refresh edge ``previous → new`` appends the new version
  to the chain), mirroring how deployments actually advance. This is
  the Polynesia-motivated invariant from ROADMAP item 5.
- **known versions** (``unknown_version``) — every served
  ``corpus_version`` must be one the history has heard of (the initial
  version or one introduced by a refresh). A serve from a version the
  deployment never ran is a torn or foreign entry.
- **content integrity** (``divergent_content``) — two serves of the
  same ``(request_key, corpus_version, entity-versions)`` must carry
  the same content digest, whatever tier they came from. A divergence
  means the store or cache handed out a torn / partially-rebalanced /
  stale-after-ingest entry. Including the serve's stamped per-entity
  version slice in the key is what catches entity-granular staleness
  at the hit tiers: a stale hit stamps the *current* vector over *old*
  content, so it lands in the same bucket as a fresh rebuild and the
  digests diverge.
- **per-entity monotonic freshness** (``stale_entity_serve``) — once a
  client has observed entity E at version v (via a query serve *or* a
  subscription delta delivery), no later serve or delivery to that
  client may stamp E at a version older than v. This is the
  entity-granular analogue of ``stale_serve`` for the live-ingest
  path, where the global ``corpus_version`` stays fixed and only the
  per-entity version vector advances. One carve-out: delta delivery is
  at-least-once until acked, so a *replay* — re-delivering the same
  (entity, version) this client already received as a delivery — is
  the documented crash-recovery behaviour, not staleness. A delivery
  carrying a below-watermark version the client never received before
  is still a violation (per-entity versions are bumped monotonically,
  so an (entity, version) pair identifies exactly one delta slice).

The checker is pure (events in, violations out) and deterministic, so
the seeded-replay tests can pin its verdicts bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faultinject.history import (
    EVENT_DELIVERY,
    EVENT_REFRESH,
    EVENT_SERVE,
    HistoryEvent,
)

#: Violation kinds the checker can report.
VIOLATION_STALE_SERVE = "stale_serve"
VIOLATION_UNKNOWN_VERSION = "unknown_version"
VIOLATION_DIVERGENT_CONTENT = "divergent_content"
VIOLATION_STALE_ENTITY_SERVE = "stale_entity_serve"


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the event (``seq``) where the
    history first went wrong."""

    kind: str
    seq: int
    client_id: str
    request_key: str
    detail: str

    def describe(self) -> str:
        """One line for failure reports."""
        where = f"client={self.client_id!r}" if self.client_id else "history"
        return f"[{self.kind}] seq={self.seq} {where}: {self.detail}"


class MonotonicFreshnessChecker:
    """Replays a history and collects freshness/integrity violations.

    Args:
        version_order: Optional explicit corpus-version order, oldest
            first. When omitted (the common case) the order is derived
            from the history's refresh events: the first version ever
            mentioned is rank 0 and every refresh appends its new
            version. Pass it explicitly when checking a partial history
            that contains serves but not the refreshes that created
            their versions.
    """

    def __init__(self, version_order: Optional[Sequence[str]] = None) -> None:
        self._explicit_order = tuple(version_order) if version_order else None

    def _derive_ranks(
        self, events: Sequence[HistoryEvent]
    ) -> Dict[str, int]:
        """Corpus-version → rank, oldest = 0."""
        if self._explicit_order is not None:
            return {v: i for i, v in enumerate(self._explicit_order)}
        ranks: Dict[str, int] = {}

        def admit(version: str) -> None:
            if version and version not in ranks:
                ranks[version] = len(ranks)

        for event in events:
            if event.kind == EVENT_REFRESH:
                # The superseded version precedes the new one; admitting
                # it first keeps the rank order right even when the
                # initial version appears nowhere else.
                admit(event.previous_version)
                admit(event.corpus_version)
        if not ranks:
            # No refresh ever happened: every served version is rank 0
            # (a single-version history can only violate integrity).
            for event in events:
                if event.kind == EVENT_SERVE:
                    admit(event.corpus_version)
                    break
        return ranks

    def check(self, events: Iterable[HistoryEvent]) -> List[Violation]:
        """All violations in ``events``, in the order they occur.

        The event list is replayed once in sequence order; state is
        per-client high-water marks plus a per-``(request_key,
        version)`` digest table, so the pass is O(events).
        """
        ordered = sorted(events, key=lambda e: e.seq)
        ranks = self._derive_ranks(ordered)
        violations: List[Violation] = []
        # client_id -> (rank, version) high-water mark.
        seen: Dict[str, Tuple[int, str]] = {}
        # (request_key, corpus_version, entity-versions token) ->
        # (digest, seq of first serve). The entity slice is part of the
        # key so a stale hit stamping the current vector over old
        # content collides with the fresh rebuild and diverges.
        digests: Dict[Tuple[str, str, tuple], Tuple[str, int]] = {}
        # (client_id, entity) -> version high-water mark across both
        # query serves and subscription delta deliveries.
        entity_seen: Dict[Tuple[str, str], int] = {}
        # (client_id, entity, version) triples this client already
        # received as a *delivery* — the at-least-once replay set.
        delivered: set = set()

        for event in ordered:
            if event.kind == EVENT_DELIVERY:
                violations.extend(
                    self._check_entity_marks(event, entity_seen, delivered)
                )
                continue
            if event.kind != EVENT_SERVE:
                continue
            violations.extend(
                self._check_entity_marks(event, entity_seen, delivered)
            )
            rank = ranks.get(event.corpus_version)
            if rank is None:
                violations.append(
                    Violation(
                        kind=VIOLATION_UNKNOWN_VERSION,
                        seq=event.seq,
                        client_id=event.client_id,
                        request_key=event.request_key,
                        detail=(
                            f"served corpus_version "
                            f"{event.corpus_version!r} was never introduced "
                            f"by this deployment (known: {sorted(ranks)})"
                        ),
                    )
                )
                continue
            mark = seen.get(event.client_id)
            if mark is not None and rank < mark[0]:
                violations.append(
                    Violation(
                        kind=VIOLATION_STALE_SERVE,
                        seq=event.seq,
                        client_id=event.client_id,
                        request_key=event.request_key,
                        detail=(
                            f"served {event.corpus_version!r} "
                            f"(from {event.served_from or '?'}) after the "
                            f"client already observed newer {mark[1]!r}"
                        ),
                    )
                )
            if mark is None or rank > mark[0]:
                seen[event.client_id] = (rank, event.corpus_version)
            if event.digest:
                key = (
                    event.request_key,
                    event.corpus_version,
                    tuple(event.entity_versions),
                )
                prior = digests.get(key)
                if prior is None:
                    digests[key] = (event.digest, event.seq)
                elif prior[0] != event.digest:
                    violations.append(
                        Violation(
                            kind=VIOLATION_DIVERGENT_CONTENT,
                            seq=event.seq,
                            client_id=event.client_id,
                            request_key=event.request_key,
                            detail=(
                                f"digest {event.digest} for "
                                f"{event.request_key!r}@"
                                f"{event.corpus_version!r} "
                                f"(entities {dict(event.entity_versions)}) "
                                f"differs from {prior[0]} first served at "
                                f"seq {prior[1]} — torn, "
                                "partially-rebalanced, or stale-after-"
                                "ingest entry"
                            ),
                        )
                    )
        return violations

    @staticmethod
    def _check_entity_marks(
        event: HistoryEvent,
        entity_seen: Dict[Tuple[str, str], int],
        delivered: set,
    ) -> List[Violation]:
        """Per-(client, entity) monotonicity for one serve or delivery
        event; advances the high-water marks (and, for deliveries, the
        replay set) in place. A below-watermark *delivery* is exempt
        when the client already received that exact (entity, version)
        as a delivery — the at-least-once redelivery of an unacked
        delta; serves get no such exemption."""
        violations: List[Violation] = []
        is_delivery = event.kind == EVENT_DELIVERY
        for entity, version in event.entity_versions:
            mark_key = (event.client_id, entity)
            mark = entity_seen.get(mark_key, 0)
            replay = (
                is_delivery
                and (event.client_id, entity, version) in delivered
            )
            if is_delivery:
                delivered.add((event.client_id, entity, version))
            if version < mark and not replay:
                violations.append(
                    Violation(
                        kind=VIOLATION_STALE_ENTITY_SERVE,
                        seq=event.seq,
                        client_id=event.client_id,
                        request_key=event.request_key
                        or event.subscription_id,
                        detail=(
                            f"{event.kind} stamped entity {entity!r} at "
                            f"version {version} after the client already "
                            f"observed version {mark}"
                        ),
                    )
                )
            elif version > mark:
                entity_seen[mark_key] = version
        return violations


__all__ = [
    "MonotonicFreshnessChecker",
    "VIOLATION_DIVERGENT_CONTENT",
    "VIOLATION_STALE_ENTITY_SERVE",
    "VIOLATION_STALE_SERVE",
    "VIOLATION_UNKNOWN_VERSION",
    "Violation",
]
