"""Recording concurrent serving histories for offline checking.

AWDIT-style consistency checking splits into two cheap halves: *record*
what every client actually observed while the system runs (with faults
injected), then *replay* the recorded history against an invariant
checker offline. This module is the recording half.

A :class:`HistoryRecorder` is attached to a deployment
(:meth:`repro.service.service.QKBflyService.attach_history`); the
front ends then log one :class:`HistoryEvent` per result envelope
handed to a client — the request key, the ``corpus_version`` the
content was built under, the tier it was served from, and a content
digest — plus one event per corpus refresh (old → new version, which
is what gives the checker its version *order*) and optional ingest
events from harness scenarios that write to the store directly.

Recording is append-only under one lock (a global sequence number is
the event order the checker replays), and it is entirely opt-in: with
no recorder attached the serving paths pay a single ``is None`` check.
The digest hashes the served KB's wire form, so two serves of the same
key+version can be compared bit-for-bit — the invariant a torn or
partially-rebalanced entry would break.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Event kinds a history may contain.
EVENT_SERVE = "serve"
EVENT_REFRESH = "refresh"
EVENT_INGEST = "ingest"
EVENT_DELIVERY = "delivery"


def kb_digest(kb: Any) -> str:
    """Stable 16-hex content digest of a served KB (its sorted JSON
    wire form), comparable across processes and runs."""
    payload = json.dumps(kb.to_dict(), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class HistoryEvent:
    """One observation in a recorded serving history.

    ``seq`` is the recorder-assigned global order (the lock that
    appends also numbers, so it is gap-free and total); ``ts`` is
    wall-clock for humans, never used for ordering.
    """

    seq: int
    kind: str
    ts: float
    client_id: str = ""
    request_key: str = ""
    corpus_version: str = ""
    served_from: str = ""
    front_end: str = ""
    digest: str = ""
    fact_count: int = 0
    # refresh events only: the version being superseded.
    previous_version: str = ""
    # live-ingest / delivery events: the document and the entity slice.
    doc_id: str = ""
    source: str = ""
    entities: tuple = ()
    #: Per-entity versions: on ingest events the *new* versions the
    #: ingest established; on serve events the query's entity slice at
    #: serve time; on delivery events the delta's watched slice.
    entity_versions: tuple = ()
    # delivery events only: which subscription observed the delta.
    subscription_id: str = ""

    def to_dict(self) -> Dict:
        """JSON wire form (failure reports, offline analysis)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "ts": self.ts,
            "client_id": self.client_id,
            "request_key": self.request_key,
            "corpus_version": self.corpus_version,
            "served_from": self.served_from,
            "front_end": self.front_end,
            "digest": self.digest,
            "fact_count": self.fact_count,
            "previous_version": self.previous_version,
            "doc_id": self.doc_id,
            "source": self.source,
            "entities": list(self.entities),
            "entity_versions": dict(self.entity_versions),
            "subscription_id": self.subscription_id,
        }

    def versions(self) -> Dict[str, int]:
        """The event's entity→version slice as a plain dict."""
        return dict(self.entity_versions)


@dataclass
class HistoryRecorder:
    """Thread-safe append-only event log for one deployment.

    One recorder may serve several front ends at once (they share the
    sync service it is attached to); every mutation happens under one
    lock, so the global ``seq`` is a total order consistent with each
    thread's own program order — exactly what the monotonicity checker
    needs.
    """

    events: List[HistoryEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_serve(self, result: Any, front_end: str) -> None:
        """Log one successful result envelope handed to a client.

        ``result`` is duck-typed as a
        :class:`~repro.service.api.QueryResult` (this module must not
        import the serving layer — the serving layer imports *it*).
        Envelopes without a KB (error slots) are ignored: the checker
        reasons about what clients *observed*, and an error observes
        nothing.
        """
        kb = getattr(result, "kb", None)
        if kb is None:
            return
        digest = kb_digest(kb)
        stamped = getattr(result, "entity_versions", None) or {}
        with self._lock:
            self.events.append(
                HistoryEvent(
                    seq=len(self.events),
                    kind=EVENT_SERVE,
                    ts=time.time(),
                    client_id=result.client_id,
                    request_key=result.request_key,
                    corpus_version=result.corpus_version,
                    served_from=result.served_from or "",
                    front_end=front_end,
                    digest=digest,
                    fact_count=len(kb.facts),
                    entity_versions=tuple(sorted(stamped.items())),
                )
            )

    def record_refresh(self, previous_version: str, version: str) -> None:
        """Log one corpus refresh; the old → new edge defines the
        version order the checker validates serves against."""
        with self._lock:
            self.events.append(
                HistoryEvent(
                    seq=len(self.events),
                    kind=EVENT_REFRESH,
                    ts=time.time(),
                    corpus_version=version,
                    previous_version=previous_version,
                )
            )

    def record_ingest(
        self,
        request_key: str = "",
        corpus_version: str = "",
        client_id: str = "",
        doc_id: str = "",
        source: str = "",
        entities: Optional[List[str]] = None,
        entity_versions: Optional[Dict[str, int]] = None,
        updated: bool = False,
    ) -> None:
        """Log one corpus write.

        Two callers share this event kind: harness scenarios that
        write to the store directly (``request_key`` form, the
        original contract) and the live-ingest path, whose
        acknowledgment carries the touched entities and the *new*
        per-entity versions — the edges the checker's per-entity
        freshness rules are built from.
        """
        del updated  # recorded implicitly: a later event for the same doc
        with self._lock:
            self.events.append(
                HistoryEvent(
                    seq=len(self.events),
                    kind=EVENT_INGEST,
                    ts=time.time(),
                    client_id=client_id,
                    request_key=request_key,
                    corpus_version=corpus_version,
                    doc_id=doc_id,
                    source=source,
                    entities=tuple(entities or ()),
                    entity_versions=tuple(
                        sorted((entity_versions or {}).items())
                    ),
                )
            )

    def record_delivery(
        self,
        subscription_id: str,
        client_id: str,
        doc_id: str,
        entities: Optional[List[str]] = None,
        entity_versions: Optional[Dict[str, int]] = None,
        corpus_version: str = "",
    ) -> None:
        """Log one KB delta handed to a subscriber (long-poll return or
        acknowledged webhook POST) — the subscriber-side observation
        the per-entity monotonicity rules check."""
        with self._lock:
            self.events.append(
                HistoryEvent(
                    seq=len(self.events),
                    kind=EVENT_DELIVERY,
                    ts=time.time(),
                    client_id=client_id,
                    corpus_version=corpus_version,
                    doc_id=doc_id,
                    subscription_id=subscription_id,
                    entities=tuple(entities or ()),
                    entity_versions=tuple(
                        sorted((entity_versions or {}).items())
                    ),
                )
            )

    def snapshot(self) -> List[HistoryEvent]:
        """A point-in-time copy of the event log (safe to iterate while
        serving continues)."""
        with self._lock:
            return list(self.events)

    def clear(self) -> None:
        """Drop all events (sequence numbers restart)."""
        with self._lock:
            self.events.clear()

    def stats(self) -> Dict[str, int]:
        """Event counts by kind (monitoring / quick assertions)."""
        with self._lock:
            out: Dict[str, int] = {"events": len(self.events)}
            for event in self.events:
                out[event.kind] = out.get(event.kind, 0) + 1
            return out


__all__ = [
    "EVENT_DELIVERY",
    "EVENT_INGEST",
    "EVENT_REFRESH",
    "EVENT_SERVE",
    "HistoryEvent",
    "HistoryRecorder",
    "kb_digest",
]
