"""Fault-injection scenario for the live-ingest path.

The sibling of :mod:`repro.faultinject.harness`, aimed at the two
invariants the ingest subsystem promises (docs/INGEST.md):

1. **acked ⇒ durable** — once an ingest is acknowledged (recorded as
   an ``EVENT_INGEST`` in the history), the document revision is in
   the live search engine, whatever crashed afterwards;
2. **per-entity monotone freshness** — no client or subscriber ever
   observes a watched entity at a version older than one it already
   saw, and no warm entry predating the version vector is ever served
   (the extended :class:`~repro.faultinject.checker.
   MonotonicFreshnessChecker` rules).

Like the base harness this module is not imported by the package
``__init__`` — it pulls in the whole serving stack. Unlike the base
harness the scenario is **fully sequential**: ingests, serves and
long-polls interleave on one thread in a seed-independent order, and
only the fault schedule varies. That makes ``same seed ⇒ same
verdict`` exact rather than statistical, which is what lets the CI
sweep replay a failing seed bit-for-bit.

The schedule draws from :data:`INGEST_POINTS` — the three ingest
points (``ingest.commit``, ``ingest.invalidate``,
``subscribe.deliver``) plus the store-write and index points an ingest
or a serve crosses. Crashed ingests are retried (the retry first runs
:meth:`~repro.service.ingest.pipeline.IngestPipeline.recover`, the
same loop a real feeder runs), so every document eventually commits
and the end-state checks are exact:

- every acknowledged ingest's final revision is present in the engine;
- every surviving store entry loads and is re-recorded as a synthetic
  serve stamped with the *current* version slice, so a stale entry
  that dodged invalidation collides with a fresh post-ingest serve in
  the checker's digest buckets (divergent content);
- a delta acknowledged via the long-poll cursor is never delivered
  again (crashed polls may re-deliver *unacked* deltas — that is the
  at-least-once contract, and the checker accepts the equal-version
  replay).
"""

from __future__ import annotations

import shutil
import tempfile
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.faultinject.checker import MonotonicFreshnessChecker
from repro.faultinject.harness import ScenarioReport, _bundle, _fresh_session
from repro.faultinject.history import EVENT_INGEST, HistoryRecorder
from repro.faultinject.points import SimulatedCrash, inject
from repro.faultinject.schedule import FaultSchedule

#: The catalog slice ingest schedules draw from: the three ingest
#: points plus every store/index point an ingest or serve crosses.
#: ``service.close`` is delay-only and keeps teardown exercised.
INGEST_POINTS = (
    "ingest.commit",
    "ingest.invalidate",
    "subscribe.deliver",
    "kb_store.save.mid_entry",
    "kb_store.save.pre_commit",
    "search.index.update",
    "service.close",
)


def schedule_for_seed(seed: int) -> FaultSchedule:
    """The deterministic ingest schedule for ``seed`` (pure function:
    replaying a seed regenerates the identical schedule)."""
    return FaultSchedule.generate(seed, points=INGEST_POINTS)


def run_scenario(seed: int) -> ScenarioReport:
    """Generate ``seed``'s schedule and run the scenario under it."""
    return run_schedule(schedule_for_seed(seed))


def run_schedule(schedule: FaultSchedule) -> ScenarioReport:
    """Run the fixed ingest scenario with ``schedule`` armed; injected
    faults are outcomes, not failures — see :class:`~repro.faultinject.
    harness.ScenarioReport`."""
    report = ScenarioReport(schedule=schedule)
    tmpdir = tempfile.mkdtemp(prefix="faultinject-ingest-")
    try:
        with inject(schedule) as injector:
            try:
                _run_phases(schedule, report, tmpdir)
            except Exception as error:  # pragma: no cover - harness bug
                report.errors.append(
                    f"unexpected {type(error).__name__}: {error}"
                )
            report.fired = list(injector.fired)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return report


class _VerifyServe:
    """Duck-typed result envelope for the verify phase's synthetic
    store reads (shape of :class:`~repro.service.api.QueryResult` as
    read by ``HistoryRecorder.record_serve``)."""

    def __init__(
        self,
        client_id: str,
        request_key: str,
        corpus_version: str,
        kb: Any,
        entity_versions: Optional[Dict[str, int]],
    ) -> None:
        self.client_id = client_id
        self.request_key = request_key
        self.corpus_version = corpus_version
        self.served_from = "store"
        self.kb = kb
        self.entity_versions = entity_versions


def _run_phases(
    schedule: FaultSchedule, report: ScenarioReport, tmpdir: str
) -> None:
    import os

    from repro.service.api import (
        IngestRequest,
        QueryRequest,
        ServiceError,
        WatchRequest,
    )
    from repro.service.service import QKBflyService, ServiceConfig

    _, _, queries = _bundle()
    counts = report.counts
    counts.update(
        {
            "serves": 0,
            "ingests": 0,
            "polls": 0,
            "deltas": 0,
            "crashes": 0,
            "service_errors": 0,
            "recovered": 0,
            "store_reads": 0,
        }
    )
    # Each armed action fires at most once, so this many attempts
    # always push a retried operation through.
    attempts = len(schedule.actions) + 1
    recorder = HistoryRecorder()

    service = QKBflyService(
        _fresh_session(),
        service_config=ServiceConfig(
            max_workers=2,
            num_documents=1,
            store_path=os.path.join(tmpdir, "store"),
            store_shards=2,
        ),
    )
    service.attach_history(recorder)

    def guarded(fn, *args, **kwargs) -> Optional[Any]:
        """Run one operation; crashes and typed errors are outcomes."""
        try:
            return fn(*args, **kwargs)
        except SimulatedCrash:
            counts["crashes"] += 1
        except ServiceError:
            counts["service_errors"] += 1
        return None

    def serve(client: str, query: str) -> None:
        result = guarded(
            service.serve, QueryRequest(query=query, client_id=client)
        )
        if result is not None:
            counts["serves"] += 1

    def ingest(doc_id: str, text: str) -> Optional[Any]:
        """Feed one document, retrying crashed attempts through
        recovery — the loop a real feeder runs. Returns the acked
        result, or None when every attempt crashed (all armed)."""
        request = IngestRequest(doc_id=doc_id, text=text, client_id="feed")
        for _ in range(attempts):
            result = guarded(service.ingest, request)
            if result is not None:
                counts["ingests"] += 1
                return result
            if guarded(service.ingest_pipeline.recover):
                counts["recovered"] += 1
        return None

    # The long-poll subscriber and its exactly-once-after-ack ledger.
    watched = (queries[0], queries[1])
    observed_ids: Set[int] = set()
    cursor = {"acked": 0}

    def poll(ack: bool) -> None:
        """One long-poll turn; ``ack`` advances the cursor past what
        this turn delivered. A delivered-but-unacked delta may appear
        again (at-least-once); a delta at or below the acked cursor
        never may — that is the double-delivery check."""
        page = guarded(
            service.poll_deltas,
            subscription["subscription_id"],
            after=cursor["acked"],
            timeout=0.0,
        )
        if page is None:
            return
        counts["polls"] += 1
        for delta in page["deltas"]:
            delta_id = delta["delta_id"]
            if delta_id <= cursor["acked"]:
                report.errors.append(
                    f"delta {delta_id} re-delivered after the cursor "
                    f"acknowledged {cursor['acked']}"
                )
            observed_ids.add(delta_id)
            counts["deltas"] += 1
        if ack and page["deltas"]:
            cursor["acked"] = max(d["delta_id"] for d in page["deltas"])

    expected_docs: Dict[str, str] = {}
    expected_deltas = 0
    try:
        # Phase 1: warm the tiers — cold + warm serves for two clients.
        for client in ("alice", "bob"):
            for query in queries[:3]:
                serve(client, query)

        subscription = service.watch(
            WatchRequest(entities=list(watched), client_id="carol")
        )

        # Phase 2: interleave ingests (including an update of live-1)
        # with serves of touched and untouched queries and cursor-acked
        # long-polls. Sequential by design: the order is seed-independent
        # so the only varying input is the fault schedule.
        feed = [
            ("live-1", f"{queries[0]} announced a merger with {queries[1]}."),
            ("live-2", f"{queries[2]} opened a research lab in {queries[0]}."),
            (
                "live-1",
                f"{queries[0]} cancelled the merger after talks with "
                f"{queries[1]} collapsed.",
            ),
        ]
        for round_index, (doc_id, text) in enumerate(feed):
            result = ingest(doc_id, text)
            if result is not None:
                expected_docs[doc_id] = text
                expected_deltas += result.subscribers
            serve("alice", queries[0])
            serve("bob", queries[3])
            poll(ack=(round_index != 1))  # round 1 leaves its delta unacked

        # Drain the subscription: retried until a poll survives, then
        # acked, then polled once more — which must return nothing new.
        for _ in range(attempts):
            poll(ack=True)
        final = guarded(
            service.poll_deltas,
            subscription["subscription_id"],
            after=cursor["acked"],
            timeout=0.0,
        )
        if final is not None and final["deltas"]:
            report.errors.append(
                f"{len(final['deltas'])} deltas still pending after the "
                f"cursor acknowledged {cursor['acked']}"
            )
        if len(observed_ids) < expected_deltas:
            report.errors.append(
                f"subscriber observed {len(observed_ids)} distinct deltas "
                f"for {expected_deltas} acked matching ingests"
            )

        # Phase 3: verify acked ⇒ durable — every acknowledged ingest's
        # final revision must be live in the search engine.
        acked_ids = {
            event.doc_id
            for event in recorder.snapshot()
            if event.kind == EVENT_INGEST and event.doc_id
        }
        engine = service.session.search_engine
        for doc_id, text in expected_docs.items():
            if doc_id not in acked_ids:
                report.errors.append(
                    f"ingest of {doc_id!r} returned but was never recorded"
                )
            document = engine.news_docs.get(doc_id)
            if document is None:
                report.errors.append(
                    f"acked ingest {doc_id!r} lost: not in the live engine"
                )
            elif document.text != text:
                report.errors.append(
                    f"acked ingest {doc_id!r} lost: engine holds a stale "
                    "revision"
                )

        # Phase 4: verify the store — every surviving entry loads, sits
        # on the unrotated corpus version, and is re-recorded as a
        # synthetic serve stamped with the current version slice so the
        # checker's digest rule catches any entry that predates the
        # version vector.
        corpus_version = service.session.corpus_version
        for sig in service.store.signatures():
            kb = service.store.load(
                sig.query,
                corpus_version=sig.corpus_version,
                mode=sig.mode,
                algorithm=sig.algorithm,
                source=sig.source,
                num_documents=sig.num_documents,
                config_digest=sig.config_digest,
            )
            if kb is None:
                report.errors.append(
                    f"store entry {sig.query!r} listed but unreadable"
                )
                continue
            counts["store_reads"] += 1
            if sig.corpus_version != corpus_version:
                report.errors.append(
                    f"entry {sig.query!r}@{sig.corpus_version!r} does not "
                    f"match the (unrotated) corpus version "
                    f"{corpus_version!r}"
                )
            versions = service.entity_versions.versions_for_query(sig.query)
            key = service.request_key(
                sig.query, sig.source, sig.num_documents
            )
            recorder.record_serve(
                _VerifyServe(
                    client_id="verifier",
                    request_key=key.signature(),
                    corpus_version=sig.corpus_version,
                    kb=kb,
                    entity_versions=versions or None,
                ),
                front_end="verify",
            )
    finally:
        service.close()

    events = recorder.snapshot()
    counts["events"] = len(events)
    report.violations = MonotonicFreshnessChecker().check(events)


def run_schedules(
    seeds: List[int],
) -> Tuple[List[ScenarioReport], List[int]]:
    """Run many seeded scenarios; returns (reports, failing seeds)."""
    reports: List[ScenarioReport] = []
    failing: List[int] = []
    for seed in seeds:
        report = run_scenario(seed)
        reports.append(report)
        if not report.passed:
            failing.append(seed)
    return reports, failing


__all__ = [
    "INGEST_POINTS",
    "run_scenario",
    "run_schedule",
    "run_schedules",
    "schedule_for_seed",
]
