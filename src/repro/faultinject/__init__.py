"""Deterministic fault injection + history checking for the serving tier.

Four import-light modules (stdlib only — the serving layer imports
*them*, so they must never import it back):

- :mod:`repro.faultinject.points` — the injection-point catalog,
  :func:`~repro.faultinject.points.fault_point` hooks (no-ops unless a
  schedule is armed), and :class:`~repro.faultinject.points.SimulatedCrash`;
- :mod:`repro.faultinject.schedule` — seeded, replayable
  :class:`~repro.faultinject.schedule.FaultSchedule` generation and
  delta-debugging :func:`~repro.faultinject.schedule.minimize`;
- :mod:`repro.faultinject.history` — per-client
  :class:`~repro.faultinject.history.HistoryRecorder` event logs;
- :mod:`repro.faultinject.checker` — the offline
  :class:`~repro.faultinject.checker.MonotonicFreshnessChecker`.

The end-to-end scenario runner lives in
``repro.faultinject.harness`` and is *not* imported here: it pulls in
the whole core + serving stack, which production call sites of
``fault_point`` must not do transitively.
"""

from repro.faultinject.checker import (
    MonotonicFreshnessChecker,
    Violation,
)
from repro.faultinject.history import (
    HistoryEvent,
    HistoryRecorder,
    kb_digest,
)
from repro.faultinject.points import (
    CATALOG,
    FaultInjector,
    SimulatedCrash,
    fault_point,
    inject,
)
from repro.faultinject.schedule import (
    FaultAction,
    FaultSchedule,
    minimize,
)

__all__ = [
    "CATALOG",
    "FaultAction",
    "FaultInjector",
    "FaultSchedule",
    "HistoryEvent",
    "HistoryRecorder",
    "MonotonicFreshnessChecker",
    "SimulatedCrash",
    "Violation",
    "fault_point",
    "inject",
    "kb_digest",
    "minimize",
]
