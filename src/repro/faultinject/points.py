"""Deterministic fault-injection points for the serving tier.

The serving layer's crash-safety claims (atomic saves, recoverable
rebalance swaps, typed failures from killed workers, race-free pool
resizes) were asserted in docstrings; this module makes them
*executable*. Production modules call :func:`fault_point` at the
crash-prone spots named in :data:`CATALOG`; with no schedule armed the
call is a single module-global ``None`` check — nothing is allocated,
no lock is taken — so the hooks are effectively compiled out of normal
serving (the bench gates hold with the hooks in place). Arming a
:class:`~repro.faultinject.schedule.FaultSchedule` via :func:`inject`
turns selected hits of selected points into deterministic faults:

- ``crash`` — raise :class:`SimulatedCrash` at the point. The crash is
  a ``BaseException`` (like ``KeyboardInterrupt``), so any ``except
  Exception`` cleanup handler that would swallow a real interrupt is
  exposed instead of silently passing the test;
- ``delay`` — sleep a few milliseconds at the point, deterministically
  widening a race window (resize-vs-serve, close-vs-dispatch);
- ``kill_worker`` — SIGKILL one live worker of the process pool passed
  in the point's context (a no-op on the thread tier), so mid-flight
  worker death is exercised for real, not mocked;
- ``drop_conn`` — invoke the ``drop`` callable in the point's context
  (the fabric client passes one that closes its pooled socket), so a
  TCP connection dies mid-request exactly where a peer reset would
  land — the retry/fallback path is exercised against a real dead
  socket, not a mock.

One injector is active per process at a time (:data:`ACTIVE`); the
hit counting inside it is lock-protected, so concurrent serving
threads reaching the same point agree on who fires. Every fired action
is logged on the injector for the harness's failure reports.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Fault kinds an injection point may support.
KIND_CRASH = "crash"
KIND_DELAY = "delay"
KIND_KILL_WORKER = "kill_worker"
KIND_DROP_CONN = "drop_conn"
KINDS = (KIND_CRASH, KIND_DELAY, KIND_KILL_WORKER, KIND_DROP_CONN)

#: The injection-point catalog: every point threaded through the
#: serving tier, mapped to the fault kinds that make sense there.
#: Schedules are generated against this catalog (unknown points or
#: unsupported kinds are rejected when a schedule is armed), and
#: ``docs/TESTING.md`` documents each entry.
CATALOG: Dict[str, Tuple[str, ...]] = {
    # KbStore._save_locked: after the kb_entries row, before any fact
    # rows — a torn write that must roll back atomically.
    "kb_store.save.mid_entry": (KIND_CRASH, KIND_DELAY),
    # KbStore._save_locked: all rows written, commit not yet issued.
    "kb_store.save.pre_commit": (KIND_CRASH, KIND_DELAY),
    # KbStore.compact: TTL deletes done, size deletes/commit not yet.
    "kb_store.compact.mid": (KIND_CRASH, KIND_DELAY),
    # ShardedKbStore.compact: between per-shard compactions.
    "sharding.compact.shard": (KIND_CRASH, KIND_DELAY),
    # ShardedKbStore.rebalance: staging copy complete, swap not begun.
    "sharding.rebalance.staged": (KIND_CRASH, KIND_DELAY),
    # ShardedKbStore.rebalance: inside the swap window — the original
    # directory is retired, the staging copy not yet promoted.
    "sharding.rebalance.mid_swap": (KIND_CRASH, KIND_DELAY),
    # ShardedKbStore.rebalance: swap done, retired copy not reclaimed.
    "sharding.rebalance.pre_reclaim": (KIND_CRASH, KIND_DELAY),
    # ProcessBatchExecutor.submit (parent side, before dispatch): the
    # context carries the executor so kill_worker can SIGKILL a live
    # pool worker mid-deployment.
    "process_executor.submit": (KIND_KILL_WORKER, KIND_DELAY),
    # QKBflyService._switch_executor: decision taken, swap/resize not
    # yet applied (under the autoscale lock).
    "service.switch_executor": (KIND_CRASH, KIND_DELAY),
    # QKBflyService.close: marked closed, pools not yet shut down.
    "service.close": (KIND_DELAY,),
    # AsyncQKBflyService._blocking_serve: dispatch thread about to
    # submit to the shared executor.
    "async_service.dispatch": (KIND_CRASH, KIND_DELAY),
    # ShardServer request dispatch (server side, request decoded but
    # not yet executed): crash kills the serving connection without a
    # reply — a shard-server crash mid-op as seen from the client.
    "fabric.server.handle": (KIND_CRASH, KIND_DELAY),
    # RemoteKbStore request (client side, socket checked out, request
    # not yet sent): drop_conn closes the pooled socket under the
    # request; delay models a slow shard/replica.
    "fabric.remote.request": (KIND_DROP_CONN, KIND_DELAY),
    # Replicator: one queued write about to propagate to one replica.
    # crash drops the propagation (the replica stays behind until the
    # next write or resync), delay widens the replication lag window.
    "fabric.replicate.entry": (KIND_CRASH, KIND_DELAY),
    # ShardedKbStore.online_rebalance: mover about to copy one entry
    # into its target shard (the double-write window is open).
    "sharding.online_rebalance.copy": (KIND_CRASH, KIND_DELAY),
    # ShardedKbStore.online_rebalance: full copy pass done, cutover
    # (routing swap + manifest rewrite) not yet applied.
    "sharding.online_rebalance.cutover": (KIND_CRASH, KIND_DELAY),
    # KbStore._save_locked, inside the save transaction, immediately
    # before the search-index rows for the entry are written — a crash
    # here must roll the entry and its index back together.
    "search.index.update": (KIND_CRASH, KIND_DELAY),
    # KbStore search read path, before the shard SQL executes — models
    # a shard dying or stalling mid-paginated-walk.
    "search.read.page": (KIND_CRASH, KIND_DELAY),
    # IngestPipeline.ingest: document processed and touched entities
    # computed, but nothing committed yet — a crash here must leave the
    # search engine, version vector, caches, and FTS5 index untouched.
    "ingest.commit": (KIND_CRASH, KIND_DELAY),
    # IngestPipeline.ingest: engine swapped and versions bumped, the
    # selective invalidation fan-out (cache/store/stage) in flight —
    # the ingest must not be acknowledged until this completes.
    "ingest.invalidate": (KIND_CRASH, KIND_DELAY),
    # SubscriptionRegistry delivery: a KB delta about to be pushed to
    # one subscriber (long-poll wakeup or webhook POST). crash before
    # the ack must redeliver; crash after must not double-deliver.
    "subscribe.deliver": (KIND_CRASH, KIND_DELAY),
}

#: Sleep applied by ``delay`` actions: long enough to reorder racing
#: threads, short enough that a schedule full of delays stays fast.
DELAY_SECONDS = 0.005


class SimulatedCrash(BaseException):
    """An injected crash at a fault point.

    Deliberately a ``BaseException`` (the ``KeyboardInterrupt`` /
    ``GeneratorExit`` class of interrupts): crash-cleanup paths that
    only catch ``Exception`` would mask exactly the failures this
    harness exists to find, so the simulated one takes the same route
    a real interrupt would.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"injected crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class FaultInjector:
    """Runtime state of one armed schedule: hit counters + fired log.

    Args:
        schedule: The armed
            :class:`~repro.faultinject.schedule.FaultSchedule`. Its
            actions must name catalog points with supported kinds —
            arming an unknown point would silently never fire, so it
            raises instead.
    """

    def __init__(self, schedule: Any) -> None:
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._pending: Dict[Tuple[str, int], Any] = {}
        for action in schedule.actions:
            kinds = CATALOG.get(action.point)
            if kinds is None:
                raise ValueError(
                    f"unknown fault point {action.point!r} "
                    f"(catalog: {sorted(CATALOG)})"
                )
            if action.kind not in kinds:
                raise ValueError(
                    f"fault point {action.point!r} does not support "
                    f"kind {action.kind!r} (supported: {kinds})"
                )
            self._pending[(action.point, action.hit)] = action
        self.schedule = schedule
        #: Every action that actually fired, in firing order, as
        #: ``(point, hit, kind)`` — the harness prints this alongside a
        #: failing seed so the minimal repro is visible at a glance.
        self.fired: List[Tuple[str, int, str]] = []

    def fire(self, name: str, context: Dict[str, Any]) -> None:
        """Count one arrival at ``name``; execute a scheduled action.

        ``crash`` raises :class:`SimulatedCrash` *from the calling
        thread at the calling site* — exactly where a real interrupt
        would surface. An action fires at most once (its hit number
        matches a single arrival).
        """
        with self._lock:
            hit = self._hits.get(name, 0) + 1
            self._hits[name] = hit
            action = self._pending.pop((name, hit), None)
            if action is not None:
                self.fired.append((name, hit, action.kind))
        if action is None:
            return
        if action.kind == KIND_DELAY:
            time.sleep(action.seconds or DELAY_SECONDS)
        elif action.kind == KIND_KILL_WORKER:
            executor = context.get("executor")
            if executor is not None:
                executor.kill_one_worker()
        elif action.kind == KIND_DROP_CONN:
            drop = context.get("drop")
            if drop is not None:
                drop()
        elif action.kind == KIND_CRASH:
            raise SimulatedCrash(name, hit)

    def hit_counts(self) -> Dict[str, int]:
        """Arrivals per point so far (diagnostics)."""
        with self._lock:
            return dict(self._hits)


#: The armed injector, or None. Production call sites go through
#: :func:`fault_point`, whose disabled path is this one global read.
ACTIVE: Optional[FaultInjector] = None


def fault_point(name: str, **context: Any) -> None:
    """Mark a crash-prone spot in production code.

    Disabled (the default): a no-op after one module-global check.
    Armed: forwards to the active :class:`FaultInjector`, which may
    sleep, kill a pool worker, or raise :class:`SimulatedCrash` here.
    """
    injector = ACTIVE
    if injector is None:
        return
    injector.fire(name, context)


@contextmanager
def inject(schedule: Any) -> Iterator[FaultInjector]:
    """Arm ``schedule`` for the duration of the block.

    Yields the live :class:`FaultInjector` (for its fired log). One
    schedule may be armed at a time — nesting would make hit counts
    ambiguous, so it raises instead.
    """
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a fault schedule is already armed")
    injector = FaultInjector(schedule)
    ACTIVE = injector
    try:
        yield injector
    finally:
        ACTIVE = None


__all__ = [
    "ACTIVE",
    "CATALOG",
    "DELAY_SECONDS",
    "FaultInjector",
    "KINDS",
    "KIND_CRASH",
    "KIND_DELAY",
    "KIND_DROP_CONN",
    "KIND_KILL_WORKER",
    "SimulatedCrash",
    "fault_point",
    "inject",
]
