"""Seeded, replayable fault schedules.

A :class:`FaultSchedule` is the entire randomness of one harness run,
reified: a tuple of :class:`FaultAction` steps ("at the Nth arrival at
point P, do K"), generated from a single integer seed by
:meth:`FaultSchedule.generate`. Determinism is the contract —

- the same seed always generates the same schedule (a
  ``random.Random(seed)`` stream over the sorted catalog, no ambient
  entropy), so a CI failure that prints its seed is reproducible
  bit-for-bit on a laptop;
- a schedule JSON round-trips (:meth:`FaultSchedule.to_dict` /
  :meth:`FaultSchedule.from_dict`), so a *minimized* schedule — see
  :func:`minimize` — can be replayed directly, without its seed;
- :func:`minimize` is greedy delta-debugging: drop one action at a
  time, keep the drop whenever the scenario still fails, so the
  failure report shows the smallest schedule that still reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faultinject.points import CATALOG, KIND_DELAY

#: Generation bounds: how many actions a random schedule carries and
#: how deep into a point's arrival stream an action may trigger.
MAX_ACTIONS = 4
MAX_HIT = 3


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: at the ``hit``-th arrival at ``point``,
    execute ``kind`` (``seconds`` applies to ``delay`` only; 0 uses
    :data:`~repro.faultinject.points.DELAY_SECONDS`)."""

    point: str
    hit: int
    kind: str
    seconds: float = 0.0

    def to_dict(self) -> Dict:
        """JSON wire form (used by failure reports and replays)."""
        out: Dict = {"point": self.point, "hit": self.hit, "kind": self.kind}
        if self.seconds:
            out["seconds"] = self.seconds
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultAction":
        """Rebuild an action from its wire form."""
        return cls(
            point=data["point"],
            hit=int(data["hit"]),
            kind=data["kind"],
            seconds=float(data.get("seconds", 0.0)),
        )

    def describe(self) -> str:
        """``kind@point#hit`` — the compact form failure reports use."""
        return f"{self.kind}@{self.point}#{self.hit}"


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of fault actions, tagged with its seed (None for
    hand-built or minimized schedules)."""

    actions: Tuple[FaultAction, ...]
    seed: Optional[int] = None

    @classmethod
    def generate(
        cls,
        seed: int,
        points: Optional[Sequence[str]] = None,
        max_actions: int = MAX_ACTIONS,
        max_hit: int = MAX_HIT,
    ) -> "FaultSchedule":
        """The deterministic schedule for ``seed``.

        ``points`` restricts the catalog (e.g. a scenario without a
        process pool excludes ``process_executor.submit``); the
        default is every catalog point. Actions never collide on
        ``(point, hit)`` — two actions at one arrival could fire in
        either order, which would break replay determinism.
        """
        names = sorted(points if points is not None else CATALOG)
        for name in names:
            if name not in CATALOG:
                raise ValueError(f"unknown fault point {name!r}")
        rng = random.Random(seed)
        count = rng.randint(1, max_actions)
        actions: List[FaultAction] = []
        taken = set()
        for _ in range(count):
            point = rng.choice(names)
            hit = rng.randint(1, max_hit)
            if (point, hit) in taken:
                continue
            taken.add((point, hit))
            kind = rng.choice(CATALOG[point])
            actions.append(
                FaultAction(
                    point=point,
                    hit=hit,
                    kind=kind,
                    # Delay length is part of the schedule, so replays
                    # reproduce the same widened window.
                    seconds=(
                        rng.choice((0.001, 0.005, 0.02))
                        if kind == KIND_DELAY
                        else 0.0
                    ),
                )
            )
        return cls(actions=tuple(actions), seed=seed)

    def without(self, index: int) -> "FaultSchedule":
        """This schedule minus the action at ``index`` (minimization
        step); the seed tag is dropped because the result no longer
        corresponds to any generated schedule."""
        return FaultSchedule(
            actions=self.actions[:index] + self.actions[index + 1 :],
            seed=None,
        )

    def to_dict(self) -> Dict:
        """JSON wire form: replay input and failure-report output."""
        return {
            "seed": self.seed,
            "actions": [action.to_dict() for action in self.actions],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSchedule":
        """Rebuild a schedule from its wire form."""
        return cls(
            actions=tuple(
                FaultAction.from_dict(item) for item in data["actions"]
            ),
            seed=data.get("seed"),
        )

    def describe(self) -> str:
        """One line: ``seed=S: kind@point#hit, ...`` (empty-safe)."""
        head = f"seed={self.seed}" if self.seed is not None else "minimized"
        if not self.actions:
            return f"{head}: (no actions)"
        return (
            f"{head}: "
            + ", ".join(action.describe() for action in self.actions)
        )


def minimize(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
) -> FaultSchedule:
    """The smallest sub-schedule that still fails ``still_fails``.

    Greedy one-at-a-time delta debugging: repeatedly try dropping each
    action; keep any drop after which the scenario still fails. The
    scenario callback is the oracle — it must be deterministic for the
    minimization to mean anything, which is what the seeded-replay
    regression tests pin down. Worst case O(n²) scenario runs for n
    actions; n is bounded by :data:`MAX_ACTIONS`.
    """
    current = schedule
    shrunk = True
    while shrunk and current.actions:
        shrunk = False
        for index in range(len(current.actions)):
            candidate = current.without(index)
            if still_fails(candidate):
                current = candidate
                shrunk = True
                break
    return current


__all__ = [
    "FaultAction",
    "FaultSchedule",
    "MAX_ACTIONS",
    "MAX_HIT",
    "minimize",
]
