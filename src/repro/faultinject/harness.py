"""End-to-end fault-injection scenario over a real deployment.

Not imported by ``repro.faultinject.__init__`` on purpose: this module
pulls in the whole core + serving stack, which the stdlib-only harness
modules (and the production ``fault_point`` call sites) must never do
transitively. Import it explicitly as ``repro.faultinject.harness``.

One :func:`run_schedule` call plays a fixed concurrency scenario
against a fresh deployment (tiny deterministic world, 2-shard SQLite
store in a temp directory, sync + async front ends) with a
:class:`~repro.faultinject.schedule.FaultSchedule` armed:

1. **serve v1** — two clients serve the most prominent entities, cold
   then warm, on the sync front end;
2. **refresh to v2** — explicit version bump while client threads keep
   serving concurrently (the swap window every freshness bug lives in);
3. **concurrent serve v2** — per-client threads (sequential within a
   client, so per-client monotonic freshness must hold by construction)
   plus an asyncio phase on the shared deployment;
4. **pool churn** — a live resize through the autoscale path;
5. **crash maintenance** — the service is closed, then the store is
   rebalanced to a new shard count and compacted *under crash
   injection*, retrying until the armed crashes are exhausted — the
   same crash/recover loop a real operator runs;
6. **verify** — every surviving store entry must load completely and
   hash to the digest clients were served (recorded as synthetic
   store serves, so the checker's divergent-content rule covers torn
   or partially-rebalanced entries), and the whole recorded history
   must pass :class:`~repro.faultinject.checker.MonotonicFreshnessChecker`.

Injected :class:`~repro.faultinject.points.SimulatedCrash` and typed
service errors are *expected* outcomes, counted not raised; the
scenario fails only on invariant violations or harness-level breakage
(a store entry unreadable after recovery, an unexpected exception
class). Everything is deterministic for a fixed schedule: the world is
seeded, delays come from the schedule, and per-client serving is
sequential — which is what makes ``same seed ⇒ same verdict`` testable.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faultinject.checker import MonotonicFreshnessChecker, Violation
from repro.faultinject.history import HistoryRecorder, kb_digest
from repro.faultinject.points import CATALOG, SimulatedCrash, inject
from repro.faultinject.schedule import FaultSchedule

#: The one injection point that needs a live process pool; schedules
#: for seeds not divisible by :data:`PROCESS_SEED_MODULUS` exclude it
#: (and the scenario then runs the much cheaper thread tier).
PROCESS_POINT = "process_executor.submit"
PROCESS_SEED_MODULUS = 5

#: Explicit corpus versions the scenario refreshes through — explicit
#: so the recorded refresh chain (and thus the checker's version order)
#: is stable across runs.
VERSION_TWO = "faultinject-v2"

_BUNDLE: Optional[Tuple[Any, Any, List[str]]] = None
_BUNDLE_LOCK = threading.Lock()


def _bundle() -> Tuple[Any, Any, List[str]]:
    """(world, background corpus, query list), built once per process.

    The world and background corpus are immutable inputs; each scenario
    builds its own SessionState/service on top, so sharing them only
    amortizes the ~0.25 s construction cost across a schedule sweep.
    """
    global _BUNDLE
    with _BUNDLE_LOCK:
        if _BUNDLE is None:
            from repro.corpus.background import build_background_corpus
            from repro.corpus.world import World, WorldConfig

            world = World(WorldConfig.tiny(), seed=3)
            background = build_background_corpus(world)
            entities = sorted(
                world.entity_repository.entities(),
                key=lambda e: -e.prominence,
            )
            queries = [e.canonical_name for e in entities[:4]]
            _BUNDLE = (world, background, queries)
        return _BUNDLE


def _fresh_session():
    """A new SessionState over the shared world (cheap relative to the
    world itself; fresh so corpus refreshes never leak across runs)."""
    from repro.core.qkbfly import SessionState
    from repro.corpus.retrieval import SearchEngine

    world, background, _ = _bundle()
    return SessionState(
        entity_repository=world.entity_repository,
        pattern_repository=world.pattern_repository,
        statistics=background.statistics,
        search_engine=SearchEngine.from_world(world, background.documents),
    )


def schedule_for_seed(seed: int) -> FaultSchedule:
    """The scenario's deterministic schedule for ``seed``.

    Most seeds exclude :data:`PROCESS_POINT` so the scenario runs the
    thread tier; every :data:`PROCESS_SEED_MODULUS`-th seed keeps the
    full catalog and runs a real process pool (worker kills included).
    The restriction is a pure function of the seed, so replaying a seed
    regenerates the identical schedule.
    """
    if seed % PROCESS_SEED_MODULUS == 0:
        points = None
    else:
        points = [name for name in CATALOG if name != PROCESS_POINT]
    return FaultSchedule.generate(seed, points=points)


@dataclass(frozen=True)
class _StoreServe:
    """Duck-typed result envelope for the verify phase's synthetic
    store reads (matches what HistoryRecorder.record_serve reads)."""

    client_id: str
    request_key: str
    corpus_version: str
    served_from: str
    kb: Any


@dataclass
class ScenarioReport:
    """Everything one scenario run produced.

    ``violations`` are checker verdicts over the recorded history;
    ``errors`` are harness-level breakage (unreadable entries after
    recovery, exceptions of an unexpected class). Either one fails the
    run; injected crashes and typed service errors are counted in
    ``counts`` and fail nothing.
    """

    schedule: FaultSchedule
    violations: List[Violation] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    fired: List[Tuple[str, int, str]] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when no invariant broke and the harness ran clean."""
        return not self.violations and not self.errors

    def describe(self) -> str:
        """Multi-line failure/summary text with the replay recipe."""
        lines = [
            f"schedule: {self.schedule.describe()}",
            f"fired: {[f'{k}@{p}#{h}' for (p, h, k) in self.fired]}",
            f"counts: {dict(sorted(self.counts.items()))}",
        ]
        for violation in self.violations:
            lines.append(f"violation: {violation.describe()}")
        for error in self.errors:
            lines.append(f"error: {error}")
        return "\n".join(lines)


def run_scenario(seed: int) -> ScenarioReport:
    """Generate ``seed``'s schedule and run the scenario under it."""
    return run_schedule(schedule_for_seed(seed))


def run_schedule(schedule: FaultSchedule) -> ScenarioReport:
    """Run the fixed scenario with ``schedule`` armed; never raises for
    injected faults — see :class:`ScenarioReport`."""
    report = ScenarioReport(schedule=schedule)
    tmpdir = tempfile.mkdtemp(prefix="faultinject-")
    try:
        with inject(schedule) as injector:
            try:
                _run_phases(schedule, report, tmpdir)
            except Exception as error:  # pragma: no cover - harness bug
                report.errors.append(
                    f"unexpected {type(error).__name__}: {error}"
                )
            report.fired = list(injector.fired)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return report


def _run_phases(
    schedule: FaultSchedule, report: ScenarioReport, tmpdir: str
) -> None:
    import asyncio
    import os

    from repro.service.api import QueryRequest, ServiceError
    from repro.service.async_service import AsyncQKBflyService
    from repro.service.service import QKBflyService, ServiceConfig
    from repro.service.sharding import ShardedKbStore

    _, _, queries = _bundle()
    use_process = any(a.point == PROCESS_POINT for a in schedule.actions)
    store_dir = os.path.join(tmpdir, "store")
    counts = report.counts
    counts.update(
        {"serves": 0, "crashes": 0, "service_errors": 0, "store_reads": 0}
    )
    recorder = HistoryRecorder()

    def guarded(fn, *args) -> Optional[Any]:
        """Run one operation; crashes and typed errors are outcomes."""
        try:
            return fn(*args)
        except SimulatedCrash:
            counts["crashes"] += 1
        except ServiceError:
            counts["service_errors"] += 1
        return None

    service = QKBflyService(
        _fresh_session(),
        service_config=ServiceConfig(
            max_workers=2,
            num_documents=1,
            store_path=store_dir,
            store_shards=2,
            executor="process" if use_process else "thread",
            process_workers=2 if use_process else None,
        ),
    )
    service.attach_history(recorder)

    def serve(client: str, query: str) -> None:
        if (
            guarded(
                service.serve, QueryRequest(query=query, client_id=client)
            )
            is not None
        ):
            counts["serves"] += 1

    try:
        # Phase 1: cold + warm sync serving on the initial version.
        for client in ("alice", "bob"):
            for query in queries[:2]:
                serve(client, query)

        # Phases 2+3: refresh to v2 while per-client threads keep
        # serving. Each client's operations stay sequential inside its
        # own thread, so per-client freshness monotonicity must hold
        # whatever the interleaving — that is the invariant under test.
        def client_loop(client: str) -> None:
            for query in queries:
                serve(client, query)

        threads = [
            threading.Thread(target=client_loop, args=(c,), name=f"fi-{c}")
            for c in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        guarded(service.refresh_corpus, None, None, None, VERSION_TWO)
        for thread in threads:
            thread.join()

        # Async front end over the same deployment (shared recorder).
        async def async_phase() -> None:
            front = AsyncQKBflyService(service)
            try:
                for query in queries[:2]:
                    try:
                        await front.serve(
                            QueryRequest(query=query, client_id="carol")
                        )
                        counts["serves"] += 1
                    except SimulatedCrash:
                        counts["crashes"] += 1
                    except ServiceError:
                        counts["service_errors"] += 1
            finally:
                await front.aclose()

        asyncio.run(async_phase())

        # Phase 4: pool churn through the autoscale path.
        guarded(service._switch_executor, None, 3)
        guarded(service._switch_executor, None, 2)
        for client in ("alice", "bob"):
            serve(client, queries[0])
    finally:
        # service.close carries a delay-only fault point, so this
        # always completes (and must: the store is reopened below).
        service.close()

    # Phase 5: offline maintenance under crash injection, retried
    # until the armed crashes exhaust — each action fires at most
    # once, so len(actions)+1 attempts always suffice.
    attempts = len(schedule.actions) + 1
    store: Optional[ShardedKbStore] = None
    for _ in range(attempts):
        try:
            store = ShardedKbStore.rebalance(store_dir, 3)
            break
        except SimulatedCrash:
            counts["crashes"] += 1
    if store is None:  # pragma: no cover - bounded by the retry math
        report.errors.append("rebalance never completed within retries")
        return
    for _ in range(attempts):
        try:
            # A far-future TTL: compaction must run its crash points
            # without legitimately deleting anything.
            store.compact(max_age_seconds=10_000_000.0)
            break
        except SimulatedCrash:
            counts["crashes"] += 1

    # Phase 6: verify. Every surviving entry must load completely; its
    # content digest is recorded as a synthetic store serve so the
    # checker's divergent-content rule compares it against what the
    # clients were actually handed.
    try:
        final_version = store.corpus_version
        for sig in store.signatures():
            kb = store.load(
                sig.query,
                corpus_version=sig.corpus_version,
                mode=sig.mode,
                algorithm=sig.algorithm,
                source=sig.source,
                num_documents=sig.num_documents,
                config_digest=sig.config_digest,
            )
            if kb is None:
                report.errors.append(
                    f"entry {sig.query!r}@{sig.corpus_version!r} listed "
                    "but unreadable after rebalance/compact recovery"
                )
                continue
            counts["store_reads"] += 1
            if sig.corpus_version != final_version:
                report.errors.append(
                    f"stale entry {sig.query!r}@{sig.corpus_version!r} "
                    f"survived refresh to {final_version!r}"
                )
            recorder.record_serve(
                _StoreServe(
                    client_id="verifier",
                    request_key=_request_key(service, sig),
                    corpus_version=sig.corpus_version,
                    served_from="store",
                    kb=kb,
                ),
                front_end="verify",
            )
    finally:
        store.close()

    events = recorder.snapshot()
    counts["events"] = len(events)
    report.violations = MonotonicFreshnessChecker().check(events)


def _request_key(service, sig) -> str:
    """The serve-path request key for a store signature, so the verify
    phase's synthetic serves land on the same digest table rows as the
    clients' recorded serves."""
    key = service.request_key(sig.query, sig.source, sig.num_documents)
    return key.signature()


def run_schedules(
    seeds: List[int],
) -> Tuple[List[ScenarioReport], List[int]]:
    """Run many seeded scenarios; returns (reports, failing seeds)."""
    reports: List[ScenarioReport] = []
    failing: List[int] = []
    for seed in seeds:
        report = run_scenario(seed)
        reports.append(report)
        if not report.passed:
            failing.append(seed)
    return reports, failing


__all__ = [
    "PROCESS_POINT",
    "PROCESS_SEED_MODULUS",
    "ScenarioReport",
    "run_scenario",
    "run_schedule",
    "run_schedules",
    "schedule_for_seed",
]
