"""Fault-injection scenario over the multi-process shard fabric.

The sibling of :mod:`repro.faultinject.harness` with the store behind
``ServiceConfig(store_backend="fabric")``: three shards served by
socket shard servers with two-way replica groups, and an **online**
rebalance running while clients keep serving. The phases:

1. **serve v1** — two clients serve cold then warm on the sync front
   end; every save crosses the wire to a shard server and is fanned to
   a replica asynchronously;
2. **refresh to v2** — version bump while per-client threads keep
   serving (replica reads must never resurrect v1 — structurally,
   because store keys include the corpus version, a lagging replica
   *misses* and the read falls back to the primary);
3. **online rebalance under fire** — the routed store is rebalanced
   3 → 4 shards while the client threads continue; injected crashes at
   the copy and cutover points are retried until the schedule's armed
   crashes exhaust, exercising the resume path of the double-write
   window;
4. **serve after cutover** — every query is served again on the new
   generation;
5. **verify** — the fabric is shut down, the shard files are reopened
   *locally* (the primaries are plain SQLite shards), and: every
   surviving entry must load and digest-match what clients were served
   (the checker's divergent-content rule); every request key a client
   was served at the final version must still be present (**no lost
   acknowledged writes** — an acknowledged save is a primary commit
   and nothing later may drop it); and the full recorded history must
   pass :class:`~repro.faultinject.checker.MonotonicFreshnessChecker`.

Same determinism contract as the base harness: the schedule is a pure
function of its seed (:func:`fabric_schedule_for_seed`), so a red seed
replays to the same verdict.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from typing import Any, List, Optional

from repro.faultinject.checker import MonotonicFreshnessChecker
from repro.faultinject.harness import (
    PROCESS_POINT,
    VERSION_TWO,
    ScenarioReport,
    _bundle,
    _fresh_session,
    _request_key,
    _StoreServe,
)
from repro.faultinject.history import EVENT_SERVE, HistoryRecorder
from repro.faultinject.points import CATALOG, SimulatedCrash, inject
from repro.faultinject.schedule import FaultSchedule

#: Shard/replica shape of the scenario's fabric deployment.
FABRIC_SHARDS = 3
FABRIC_REPLICATION = 2
#: The online rebalance grows the fabric to this many shards mid-run.
FABRIC_REBALANCE_TO = 4


def fabric_schedule_for_seed(seed: int) -> FaultSchedule:
    """The fabric scenario's deterministic schedule for ``seed``.

    The process-pool point is always excluded (the fabric's own server
    processes are the multi-process dimension under test here); every
    other catalog point — including the fabric transport, server,
    replication, and online-rebalance points — stays eligible.
    """
    points = [name for name in CATALOG if name != PROCESS_POINT]
    return FaultSchedule.generate(seed, points=points)


def run_fabric_scenario(seed: int) -> ScenarioReport:
    """Generate ``seed``'s schedule and run the fabric scenario."""
    return run_fabric_schedule(fabric_schedule_for_seed(seed))


def run_fabric_schedule(schedule: FaultSchedule) -> ScenarioReport:
    """Run the fabric scenario with ``schedule`` armed; injected faults
    are outcomes, not raises — see :class:`ScenarioReport`."""
    report = ScenarioReport(schedule=schedule)
    tmpdir = tempfile.mkdtemp(prefix="faultinject-fabric-")
    try:
        with inject(schedule) as injector:
            try:
                _run_phases(schedule, report, tmpdir)
            except Exception as error:  # pragma: no cover - harness bug
                report.errors.append(
                    f"unexpected {type(error).__name__}: {error}"
                )
            report.fired = list(injector.fired)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return report


def _run_phases(
    schedule: FaultSchedule, report: ScenarioReport, tmpdir: str
) -> None:
    import os

    from repro.service.api import QueryRequest, ServiceError
    from repro.service.service import QKBflyService, ServiceConfig
    from repro.service.sharding import ShardedKbStore

    _, _, queries = _bundle()
    store_dir = os.path.join(tmpdir, "store")
    counts = report.counts
    counts.update(
        {
            "serves": 0,
            "crashes": 0,
            "service_errors": 0,
            "store_reads": 0,
            "rebalance_moved": 0,
        }
    )
    recorder = HistoryRecorder()

    def guarded(fn, *args) -> Optional[Any]:
        try:
            return fn(*args)
        except SimulatedCrash:
            counts["crashes"] += 1
        except ServiceError:
            counts["service_errors"] += 1
        return None

    service = QKBflyService(
        _fresh_session(),
        service_config=ServiceConfig(
            max_workers=2,
            num_documents=1,
            store_path=store_dir,
            store_shards=FABRIC_SHARDS,
            store_backend="fabric",
            replication_factor=FABRIC_REPLICATION,
        ),
    )
    service.attach_history(recorder)
    attempts = len(schedule.actions) + 1

    def serve(client: str, query: str) -> None:
        if (
            guarded(
                service.serve, QueryRequest(query=query, client_id=client)
            )
            is not None
        ):
            counts["serves"] += 1

    try:
        # Phase 1: cold + warm serving through the fabric.
        for client in ("alice", "bob"):
            for query in queries[:2]:
                serve(client, query)

        # Phase 2: refresh to v2 while client threads keep serving.
        def client_loop(client: str) -> None:
            for query in queries:
                serve(client, query)

        threads = [
            threading.Thread(target=client_loop, args=(c,), name=f"ff-{c}")
            for c in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        guarded(service.refresh_corpus, None, None, None, VERSION_TWO)
        for thread in threads:
            thread.join()

        # Phase 3: online rebalance while clients serve on top of it.
        # A crash at the copy or cutover point aborts *this attempt*
        # but leaves the double-write window open; re-calling resumes.
        # Each armed action fires at most once, so len(actions)+1
        # attempts always complete the rebalance.
        threads = [
            threading.Thread(target=client_loop, args=(c,), name=f"fr-{c}")
            for c in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        rebalanced = False
        for _ in range(attempts):
            try:
                counts["rebalance_moved"] = service.store.online_rebalance(
                    FABRIC_REBALANCE_TO
                )
                rebalanced = True
                break
            except SimulatedCrash:
                counts["crashes"] += 1
        for thread in threads:
            thread.join()
        if not rebalanced:  # pragma: no cover - bounded by the retry math
            report.errors.append(
                "online rebalance never completed within retries"
            )

        # Phase 4: every query served again on the new generation.
        for client in ("alice", "bob"):
            for query in queries:
                serve(client, query)
    finally:
        # Drains queued replica deliveries, then stops the servers.
        service.close()

    # Phase 5: verify on the bare files. The primaries are ordinary
    # SQLite shards, so a local reopen reads exactly the acknowledged
    # (primary-committed) state the fabric must not have lost.
    served_events = recorder.snapshot()
    store = ShardedKbStore(store_dir)
    present_at_final: set = set()
    try:
        final_version = store.corpus_version
        for sig in store.signatures():
            kb = store.load(
                sig.query,
                corpus_version=sig.corpus_version,
                mode=sig.mode,
                algorithm=sig.algorithm,
                source=sig.source,
                num_documents=sig.num_documents,
                config_digest=sig.config_digest,
            )
            if kb is None:
                report.errors.append(
                    f"entry {sig.query!r}@{sig.corpus_version!r} listed "
                    "but unreadable after fabric shutdown"
                )
                continue
            counts["store_reads"] += 1
            if sig.corpus_version != final_version:
                report.errors.append(
                    f"stale entry {sig.query!r}@{sig.corpus_version!r} "
                    f"survived refresh to {final_version!r}"
                )
            key = _request_key(service, sig)
            if sig.corpus_version == final_version:
                present_at_final.add(key)
            recorder.record_serve(
                _StoreServe(
                    client_id="verifier",
                    request_key=key,
                    corpus_version=sig.corpus_version,
                    served_from="store",
                    kb=kb,
                ),
                front_end="verify",
            )
    finally:
        store.close()

    # No lost acknowledged writes: a cache or store serve at the final
    # version implies the entry was committed on a primary at that
    # version (the store tier read it there; the cache tier was filled
    # by a request whose save provably preceded the cache fill), and
    # neither replication, the online rebalance, nor the shutdown may
    # have dropped it. Executor serves are excluded: a pipeline run
    # raced by the refresh is deliberately *not* persisted (its key is
    # already stale), so its absence is correct behaviour.
    lost = {
        event.request_key
        for event in served_events
        if event.kind == EVENT_SERVE
        and event.corpus_version == final_version
        and event.served_from in ("cache", "store")
        and event.request_key
        and event.request_key not in present_at_final
    }
    for key in sorted(lost):
        report.errors.append(
            f"acknowledged write {key!r}@{final_version!r} missing from "
            "the store after fabric shutdown"
        )

    events = recorder.snapshot()
    counts["events"] = len(events)
    report.violations = MonotonicFreshnessChecker().check(events)


def run_fabric_schedules(
    seeds: List[int],
) -> tuple:
    """Run many seeded fabric scenarios; (reports, failing seeds)."""
    reports: List[ScenarioReport] = []
    failing: List[int] = []
    for seed in seeds:
        report = run_fabric_scenario(seed)
        reports.append(report)
        if not report.passed:
            failing.append(seed)
    return reports, failing


__all__ = [
    "FABRIC_REBALANCE_TO",
    "FABRIC_REPLICATION",
    "FABRIC_SHARDS",
    "fabric_schedule_for_seed",
    "run_fabric_scenario",
    "run_fabric_schedule",
    "run_fabric_schedules",
]
