"""Synthetic corpus substrate: world model, realizer, statistics, retrieval.

The paper's experiments run over Wikipedia, news sites and Google
retrieval — none of which are available offline. This package builds the
closest synthetic equivalent that exercises the same code paths:

- :mod:`repro.corpus.world` — a deterministic ground-truth world of
  entities (with aliases, genders, types, deliberate name ambiguity) and
  n-ary facts with type-correct arguments.
- :mod:`repro.corpus.realizer` — renders Wikipedia-style articles and
  news articles from world facts, with pronouns, possessives, relative
  clauses, appositions and entity-link anchors.
- :mod:`repro.corpus.background` / :mod:`repro.corpus.statistics` — the
  background corpus and the (co-)occurrence statistics QKBfly's feature
  functions need: anchor link priors, TF-IDF context vectors and
  type-signature counts.
- :mod:`repro.corpus.retrieval` — a BM25 search engine standing in for
  Wikipedia / Google News retrieval.
"""

from repro.corpus.world import World, WorldConfig, build_world

__all__ = ["World", "WorldConfig", "build_world"]
