"""Name vocabularies for the synthetic world.

All names are invented (no real-world entities) but orthographically
realistic so the NER shape heuristics behave as they would on real text.
The lists are deliberately sized so that the world generator can create
*ambiguous* aliases: shared surnames, a city and a football club with the
same name, etc. — the ambiguity structure that drives the paper's NED
experiments (e.g. "Liverpool" the city vs. Liverpool F.C.).
"""

from __future__ import annotations

MALE_FIRST_NAMES = [
    "Adam", "Albert", "Arthur", "Bernard", "Caleb", "Cedric", "Conrad",
    "Daniel", "Dexter", "Edgar", "Elliot", "Felix", "Gareth", "Gregor",
    "Harvey", "Hector", "Ivan", "Jasper", "Julian", "Kendall", "Lionel",
    "Magnus", "Marcus", "Nathan", "Oscar", "Patrick", "Quentin", "Roland",
    "Rupert", "Samuel", "Tobias", "Victor", "Walter", "Xavier", "Logan",
]

FEMALE_FIRST_NAMES = [
    "Alice", "Amelia", "Beatrice", "Camilla", "Clara", "Daphne", "Eleanor",
    "Elsa", "Fiona", "Greta", "Harriet", "Imogen", "Ingrid", "Isolde",
    "Johanna", "Katrina", "Lavinia", "Lydia", "Margot", "Matilda", "Nadia",
    "Olivia", "Paulina", "Phoebe", "Ramona", "Rosalind", "Sabrina",
    "Serena", "Tamara", "Ursula", "Verena", "Viola", "Wilhelmina", "Yvette",
]

SURNAMES = [
    "Ashford", "Barrington", "Blackwood", "Caldwell", "Carrow", "Delmont",
    "Drayton", "Easton", "Fairbanks", "Farrow", "Gainsborough", "Granger",
    "Hale", "Harrington", "Holloway", "Kingsley", "Lockhart", "Marchetti",
    "Mercer", "Northwood", "Oakes", "Pemberton", "Quill", "Ravenel",
    "Sheffield", "Stanton", "Stone", "Thorne", "Underwood", "Vance",
    "Wexford", "Whitmore", "Winslow", "Yardley", "Zeller", "Mallory",
]

CITY_NAMES = [
    "Aldenport", "Bramwick", "Carlow", "Dunmore", "Eastvale", "Fenwick",
    "Garrowby", "Hartsmere", "Ironbridge", "Jarrowfield", "Kelbrook",
    "Lowdale", "Marwick", "Northhaven", "Ostermouth", "Penrith",
    "Quarrington", "Ravenglass", "Silverford", "Thornbury", "Umberfield",
    "Virelay", "Westmoor", "Yarrowgate",
]

COUNTRY_NAMES = [
    "Ardenia", "Belmora", "Cordovia", "Drelland", "Esperia", "Florin",
    "Galdonia", "Hesperia",
]

COMPANY_WORDS = [
    "Apex", "Beacon", "Cinder", "Drift", "Ember", "Flux", "Glacier",
    "Horizon", "Ion", "Junction", "Keystone", "Lumen", "Meridian",
    "Nimbus", "Orbit", "Pinnacle",
]

COMPANY_SUFFIXES = ["Inc.", "Technologies", "Systems", "Industries", "Labs"]

BAND_WORDS = [
    "Crimson", "Velvet", "Midnight", "Electric", "Wandering", "Silent",
    "Golden", "Hollow", "Savage", "Northern",
]

BAND_NOUNS = [
    "Foxes", "Harbors", "Lanterns", "Mirrors", "Pilots", "Rivers",
    "Shadows", "Sparrows", "Tides", "Wolves",
]

FILM_ADJECTIVES = [
    "Broken", "Crimson", "Distant", "Endless", "Fallen", "Frozen",
    "Gilded", "Hidden", "Iron", "Lost", "Scarlet", "Silent", "Burning",
    "Forgotten",
]

FILM_NOUNS = [
    "Citadel", "Crown", "Empire", "Harbor", "Horizon", "Kingdom",
    "Lantern", "Meridian", "Orchard", "Passage", "River", "Summit",
    "Voyage", "Winter",
]

AWARD_WORDS = [
    "Meridian", "Sterling", "Aurora", "Obsidian", "Laurel", "Vanguard",
    "Pinnacle", "Beacon",
]

AWARD_KINDS = ["Prize", "Award", "Medal", "Trophy"]

AWARD_FIELDS = [
    "Literature", "Cinema", "Music", "Science", "Journalism", "Peace",
]

CHARACTER_FIRST = [
    "Arion", "Belgarath", "Caspar", "Dorian", "Evandra", "Fenris",
    "Galadrien", "Hestia", "Ilyana", "Joren", "Kaelith", "Lysandra",
    "Morwen", "Nerian", "Orla", "Peregrin",
]

CHARACTER_LAST = [
    "Ashveil", "Blackbriar", "Duskwane", "Emberfall", "Frostmane",
    "Greycastle", "Hollowell", "Ironwood", "Nightriver", "Stormhold",
]

SONG_WORDS = [
    "Rain", "Roads", "Echoes", "Candles", "Harbors", "Strangers",
    "Embers", "Compass", "Thunder", "Paper",
]

FESTIVAL_WORDS = [
    "Solstice", "Harvest", "Riverlight", "Stonebridge", "Equinox", "Aurora",
]

__all__ = [
    "AWARD_FIELDS",
    "AWARD_KINDS",
    "AWARD_WORDS",
    "BAND_NOUNS",
    "BAND_WORDS",
    "CHARACTER_FIRST",
    "CHARACTER_LAST",
    "CITY_NAMES",
    "COMPANY_SUFFIXES",
    "COMPANY_WORDS",
    "COUNTRY_NAMES",
    "FEMALE_FIRST_NAMES",
    "FESTIVAL_WORDS",
    "FILM_ADJECTIVES",
    "FILM_NOUNS",
    "MALE_FIRST_NAMES",
    "SONG_WORDS",
    "SURNAMES",
]
