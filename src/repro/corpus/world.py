"""The synthetic ground-truth world.

A :class:`World` holds entities (people, organizations, locations, works,
awards, fictional characters) with aliases, genders, types and
prominence; n-ary ground-truth facts that respect the relation schema's
type signatures; and a set of *trend events* (recent news-worthy
happenings) used by the news corpus and the QA benchmark.

Deliberate ambiguity is injected to exercise NED:

- several people share a surname, so the bare surname alias is ambiguous;
- every football club is named after its city and carries the bare city
  name as an alias (the "Liverpool vs. Liverpool F.C." situation the
  paper highlights for the type-signature feature);
- a configurable fraction of people (and most fictional characters) are
  *not* registered in the entity repository — they are the emerging
  entities the on-the-fly KB must discover.

Everything is generated from a :class:`repro.utils.rng.DeterministicRng`,
so a given (seed, config) pair always yields the identical world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus import names
from repro.corpus.schema import SPECS_BY_ID, build_pattern_repository
from repro.kb.entity_repository import Entity, EntityRepository
from repro.kb.pattern_repository import PatternRepository
from repro.kb.typesystem import TypeSystem
from repro.utils.rng import DeterministicRng

_MONTH_NAMES = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]


@dataclass
class WorldEntity:
    """Ground-truth entity (superset of the repository's view)."""

    entity_id: str
    name: str
    types: List[str]
    gender: str = ""
    aliases: List[str] = field(default_factory=list)
    prominence: float = 1.0
    in_repository: bool = True
    home_city: str = ""       # entity id of a city, when applicable
    profession_noun: str = ""  # e.g. "actor", used for appositive flavor

    def __post_init__(self) -> None:
        if self.name and self.name not in self.aliases:
            self.aliases.insert(0, self.name)


@dataclass
class WorldFact:
    """Ground-truth n-ary fact.

    ``object_id`` / ``object2_id`` hold entity ids; literals are stored
    in ``amount`` (money) or ``literal`` (plain string). ``time`` holds
    ``(display, normalized)``; ``location_id`` an optional city id.
    """

    fact_id: str
    relation_id: str
    subject_id: str
    object_id: str = ""
    object2_id: str = ""
    amount: str = ""
    literal: str = ""
    time: Optional[Tuple[str, str]] = None
    location_id: str = ""
    recent: bool = False   # True for trend-event facts (news-only)


@dataclass
class TrendEvent:
    """A recent event of wider interest (the Google-Trends analogue)."""

    event_id: str
    kind: str
    date: Tuple[str, str]          # (display, normalized)
    main_entities: List[str]
    fact_ids: List[str]
    headline: str = ""


@dataclass
class WorldConfig:
    """Size knobs of the synthetic world."""

    num_countries: int = 6
    num_cities: int = 18
    num_clubs: int = 10
    num_companies: int = 10
    num_foundations: int = 6
    num_universities: int = 8
    num_newspapers: int = 5
    num_bands: int = 6
    num_awards: int = 8
    num_festivals: int = 5
    num_films: int = 16
    num_albums: int = 10
    num_books: int = 8
    num_actors: int = 16
    num_musicians: int = 10
    num_footballers: int = 12
    num_politicians: int = 8
    num_scientists: int = 6
    num_businesspeople: int = 8
    num_journalists: int = 6
    num_coaches: int = 4
    num_writers: int = 6
    num_models: int = 4
    num_characters: int = 12
    emerging_person_fraction: float = 0.15
    shared_surname_pool: int = 20   # smaller pool -> more shared surnames
    num_events: int = 50

    @classmethod
    def tiny(cls) -> "WorldConfig":
        """A miniature world for fast unit tests."""
        return cls(
            num_countries=3, num_cities=6, num_clubs=4, num_companies=4,
            num_foundations=3, num_universities=3, num_newspapers=2,
            num_bands=3, num_awards=3, num_festivals=2, num_films=6,
            num_albums=4, num_books=3, num_actors=6, num_musicians=4,
            num_footballers=5, num_politicians=3, num_scientists=2,
            num_businesspeople=3, num_journalists=2, num_coaches=2,
            num_writers=2, num_models=2, num_characters=5,
            shared_surname_pool=10, num_events=10,
        )


class World:
    """The generated world: entities, facts, events and repositories."""

    def __init__(self, config: WorldConfig, seed: int = 7) -> None:
        self.config = config
        self.seed = seed
        self.rng = DeterministicRng(seed, namespace="world")
        self.type_system = TypeSystem()
        self.entities: Dict[str, WorldEntity] = {}
        self.facts: List[WorldFact] = []
        self.facts_by_subject: Dict[str, List[WorldFact]] = {}
        self.events: List[TrendEvent] = []
        self._next_entity = 0
        self._next_fact = 0
        self._by_type: Dict[str, List[str]] = {}
        self._generate()
        self.entity_repository = self._build_repository()
        self.pattern_repository: PatternRepository = build_pattern_repository()

    # ------------------------------------------------------------------
    # Public helpers
    # ------------------------------------------------------------------

    def entity(self, entity_id: str) -> WorldEntity:
        """Ground-truth entity by id."""
        return self.entities[entity_id]

    def of_type(self, type_name: str) -> List[str]:
        """Ids of entities whose primary type is (a subtype of) ``type_name``."""
        out: List[str] = []
        for tname, ids in self._by_type.items():
            if self.type_system.is_subtype(tname, type_name):
                out.extend(ids)
        return out

    def facts_of(self, entity_id: str) -> List[WorldFact]:
        """Facts whose subject is ``entity_id``."""
        return list(self.facts_by_subject.get(entity_id, []))

    def all_person_ids(self) -> List[str]:
        """Ids of all person entities (including emerging ones)."""
        return self.of_type("PERSON")

    def display(self, fact: WorldFact) -> str:
        """Human-readable rendering of a ground-truth fact."""
        parts = [self.entities[fact.subject_id].name, fact.relation_id]
        if fact.amount:
            parts.append(fact.amount)
        if fact.object_id:
            parts.append(self.entities[fact.object_id].name)
        if fact.object2_id:
            parts.append(self.entities[fact.object2_id].name)
        if fact.literal:
            parts.append(repr(fact.literal))
        if fact.time:
            parts.append(fact.time[0])
        return "<" + ", ".join(parts) + ">"

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def _generate(self) -> None:
        rng = self.rng
        self._make_geography(rng.fork("geo"))
        self._make_organizations(rng.fork("orgs"))
        self._make_works(rng.fork("works"))
        self._make_people(rng.fork("people"))
        self._make_characters(rng.fork("characters"))
        self._make_person_facts(rng.fork("facts"))
        self._make_org_facts(rng.fork("org-facts"))
        self._make_events(rng.fork("events"))

    def _new_id(self) -> str:
        self._next_entity += 1
        return f"E{self._next_entity:05d}"

    def _add_entity(self, entity: WorldEntity) -> str:
        self.entities[entity.entity_id] = entity
        primary = entity.types[0] if entity.types else "MISC"
        self._by_type.setdefault(primary, []).append(entity.entity_id)
        return entity.entity_id

    def _add_fact(self, **kwargs) -> WorldFact:
        self._next_fact += 1
        fact = WorldFact(fact_id=f"F{self._next_fact:06d}", **kwargs)
        self.facts.append(fact)
        self.facts_by_subject.setdefault(fact.subject_id, []).append(fact)
        spec = SPECS_BY_ID[fact.relation_id]
        if spec.symmetric and fact.object_id:
            self._next_fact += 1
            mirror = WorldFact(
                fact_id=f"F{self._next_fact:06d}",
                relation_id=fact.relation_id,
                subject_id=fact.object_id,
                object_id=fact.subject_id,
                time=fact.time,
                location_id=fact.location_id,
                recent=fact.recent,
            )
            self.facts.append(mirror)
            self.facts_by_subject.setdefault(mirror.subject_id, []).append(mirror)
        return fact

    def _random_date(
        self, rng: DeterministicRng, year_lo: int, year_hi: int, full: bool = False
    ) -> Tuple[str, str]:
        year = rng.randint(year_lo, year_hi)
        month = rng.randint(1, 12)
        if full or rng.maybe(0.4):
            day = rng.randint(1, 28)
            display = f"{_MONTH_NAMES[month - 1]} {day}, {year}"
            return display, f"{year:04d}-{month:02d}-{day:02d}"
        if rng.maybe(0.5):
            return f"{_MONTH_NAMES[month - 1]} {year}", f"{year:04d}-{month:02d}"
        return str(year), f"{year:04d}"

    # ---- geography --------------------------------------------------------

    def _make_geography(self, rng: DeterministicRng) -> None:
        country_names = rng.sample(names.COUNTRY_NAMES, self.config.num_countries)
        self.country_ids: List[str] = []
        for name in country_names:
            eid = self._add_entity(
                WorldEntity(self._new_id(), name, ["COUNTRY"], prominence=3.0)
            )
            self.country_ids.append(eid)
        city_names = rng.sample(names.CITY_NAMES, self.config.num_cities)
        self.city_ids: List[str] = []
        capitals: Dict[str, str] = {}
        for name in city_names:
            country = rng.choice(self.country_ids)
            prominence = 1.0 + 4.0 * rng.random()
            eid = self._add_entity(
                WorldEntity(self._new_id(), name, ["CITY"], prominence=prominence)
            )
            self.city_ids.append(eid)
            self._add_fact(relation_id="city_in", subject_id=eid, object_id=country)
            if country not in capitals:
                capitals[country] = eid
                self._add_fact(
                    relation_id="capital_of", subject_id=eid, object_id=country
                )

    # ---- organizations ------------------------------------------------------

    def _make_organizations(self, rng: DeterministicRng) -> None:
        cfg = self.config
        self.club_ids: List[str] = []
        club_cities = rng.sample(self.city_ids, min(cfg.num_clubs, len(self.city_ids)))
        for city_id in club_cities:
            city = self.entities[city_id]
            club_name = f"{city.name} F.C."
            entity = WorldEntity(
                self._new_id(), club_name, ["FOOTBALL_CLUB"],
                aliases=[club_name, city.name],  # deliberate ambiguity
                prominence=2.0 + 2.0 * rng.random(), home_city=city_id,
            )
            self.club_ids.append(self._add_entity(entity))

        self.company_ids: List[str] = []
        used = set()
        for _ in range(cfg.num_companies):
            while True:
                word = rng.choice(names.COMPANY_WORDS)
                suffix = rng.choice(names.COMPANY_SUFFIXES)
                full = f"{word} {suffix}"
                if full not in used:
                    used.add(full)
                    break
            entity = WorldEntity(
                self._new_id(), full, ["COMPANY"], aliases=[full, word],
                prominence=1.0 + 2.0 * rng.random(),
                home_city=rng.choice(self.city_ids),
            )
            self.company_ids.append(self._add_entity(entity))

        self.foundation_ids: List[str] = []
        surnames = rng.sample(names.SURNAMES, cfg.num_foundations)
        for surname in surnames:
            name = f"{surname} Foundation"
            entity = WorldEntity(
                self._new_id(), name, ["FOUNDATION"], prominence=1.5,
                home_city=rng.choice(self.city_ids),
            )
            self.foundation_ids.append(self._add_entity(entity))

        self.university_ids: List[str] = []
        uni_cities = rng.sample(
            self.city_ids, min(cfg.num_universities, len(self.city_ids))
        )
        for city_id in uni_cities:
            city = self.entities[city_id]
            name = f"{city.name} University"
            entity = WorldEntity(
                self._new_id(), name, ["UNIVERSITY"], prominence=1.5,
                home_city=city_id,
            )
            self.university_ids.append(self._add_entity(entity))

        self.newspaper_ids: List[str] = []
        paper_cities = rng.sample(
            self.city_ids, min(cfg.num_newspapers, len(self.city_ids))
        )
        for city_id in paper_cities:
            city = self.entities[city_id]
            name = f"The {city.name} Times"
            entity = WorldEntity(
                self._new_id(), name, ["NEWSPAPER"],
                aliases=[name, f"{city.name} Times"], prominence=1.2,
                home_city=city_id,
            )
            self.newspaper_ids.append(self._add_entity(entity))

        self.band_ids: List[str] = []
        used_bands = set()
        for _ in range(cfg.num_bands):
            while True:
                word = rng.choice(names.BAND_WORDS)
                noun = rng.choice(names.BAND_NOUNS)
                name = f"The {word} {noun}"
                if name not in used_bands:
                    used_bands.add(name)
                    break
            entity = WorldEntity(
                self._new_id(), name, ["BAND"],
                aliases=[name, f"{word} {noun}"],
                prominence=1.0 + 2.0 * rng.random(),
            )
            self.band_ids.append(self._add_entity(entity))

        self.award_ids: List[str] = []
        used_awards = set()
        for _ in range(cfg.num_awards):
            while True:
                word = rng.choice(names.AWARD_WORDS)
                kind = rng.choice(names.AWARD_KINDS)
                name = f"the {word} {kind}"
                if name not in used_awards:
                    used_awards.add(name)
                    break
            entity = WorldEntity(
                self._new_id(), f"{word} {kind}", ["AWARD"],
                aliases=[f"{word} {kind}"], prominence=2.0,
            )
            self.award_ids.append(self._add_entity(entity))

        self.festival_ids: List[str] = []
        fest_words = rng.sample(names.FESTIVAL_WORDS, cfg.num_festivals)
        for word in fest_words:
            name = f"{word} Festival"
            entity = WorldEntity(
                self._new_id(), name, ["FESTIVAL"], prominence=1.3,
                home_city=rng.choice(self.city_ids),
            )
            self.festival_ids.append(self._add_entity(entity))

    # ---- works ---------------------------------------------------------------

    def _make_works(self, rng: DeterministicRng) -> None:
        cfg = self.config
        self.film_ids: List[str] = []
        used = set()
        for _ in range(cfg.num_films):
            while True:
                adj = rng.choice(names.FILM_ADJECTIVES)
                noun = rng.choice(names.FILM_NOUNS)
                name = f"The {adj} {noun}"
                if name not in used:
                    used.add(name)
                    break
            entity = WorldEntity(
                self._new_id(), name, ["FILM"],
                aliases=[name, f"{adj} {noun}"],
                prominence=1.0 + 2.0 * rng.random(),
            )
            self.film_ids.append(self._add_entity(entity))

        self.album_ids: List[str] = []
        used_albums = set()
        for _ in range(cfg.num_albums):
            while True:
                word = rng.choice(names.BAND_WORDS)
                song = rng.choice(names.SONG_WORDS)
                name = f"{word} {song}"
                if name not in used_albums:
                    used_albums.add(name)
                    break
            entity = WorldEntity(
                self._new_id(), name, ["ALBUM"], prominence=1.0,
            )
            self.album_ids.append(self._add_entity(entity))

        self.book_ids: List[str] = []
        used_books = set()
        for _ in range(cfg.num_books):
            while True:
                adj = rng.choice(names.FILM_ADJECTIVES)
                song = rng.choice(names.SONG_WORDS)
                name = f"The {adj} {song}"
                if name not in used_books and name not in used:
                    used_books.add(name)
                    break
            entity = WorldEntity(
                self._new_id(), name, ["BOOK"], prominence=0.8,
            )
            self.book_ids.append(self._add_entity(entity))

    # ---- people -------------------------------------------------------------

    _PROFESSIONS: Tuple[Tuple[str, str, str], ...] = (
        # (config attr, primary type, profession noun)
        ("num_actors", "ACTOR", "actor"),
        ("num_musicians", "MUSICAL_ARTIST", "singer"),
        ("num_footballers", "FOOTBALLER", "footballer"),
        ("num_politicians", "POLITICIAN", "politician"),
        ("num_scientists", "SCIENTIST", "scientist"),
        ("num_businesspeople", "BUSINESSPERSON", "businessman"),
        ("num_journalists", "JOURNALIST", "journalist"),
        ("num_coaches", "COACH", "coach"),
        ("num_writers", "WRITER", "writer"),
        ("num_models", "MODEL", "model"),
    )

    def _make_people(self, rng: DeterministicRng) -> None:
        cfg = self.config
        surname_pool = rng.sample(
            names.SURNAMES, min(cfg.shared_surname_pool, len(names.SURNAMES))
        )
        self.person_ids: List[str] = []
        self.person_ids_by_profession: Dict[str, List[str]] = {}
        used_full_names = set()
        for attr, primary_type, noun in self._PROFESSIONS:
            count = getattr(cfg, attr)
            bucket: List[str] = []
            for _ in range(count):
                gender = "female" if rng.maybe(0.5) else "male"
                first_pool = (
                    names.FEMALE_FIRST_NAMES if gender == "female"
                    else names.MALE_FIRST_NAMES
                )
                while True:
                    first = rng.choice(first_pool)
                    surname = rng.choice(surname_pool)
                    full = f"{first} {surname}"
                    if full not in used_full_names:
                        used_full_names.add(full)
                        break
                prominence = 0.5 + 4.5 / (1 + rng.zipf_rank(20))
                emerging = rng.maybe(cfg.emerging_person_fraction)
                entity = WorldEntity(
                    self._new_id(), full, [primary_type],
                    gender=gender,
                    aliases=[full, surname],
                    prominence=prominence,
                    in_repository=not emerging,
                    home_city=rng.choice(self.city_ids),
                    profession_noun="actress" if (
                        primary_type == "ACTOR" and gender == "female"
                    ) else noun,
                )
                eid = self._add_entity(entity)
                bucket.append(eid)
                self.person_ids.append(eid)
            self.person_ids_by_profession[primary_type] = bucket

    def _make_characters(self, rng: DeterministicRng) -> None:
        self.character_ids: List[str] = []
        used = set()
        for _ in range(self.config.num_characters):
            while True:
                first = rng.choice(names.CHARACTER_FIRST)
                last = rng.choice(names.CHARACTER_LAST)
                full = f"{first} {last}"
                if full not in used:
                    used.add(full)
                    break
            gender = "female" if rng.maybe(0.5) else "male"
            entity = WorldEntity(
                self._new_id(), full, ["CHARACTER"],
                gender=gender, aliases=[full, first],
                prominence=0.6,
                in_repository=rng.maybe(0.2),  # most characters are emerging
                profession_noun="character",
            )
            self.character_ids.append(self._add_entity(entity))

    # ---- person facts ----------------------------------------------------

    def _make_person_facts(self, rng: DeterministicRng) -> None:
        married: Dict[str, str] = {}
        for eid in list(self.person_ids):
            person = self.entities[eid]
            r = rng.fork(eid)
            birth = self._random_date(r, 1945, 1995, full=True)
            self._add_fact(
                relation_id="born_in", subject_id=eid,
                object_id=person.home_city, time=birth,
            )
            if r.maybe(0.7):
                self._add_fact(
                    relation_id="lives_in", subject_id=eid,
                    object_id=r.choice(self.city_ids),
                )
            if r.maybe(0.6) and self.university_ids:
                self._add_fact(
                    relation_id="studied_at", subject_id=eid,
                    object_id=r.choice(self.university_ids),
                    time=self._random_date(r, 1965, 2014),
                )
            if r.maybe(0.35) and self.foundation_ids:
                self._add_fact(
                    relation_id="supports", subject_id=eid,
                    object_id=r.choice(self.foundation_ids),
                )
            if r.maybe(0.4):
                self._add_fact(
                    relation_id="visits", subject_id=eid,
                    object_id=r.choice(self.city_ids),
                    time=self._random_date(r, 2010, 2016),
                )
            # Marriage: pick an unmarried person of opposite gender.
            if eid not in married and r.maybe(0.5):
                partner = self._find_partner(r, eid, married)
                if partner is not None:
                    wedding = self._random_date(r, 1990, 2014)
                    self._add_fact(
                        relation_id="married_to", subject_id=eid,
                        object_id=partner, time=wedding,
                        location_id=r.choice(self.city_ids) if r.maybe(0.4) else "",
                    )
                    married[eid] = partner
                    married[partner] = eid
                    if r.maybe(0.3):
                        self._add_fact(
                            relation_id="divorced_from", subject_id=eid,
                            object_id=partner,
                            time=self._random_date(r, 2014, 2016),
                        )
            # Parents: dedicated (often emerging) entities.
            if r.maybe(0.4):
                parent = self._make_parent(r, person)
                self._add_fact(
                    relation_id="born_to", subject_id=eid, object_id=parent
                )
            # Children / adoption.
            if r.maybe(0.2):
                child = self._make_child(r, person)
                self._add_fact(
                    relation_id="parent_of", subject_id=eid, object_id=child,
                    time=self._random_date(r, 2000, 2015) if r.maybe(0.5) else None,
                )
            self._profession_facts(r, eid, person)

    def _find_partner(
        self, rng: DeterministicRng, eid: str, married: Dict[str, str]
    ) -> Optional[str]:
        person = self.entities[eid]
        want = "male" if person.gender == "female" else "female"
        pool = [
            pid for pid in self.person_ids
            if pid != eid and pid not in married
            and self.entities[pid].gender == want
        ]
        if not pool:
            return None
        return rng.choice(pool)

    def _make_parent(self, rng: DeterministicRng, child: WorldEntity) -> str:
        surname = child.name.split()[-1]
        gender = "female" if rng.maybe(0.5) else "male"
        pool = (
            names.FEMALE_FIRST_NAMES if gender == "female"
            else names.MALE_FIRST_NAMES
        )
        first = rng.choice(pool)
        middle = rng.choice(pool)
        name = f"{first} {middle} {surname}"
        entity = WorldEntity(
            self._new_id(), name, ["PERSON"], gender=gender,
            aliases=[name], prominence=0.3,
            in_repository=rng.maybe(0.25),
            profession_noun="parent",
        )
        self.person_ids.append(entity.entity_id)
        return self._add_entity(entity)

    def _make_child(self, rng: DeterministicRng, parent: WorldEntity) -> str:
        surname = parent.name.split()[-1]
        gender = "female" if rng.maybe(0.5) else "male"
        pool = (
            names.FEMALE_FIRST_NAMES if gender == "female"
            else names.MALE_FIRST_NAMES
        )
        name = f"{rng.choice(pool)} {surname}"
        entity = WorldEntity(
            self._new_id(), name, ["PERSON"], gender=gender,
            aliases=[name], prominence=0.2,
            in_repository=rng.maybe(0.2),
            profession_noun="child",
        )
        self.person_ids.append(entity.entity_id)
        return self._add_entity(entity)

    def _profession_facts(
        self, r: DeterministicRng, eid: str, person: WorldEntity
    ) -> None:
        primary = person.types[0]
        if primary == "ACTOR":
            for film in r.sample(self.film_ids, min(r.randint(2, 4), len(self.film_ids))):
                self._add_fact(
                    relation_id="acts_in", subject_id=eid, object_id=film,
                    time=self._random_date(r, 1995, 2016) if r.maybe(0.4) else None,
                )
            if self.character_ids and r.maybe(0.8):
                character = r.choice(self.character_ids)
                film = r.choice(self.film_ids)
                self._add_fact(
                    relation_id="plays_role_in", subject_id=eid,
                    object_id=character, object2_id=film,
                )
            self._maybe_award(r, eid)
            if r.maybe(0.4) and self.foundation_ids:
                amount = f"${r.randint(10, 900)},000"
                self._add_fact(
                    relation_id="donates_to", subject_id=eid,
                    object_id=r.choice(self.foundation_ids), amount=amount,
                    time=self._random_date(r, 2008, 2016) if r.maybe(0.5) else None,
                )
        elif primary == "MUSICAL_ARTIST":
            if self.band_ids and r.maybe(0.5):
                self._add_fact(
                    relation_id="member_of", subject_id=eid,
                    object_id=r.choice(self.band_ids),
                )
            for album in r.sample(self.album_ids, min(r.randint(1, 3), len(self.album_ids))):
                self._add_fact(
                    relation_id="records", subject_id=eid, object_id=album,
                    time=self._random_date(r, 1990, 2016) if r.maybe(0.6) else None,
                )
            if self.festival_ids:
                self._add_fact(
                    relation_id="performs_at", subject_id=eid,
                    object_id=r.choice(self.festival_ids),
                    time=self._random_date(r, 2012, 2016) if r.maybe(0.5) else None,
                )
            self._maybe_award(r, eid, probability=0.4)
        elif primary == "FOOTBALLER":
            clubs = r.sample(self.club_ids, min(r.randint(1, 2), len(self.club_ids)))
            for club in clubs:
                self._add_fact(relation_id="plays_for", subject_id=eid, object_id=club)
            if r.maybe(0.5) and self.club_ids:
                self._add_fact(
                    relation_id="joins", subject_id=eid,
                    object_id=r.choice(self.club_ids),
                    time=self._random_date(r, 2010, 2016),
                )
            self._maybe_award(r, eid, probability=0.25)
        elif primary == "POLITICIAN":
            if r.maybe(0.5):
                self._add_fact(
                    relation_id="mayor_of", subject_id=eid,
                    object_id=r.choice(self.city_ids),
                )
            if r.maybe(0.4):
                self._add_fact(
                    relation_id="praises", subject_id=eid,
                    object_id=r.choice(self.person_ids),
                )
        elif primary == "SCIENTIST":
            self._maybe_award(r, eid, probability=0.6)
        elif primary == "BUSINESSPERSON":
            if self.company_ids:
                company = r.choice(self.company_ids)
                self._add_fact(relation_id="ceo_of", subject_id=eid, object_id=company)
                if r.maybe(0.6):
                    self._add_fact(
                        relation_id="founded", subject_id=eid, object_id=company,
                        time=self._random_date(r, 1995, 2014),
                        location_id=r.choice(self.city_ids) if r.maybe(0.3) else "",
                    )
            if r.maybe(0.4) and self.foundation_ids:
                amount = f"${r.randint(1, 50)},000,000"
                self._add_fact(
                    relation_id="donates_to", subject_id=eid,
                    object_id=r.choice(self.foundation_ids), amount=amount,
                )
        elif primary == "JOURNALIST":
            if self.newspaper_ids:
                self._add_fact(
                    relation_id="works_for", subject_id=eid,
                    object_id=r.choice(self.newspaper_ids),
                )
        elif primary == "COACH":
            if self.club_ids:
                self._add_fact(
                    relation_id="coach_of", subject_id=eid,
                    object_id=r.choice(self.club_ids),
                )
        elif primary == "WRITER":
            for book in r.sample(self.book_ids, min(r.randint(1, 2), len(self.book_ids))):
                self._add_fact(
                    relation_id="writes", subject_id=eid, object_id=book,
                    time=self._random_date(r, 1990, 2016) if r.maybe(0.5) else None,
                )
            self._maybe_award(r, eid, probability=0.5)

    def _maybe_award(
        self, r: DeterministicRng, eid: str, probability: float = 0.5
    ) -> None:
        if not self.award_ids or not r.maybe(probability):
            return
        award = r.choice(self.award_ids)
        if r.maybe(0.35) and self.person_ids_by_profession.get("POLITICIAN"):
            presenter = r.choice(self.person_ids_by_profession["POLITICIAN"])
            self._add_fact(
                relation_id="receives_from", subject_id=eid,
                object_id=award, object2_id=presenter,
                time=self._random_date(r, 2000, 2016),
            )
        else:
            self._add_fact(
                relation_id="wins_award", subject_id=eid, object_id=award,
                time=self._random_date(r, 2000, 2016) if r.maybe(0.6) else None,
            )

    # ---- organization facts -------------------------------------------------

    def _make_org_facts(self, rng: DeterministicRng) -> None:
        for eid in self.club_ids + self.company_ids + self.foundation_ids:
            entity = self.entities[eid]
            if entity.home_city:
                self._add_fact(
                    relation_id="based_in", subject_id=eid,
                    object_id=entity.home_city,
                )

    # ---- trend events ---------------------------------------------------------

    _EVENT_KINDS = (
        "divorce", "award", "transfer", "premiere", "accusation",
        "concert", "founding", "derby",
    )

    def _make_events(self, rng: DeterministicRng) -> None:
        for index in range(self.config.num_events):
            r = rng.fork(f"event:{index}")
            kind = self._EVENT_KINDS[index % len(self._EVENT_KINDS)]
            date = self._random_date(r, 2015, 2016, full=True)
            event_id = f"EV{index:03d}"
            fact_ids: List[str] = []
            main: List[str] = []
            if kind == "divorce":
                couples = [
                    f for f in self.facts
                    if f.relation_id == "married_to"
                    and not any(
                        g.relation_id == "divorced_from"
                        and g.subject_id == f.subject_id
                        for g in self.facts_by_subject.get(f.subject_id, [])
                    )
                ]
                if not couples:
                    continue
                couple = r.choice(couples)
                fact = self._add_fact(
                    relation_id="divorced_from", subject_id=couple.subject_id,
                    object_id=couple.object_id, time=date, recent=True,
                )
                fact_ids.append(fact.fact_id)
                main = [couple.subject_id, couple.object_id]
                headline = "divorce filing"
            elif kind == "award":
                winner = r.choice(self.person_ids)
                award = r.choice(self.award_ids)
                presenter = r.choice(
                    self.person_ids_by_profession.get("POLITICIAN", self.person_ids)
                )
                fact = self._add_fact(
                    relation_id="receives_from", subject_id=winner,
                    object_id=award, object2_id=presenter, time=date,
                    recent=True,
                )
                fact_ids.append(fact.fact_id)
                main = [winner]
                headline = "award ceremony"
            elif kind == "transfer":
                pool = self.person_ids_by_profession.get("FOOTBALLER", [])
                if not pool or not self.club_ids:
                    continue
                player = r.choice(pool)
                club = r.choice(self.club_ids)
                fact = self._add_fact(
                    relation_id="joins", subject_id=player, object_id=club,
                    time=date, recent=True,
                )
                fact_ids.append(fact.fact_id)
                main = [player]
                headline = "transfer"
            elif kind == "premiere":
                pool = self.person_ids_by_profession.get("ACTOR", [])
                if not pool or not self.character_ids or not self.film_ids:
                    continue
                actor = r.choice(pool)
                character = r.choice(self.character_ids)
                film = r.choice(self.film_ids)
                fact = self._add_fact(
                    relation_id="plays_role_in", subject_id=actor,
                    object_id=character, object2_id=film, recent=True,
                )
                fact_ids.append(fact.fact_id)
                main = [actor, film]
                headline = "film premiere"
            elif kind == "accusation":
                target = r.choice(self.person_ids)
                accuser = self._make_accuser(r)
                spec = SPECS_BY_ID["accuses_of"]
                fact = self._add_fact(
                    relation_id="accuses_of", subject_id=accuser,
                    object_id=target,
                    literal=r.choice(list(spec.literal_object2)),
                    time=date, recent=True,
                )
                fact_ids.append(fact.fact_id)
                main = [target, accuser]
                headline = "accusation"
            elif kind == "concert":
                pool = self.person_ids_by_profession.get("MUSICAL_ARTIST", [])
                if not pool or not self.festival_ids:
                    continue
                artist = r.choice(pool)
                festival = r.choice(self.festival_ids)
                fact = self._add_fact(
                    relation_id="performs_at", subject_id=artist,
                    object_id=festival, time=date, recent=True,
                )
                fact_ids.append(fact.fact_id)
                if r.maybe(0.4):
                    oops = self._add_fact(
                        relation_id="forgets", subject_id=artist,
                        literal="the lyrics", time=date, recent=True,
                    )
                    fact_ids.append(oops.fact_id)
                main = [artist]
                headline = "concert"
            elif kind == "founding":
                pool = self.person_ids_by_profession.get("BUSINESSPERSON", [])
                if not pool or not self.company_ids:
                    continue
                founder = r.choice(pool)
                company = r.choice(self.company_ids)
                fact = self._add_fact(
                    relation_id="founded", subject_id=founder,
                    object_id=company, time=date, recent=True,
                )
                fact_ids.append(fact.fact_id)
                main = [founder, company]
                headline = "company launch"
            else:  # derby
                if len(self.club_ids) < 2:
                    continue
                home, away = r.sample(self.club_ids, 2)
                fact = self._add_fact(
                    relation_id="defeats", subject_id=home, object_id=away,
                    time=date, recent=True,
                )
                fact_ids.append(fact.fact_id)
                main = [home, away]
                headline = "derby"
            if fact_ids:
                self.events.append(
                    TrendEvent(
                        event_id=event_id, kind=kind, date=date,
                        main_entities=main, fact_ids=fact_ids,
                        headline=headline,
                    )
                )

    def _make_accuser(self, r: DeterministicRng) -> str:
        gender = "female" if r.maybe(0.5) else "male"
        pool = (
            names.FEMALE_FIRST_NAMES if gender == "female"
            else names.MALE_FIRST_NAMES
        )
        name = f"{r.choice(pool)} {r.choice(names.SURNAMES)}"
        entity = WorldEntity(
            self._new_id(), name, ["PERSON"], gender=gender,
            aliases=[name], prominence=0.1,
            in_repository=False,  # emerging entity, like Jessica Leeds
            profession_noun="accuser",
        )
        self.person_ids.append(entity.entity_id)
        self._add_entity(entity)
        return entity.entity_id

    # ------------------------------------------------------------------
    # Repository construction
    # ------------------------------------------------------------------

    def _build_repository(self) -> EntityRepository:
        repo = EntityRepository(self.type_system)
        for entity in self.entities.values():
            if not entity.in_repository:
                continue
            repo.add(
                Entity(
                    entity_id=entity.entity_id,
                    canonical_name=entity.name,
                    aliases=list(entity.aliases),
                    types=list(entity.types),
                    gender=entity.gender,
                    prominence=entity.prominence,
                )
            )
        return repo


def build_world(seed: int = 7, config: Optional[WorldConfig] = None) -> World:
    """Build the default world for ``seed`` (convenience entry point)."""
    return World(config or WorldConfig(), seed=seed)


__all__ = [
    "TrendEvent",
    "World",
    "WorldConfig",
    "WorldEntity",
    "WorldFact",
    "build_world",
]
