"""Surface realizer: world facts -> documents.

Produces two document styles:

- *Wikipedia articles*: entity-centric pages rendering the entity's
  facts (and facts pointing at it) with pronouns, short aliases,
  coordination, relative clauses, appositive descriptors and possessive
  constructions.
- *News articles*: event-centric pages led by a dated sentence about the
  trend event, followed by background facts about the participants.

Every rendered sentence is paired with the *emitted facts* it expresses
(the per-document ground truth used by the simulated assessors) and with
*anchors* mapping each named entity mention to its true entity id (the
analogue of Wikipedia href links, used for the background statistics and
the NED ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.schema import SPECS_BY_ID, Template
from repro.corpus.world import World, WorldEntity, WorldFact
from repro.utils.rng import DeterministicRng

_VOWELS = "aeiou"


def indefinite_article(noun: str) -> str:
    """Return "a" or "an" for ``noun``."""
    return "an" if noun[:1].lower() in _VOWELS else "a"


@dataclass
class EmittedFact:
    """Ground truth for one assertion expressed by a rendered sentence.

    Attributes:
        sentence_index: Sentence that carries the assertion.
        pattern: The lemmatized relation pattern the sentence realizes.
        relation_id: Canonical relation, or None for narrative assertions
            (e.g. "attended the ceremony") with no schema relation.
        subject_id: True entity id of the subject.
        args: Ordered object arguments as (kind, value) pairs with kind
            in {"entity", "literal", "time", "money"}; entity values are
            entity ids, other kinds hold normalized strings.
    """

    sentence_index: int
    pattern: str
    relation_id: Optional[str]
    subject_id: str
    args: List[Tuple[str, str]] = field(default_factory=list)

    def entity_args(self) -> List[str]:
        """Entity ids among the object arguments."""
        return [value for kind, value in self.args if kind == "entity"]


@dataclass
class MentionRecord:
    """One entity mention the realizer emitted (named or pronominal)."""

    sentence_index: int
    surface: str
    entity_id: str
    is_pronoun: bool = False


@dataclass
class RealizedDocument:
    """A rendered document plus its ground truth."""

    doc_id: str
    title: str
    sentences: List[str]
    emitted: List[EmittedFact]
    mentions: List[MentionRecord]
    source: str = "wikipedia"
    about: List[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        """Full document text."""
        return " ".join(self.sentences)

    def anchors(self) -> List[MentionRecord]:
        """Named (non-pronoun) mentions, the Wikipedia-link analogue."""
        return [m for m in self.mentions if not m.is_pronoun]


class Realizer:
    """Renders :class:`RealizedDocument` objects from a :class:`World`."""

    def __init__(self, world: World, seed: int = 101) -> None:
        self.world = world
        self._rng = DeterministicRng(seed, namespace="realizer")

    # ------------------------------------------------------------------
    # Wikipedia-style articles
    # ------------------------------------------------------------------

    def wikipedia_article(
        self, entity_id: str, max_facts: int = 10
    ) -> RealizedDocument:
        """Render the Wikipedia-style page of ``entity_id``."""
        world = self.world
        entity = world.entity(entity_id)
        r = self._rng.fork(f"wiki:{entity_id}")
        doc = RealizedDocument(
            doc_id=f"wiki:{entity_id}", title=entity.name, sentences=[],
            emitted=[], mentions=[], source="wikipedia", about=[entity_id],
        )
        state = _DocState()

        self._intro_sentence(doc, state, entity, r)

        facts = self._article_facts(entity_id, r, max_facts)
        index = 0
        while index < len(facts):
            fact = facts[index]
            # Coordination: merge two consecutive facts of the same subject.
            nxt = facts[index + 1] if index + 1 < len(facts) else None
            if (
                nxt is not None
                and fact.subject_id == nxt.subject_id
                and r.maybe(0.25)
                and self._plain_template(fact, r) is not None
                and self._plain_template(nxt, r) is not None
            ):
                self._coordinated_sentence(doc, state, fact, nxt, r)
                index += 2
                continue
            if (
                nxt is not None
                and fact.subject_id == nxt.subject_id
                and r.maybe(0.15)
                and self._plain_template(fact, r) is not None
                and self._plain_template(nxt, r) is not None
            ):
                self._relative_clause_sentence(doc, state, fact, nxt, r)
                index += 2
                continue
            self._fact_sentence(doc, state, fact, r)
            index += 1
        return doc

    def _article_facts(
        self, entity_id: str, r: DeterministicRng, max_facts: int
    ) -> List[WorldFact]:
        """Subject facts of the entity, padded with facts pointing at it."""
        world = self.world
        facts = [f for f in world.facts_of(entity_id) if not f.recent]
        if len(facts) < 3:
            inbound = [
                f for f in world.facts
                if not f.recent and entity_id in (f.object_id, f.object2_id)
            ]
            facts.extend(r.sample(inbound, min(len(inbound), max_facts - len(facts))))
        r.shuffle(facts)
        return facts[:max_facts]

    def _intro_sentence(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        entity: WorldEntity,
        r: DeterministicRng,
    ) -> None:
        world = self.world
        primary = entity.types[0]
        if world.type_system.is_subtype(primary, "PERSON") and entity.profession_noun:
            noun = entity.profession_noun
            adjective = r.choice(["famous", "renowned", "prominent", ""])
            np = f"{adjective} {noun}".strip()
            surface = self._name_mention(doc, state, entity.entity_id, r, subject=True)
            doc.sentences.append(
                f"{surface} is {indefinite_article(np)} {np}."
            )
            doc.emitted.append(
                EmittedFact(
                    sentence_index=len(doc.sentences) - 1,
                    pattern="be", relation_id=None,
                    subject_id=entity.entity_id,
                    args=[("literal", noun)],
                )
            )
            state.last_subject = entity.entity_id

    # ---- sentence builders -------------------------------------------------

    def _fact_sentence(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        fact: WorldFact,
        r: DeterministicRng,
    ) -> None:
        template = self._choose_template(fact, r)
        if template is None:
            return
        subject_surface, used_pronoun = self._subject_mention(
            doc, state, fact.subject_id, r,
            allow_pronoun=not template.possessive,
        )
        body, emitted = self._render_body(
            doc, state, fact, template, subject_surface, r,
            sentence_index=len(doc.sentences),
        )
        doc.sentences.append(_capitalize(body) + ".")
        doc.emitted.extend(emitted)
        state.last_subject = fact.subject_id

    def _coordinated_sentence(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        first: WorldFact,
        second: WorldFact,
        r: DeterministicRng,
    ) -> None:
        t1 = self._plain_template(first, r)
        t2 = self._plain_template(second, r)
        assert t1 is not None and t2 is not None
        subject_surface, _ = self._subject_mention(
            doc, state, first.subject_id, r, allow_pronoun=True
        )
        sentence_index = len(doc.sentences)
        body1, emitted1 = self._render_body(
            doc, state, first, t1, subject_surface, r, sentence_index
        )
        # Second conjunct: subject elided; object may pronominalize when
        # it repeats the first object ("married Y ... and divorced her").
        pronoun_object = (
            second.object_id
            and second.object_id == first.object_id
            and self.world.entity(second.object_id).gender in ("male", "female")
        )
        body2, emitted2 = self._render_body(
            doc, state, second, t2, "", r, sentence_index,
            elide_subject=True, pronoun_object=bool(pronoun_object),
        )
        doc.sentences.append(_capitalize(f"{body1} and {body2}") + ".")
        doc.emitted.extend(emitted1 + emitted2)
        state.last_subject = first.subject_id

    def _relative_clause_sentence(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        embedded: WorldFact,
        main: WorldFact,
        r: DeterministicRng,
    ) -> None:
        t_embedded = self._plain_template(embedded, r)
        t_main = self._plain_template(main, r)
        assert t_embedded is not None and t_main is not None
        subject_surface, _ = self._subject_mention(
            doc, state, embedded.subject_id, r, allow_pronoun=False
        )
        sentence_index = len(doc.sentences)
        body1, emitted1 = self._render_body(
            doc, state, embedded, t_embedded, "", r, sentence_index,
            elide_subject=True,
        )
        body2, emitted2 = self._render_body(
            doc, state, main, t_main, "", r, sentence_index,
            elide_subject=True,
        )
        doc.sentences.append(
            _capitalize(f"{subject_surface}, who {body1}, {body2}") + "."
        )
        doc.emitted.extend(emitted1 + emitted2)
        state.last_subject = embedded.subject_id

    def _render_body(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        fact: WorldFact,
        template: Template,
        subject_surface: str,
        r: DeterministicRng,
        sentence_index: int,
        elide_subject: bool = False,
        pronoun_object: bool = False,
        suppress_time: bool = False,
    ) -> Tuple[str, List[EmittedFact]]:
        """Fill a template; returns (clause text, emitted facts)."""
        world = self.world
        emitted: List[EmittedFact] = []
        args: List[Tuple[str, str]] = []
        values: Dict[str, str] = {}

        if fact.amount:
            values["AMOUNT"] = fact.amount
            args.append(("money", fact.amount))
        if fact.object_id:
            if pronoun_object:
                entity = world.entity(fact.object_id)
                surface = "her" if entity.gender == "female" else "him"
                doc.mentions.append(
                    MentionRecord(sentence_index, surface, fact.object_id, True)
                )
            else:
                surface = self._object_mention(
                    doc, state, fact.object_id, r, sentence_index
                )
            values["O"] = surface
            args.append(("entity", fact.object_id))
        if fact.object2_id:
            values["O2"] = self._object_mention(
                doc, state, fact.object2_id, r, sentence_index
            )
            args.append(("entity", fact.object2_id))
        if fact.literal:
            values["LIT"] = fact.literal
            args.append(("literal", fact.literal))

        text = template.text
        if elide_subject:
            text = text.replace("{S} ", "", 1).replace("{S}", "", 1)
            values["S"] = ""
        else:
            values["S"] = subject_surface
        body = text.format(**values)

        # Optional adverbial adjuncts -> higher-arity emitted facts.
        if fact.time and template.time_prep and not suppress_time and r.maybe(0.7):
            display, normalized = fact.time
            prep = "on" if normalized.count("-") == 2 else "in"
            body += f" {prep} {display}"
            args.append(("time", normalized))
        if fact.location_id and template.loc and r.maybe(0.7):
            loc_surface = self._object_mention(
                doc, state, fact.location_id, r, sentence_index
            )
            body += f" in {loc_surface}"
            args.append(("entity", fact.location_id))

        emitted.append(
            EmittedFact(
                sentence_index=sentence_index,
                pattern=template.pattern,
                relation_id=fact.relation_id,
                subject_id=fact.subject_id,
                args=args,
            )
        )
        if template.possessive:
            # The possessive construction asserts the relation; the main
            # clause of the template asserts a narrative fact about O
            # ("<O> attended the ceremony").
            narrative = _possessive_narrative(template)
            if narrative is not None and fact.object_id:
                verb, literal = narrative
                emitted.append(
                    EmittedFact(
                        sentence_index=sentence_index,
                        pattern=verb,
                        relation_id=None,
                        subject_id=fact.object_id,
                        args=[("literal", literal)],
                    )
                )
        return body, emitted

    # ---- template selection --------------------------------------------------

    def _choose_template(
        self, fact: WorldFact, r: DeterministicRng
    ) -> Optional[Template]:
        spec = SPECS_BY_ID[fact.relation_id]
        candidates = [t for t in spec.templates if self._template_ok(t, fact)]
        if not candidates:
            return None
        return r.choice(candidates)

    def _plain_template(
        self, fact: WorldFact, r: DeterministicRng
    ) -> Optional[Template]:
        """A non-possessive template (usable in conjuncts / relatives)."""
        spec = SPECS_BY_ID[fact.relation_id]
        candidates = [
            t for t in spec.templates
            if not t.possessive and self._template_ok(t, fact)
        ]
        if not candidates:
            return None
        return r.fork(fact.fact_id).choice(candidates)

    def _template_ok(self, template: Template, fact: WorldFact) -> bool:
        """Gender and argument compatibility of a template with a fact."""
        gendered = {
            "wife": "female", "husband": "male",
            "father": "male", "mother": "female",
            "son": "male", "daughter": "female",
        }
        wanted = gendered.get(template.pattern)
        if wanted is not None:
            if not fact.object_id:
                return False
            if self.world.entity(fact.object_id).gender != wanted:
                return False
        if "{O2}" in template.text and not fact.object2_id:
            return False
        if "{AMOUNT}" in template.text and not fact.amount:
            return False
        if "{LIT}" in template.text and not fact.literal:
            return False
        return True

    # ---- mentions --------------------------------------------------------------

    def _subject_mention(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        entity_id: str,
        r: DeterministicRng,
        allow_pronoun: bool,
    ) -> Tuple[str, bool]:
        """Surface form for a subject slot; may pronominalize."""
        entity = self.world.entity(entity_id)
        can_pronoun = (
            allow_pronoun
            and state.last_subject == entity_id
            and entity.gender in ("male", "female")
            and entity_id in state.seen
        )
        if can_pronoun and r.maybe(0.6):
            surface = "He" if entity.gender == "male" else "She"
            doc.mentions.append(
                MentionRecord(len(doc.sentences), surface, entity_id, True)
            )
            return surface, True
        return self._name_mention(doc, state, entity_id, r, subject=True), False

    def _name_mention(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        entity_id: str,
        r: DeterministicRng,
        subject: bool = False,
        sentence_index: Optional[int] = None,
    ) -> str:
        entity = self.world.entity(entity_id)
        first_time = entity_id not in state.seen
        state.seen.add(entity_id)
        if first_time or len(entity.aliases) == 1 or r.maybe(0.55):
            surface = entity.name
        else:
            surface = r.choice(entity.aliases[1:])
        index = len(doc.sentences) if sentence_index is None else sentence_index
        doc.mentions.append(MentionRecord(index, surface, entity_id, False))
        return surface

    def _object_mention(
        self,
        doc: RealizedDocument,
        state: "_DocState",
        entity_id: str,
        r: DeterministicRng,
        sentence_index: int,
    ) -> str:
        entity = self.world.entity(entity_id)
        surface = self._name_mention(
            doc, state, entity_id, r, sentence_index=sentence_index
        )
        # Appositive descriptor flavor: "the actress Angelina Jolie".
        if (
            surface == entity.name
            and entity.profession_noun
            and entity.profession_noun not in ("parent", "child", "accuser")
            and self.world.type_system.is_subtype(entity.types[0], "PERSON")
            and r.maybe(0.15)
        ):
            return f"the {entity.profession_noun} {surface}"
        return surface

    # ------------------------------------------------------------------
    # Custom documents (datasets)
    # ------------------------------------------------------------------

    def single_sentence(
        self,
        fact: WorldFact,
        doc_id: str,
        second: Optional[WorldFact] = None,
    ) -> RealizedDocument:
        """Render one standalone web-style sentence for a fact.

        When ``second`` (a fact of the same subject) is given, the two
        facts are coordinated into one longer sentence — web sentences
        are longer than encyclopedic ones, which is what gives the chart
        parser its runtime disadvantage in the Open IE comparison.
        """
        r = self._rng.fork(f"single:{doc_id}:{fact.fact_id}")
        doc = RealizedDocument(
            doc_id=doc_id, title="", sentences=[], emitted=[], mentions=[],
            source="web", about=[fact.subject_id],
        )
        state = _DocState()
        template = self._plain_template(fact, r) or self._choose_template(fact, r)
        if template is None:
            return doc
        second_template = None
        if second is not None and second.subject_id == fact.subject_id:
            second_template = self._plain_template(second, r)
        subject_surface = self._name_mention(
            doc, state, fact.subject_id, r, subject=True
        )
        body, emitted = self._render_body(
            doc, state, fact, template, subject_surface, r, sentence_index=0
        )
        if second_template is not None:
            body2, emitted2 = self._render_body(
                doc, state, second, second_template, "", r,
                sentence_index=0, elide_subject=True,
            )
            body = f"{body} and {body2}"
            emitted = emitted + emitted2
        doc.sentences.append(_capitalize(body) + ".")
        doc.emitted.extend(emitted)
        return doc

    def article_from_facts(
        self,
        doc_id: str,
        title: str,
        facts: Sequence[WorldFact],
        source: str = "wikia",
    ) -> RealizedDocument:
        """Render a document from an explicit fact list (Wikia-style pages)."""
        r = self._rng.fork(f"custom:{doc_id}")
        doc = RealizedDocument(
            doc_id=doc_id, title=title, sentences=[], emitted=[],
            mentions=[], source=source,
        )
        state = _DocState()
        for fact in facts:
            self._fact_sentence(doc, state, fact, r)
        return doc

    # ------------------------------------------------------------------
    # News articles
    # ------------------------------------------------------------------

    def news_article(self, event, extra_background: int = 3) -> RealizedDocument:
        """Render a news article for a :class:`TrendEvent`."""
        world = self.world
        r = self._rng.fork(f"news:{event.event_id}")
        doc = RealizedDocument(
            doc_id=f"news:{event.event_id}",
            title=f"{event.headline}",
            sentences=[], emitted=[], mentions=[], source="news",
            about=list(event.main_entities),
        )
        state = _DocState()
        facts = [self._fact_by_id(fid) for fid in event.fact_ids]

        # Lead sentence: fronted date + the main event fact.
        lead = facts[0]
        template = self._plain_template(lead, r) or self._choose_template(lead, r)
        if template is not None:
            subject_surface = self._name_mention(
                doc, state, lead.subject_id, r, subject=True
            )
            body, emitted = self._render_body(
                doc, state, lead, template, subject_surface, r,
                sentence_index=0, suppress_time=True,
            )
            display = event.date[0]
            doc.sentences.append(f"On {display}, {body}.")
            for fact in emitted:
                if not any(kind == "time" for kind, _ in fact.args):
                    fact.args.append(("time", event.date[1]))
            doc.emitted.extend(emitted)
            state.last_subject = lead.subject_id

        for fact in facts[1:]:
            self._fact_sentence(doc, state, fact, r)

        # Background sentences about the participants.
        background: List[WorldFact] = []
        for entity_id in event.main_entities:
            background.extend(
                f for f in world.facts_of(entity_id) if not f.recent
            )
        r.shuffle(background)
        for fact in background[:extra_background]:
            self._fact_sentence(doc, state, fact, r)
        return doc

    def _fact_by_id(self, fact_id: str) -> WorldFact:
        for fact in self.world.facts:
            if fact.fact_id == fact_id:
                return fact
        raise KeyError(fact_id)


@dataclass
class _DocState:
    """Per-document realization state."""

    seen: set = field(default_factory=set)
    last_subject: str = ""


def _capitalize(text: str) -> str:
    return text[:1].upper() + text[1:] if text else text


def _possessive_narrative(template: Template) -> Optional[Tuple[str, str]]:
    """(verb lemma, literal object) asserted by a possessive template."""
    mapping = {
        "attended the ceremony": ("attend", "ceremony"),
        "attended the wedding": ("attend", "wedding"),
        "visited the museum": ("visit", "museum"),
        "visited the festival": ("visit", "festival"),
        "joined the tour": ("join", "tour"),
    }
    for phrase, record in mapping.items():
        if phrase in template.text:
            return record
    return None


__all__ = [
    "EmittedFact",
    "MentionRecord",
    "RealizedDocument",
    "Realizer",
    "indefinite_article",
]
