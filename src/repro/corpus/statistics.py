"""Background (co-)occurrence statistics.

Section 2.2 of the paper: from the background corpus QKBfly derives
(a) the *link prior* — how often an anchor text points to each entity,
(b) TF-IDF *context vectors* for entities, and (c) *type signature*
statistics — how often pairs of semantic types occur under a relation
pattern in clauses whose arguments are linked. These feed the edge-weight
functions of the graph algorithm (Section 4).

Our background corpus is realized from the synthetic world, so the
anchors and argument links come from the realizer's ground truth — the
exact analogue of Wikipedia href anchors the paper exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.corpus.realizer import RealizedDocument
from repro.utils.vectors import SparseVector

_STOPWORDS: Set[str] = {
    "the", "a", "an", "is", "was", "are", "were", "be", "been", "being",
    "and", "or", "but", "in", "on", "at", "to", "of", "from", "for",
    "with", "by", "who", "which", "that", "he", "she", "it", "his", "her",
    "its", "they", "their", "them", "this", "these", "also", "as", "'s",
    ".", ",", "!", "?", ";", ":",
}


def content_tokens(text: str) -> List[str]:
    """Lower-cased tokens of ``text`` minus stopwords and punctuation."""
    from repro.nlp.tokenizer import tokenize

    return [
        tok.lower()
        for tok in tokenize(text)
        if tok.lower() not in _STOPWORDS and any(ch.isalnum() for ch in tok)
    ]


@dataclass
class BackgroundStatistics:
    """All corpus-derived statistics consumed by the edge weights."""

    # anchor text (lower) -> entity id -> count
    anchor_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # entity id -> total times it appears as an anchor target
    entity_anchor_totals: Dict[str, int] = field(default_factory=dict)
    # entity id -> TF-IDF context vector of its article
    entity_context: Dict[str, SparseVector] = field(default_factory=dict)
    # token -> document frequency
    doc_freq: Dict[str, int] = field(default_factory=dict)
    num_docs: int = 0
    # (subject type, object type, pattern) -> count
    type_pattern_counts: Dict[Tuple[str, str, str], int] = field(
        default_factory=dict
    )
    # pattern -> total count over all type pairs
    pattern_totals: Dict[str, int] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Content hash of the statistics feeding the edge weights.

        Covers the count tables that drive priors, IDF and type
        signatures; context vectors are derived from the same articles
        counted in ``doc_freq``, so any rebuild that changes them also
        changes a hashed table. Feeds the serving layer's
        ``corpus_version`` stamp.
        """
        import hashlib

        digest = hashlib.sha1()
        digest.update(str(self.num_docs).encode("utf-8"))
        for mention in sorted(self.anchor_counts):
            bucket = self.anchor_counts[mention]
            digest.update(mention.encode("utf-8"))
            for entity_id in sorted(bucket):
                digest.update(f"{entity_id}:{bucket[entity_id]}".encode("utf-8"))
        for token in sorted(self.doc_freq):
            digest.update(f"{token}:{self.doc_freq[token]}".encode("utf-8"))
        for key in sorted(self.type_pattern_counts):
            digest.update(
                f"{key}:{self.type_pattern_counts[key]}".encode("utf-8")
            )
        return digest.hexdigest()

    # ---- priors -----------------------------------------------------------

    def prior(self, mention: str, entity_id: str) -> float:
        """Link prior p(entity | anchor text), Section 4 weight (1).

        The relative frequency with which an anchor with text ``mention``
        points to ``entity_id`` in the background corpus.
        """
        bucket = self.anchor_counts.get(mention.lower().strip())
        if not bucket:
            return 0.0
        total = sum(bucket.values())
        if total == 0:
            return 0.0
        return bucket.get(entity_id, 0) / total

    # ---- context vectors -----------------------------------------------------

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``."""
        df = self.doc_freq.get(token, 0)
        return math.log((self.num_docs + 1) / (df + 1)) + 1.0

    def tfidf_vector(self, tokens: Iterable[str]) -> SparseVector:
        """TF-IDF vector over a token stream (stopwords assumed removed)."""
        tf = SparseVector.from_counts(tokens)
        return SparseVector({k: v * self.idf(k) for k, v in tf.items()})

    def context_of(self, entity_id: str) -> SparseVector:
        """Pre-computed TF-IDF context vector of an entity's article."""
        return self.entity_context.get(entity_id, SparseVector())

    # ---- type signatures ---------------------------------------------------

    def type_signature(
        self, subject_type: str, object_type: str, pattern: str
    ) -> float:
        """Relative frequency of a type pair under a relation pattern.

        Section 4 weight (2), ``ts(e_ij, e_tk, r_it)``: the fraction of
        background clauses with pattern ``pattern`` whose linked
        arguments carry the given types.
        """
        total = self.pattern_totals.get(pattern, 0)
        if total == 0:
            return 0.0
        count = self.type_pattern_counts.get(
            (subject_type, object_type, pattern), 0
        )
        return count / total


def compute_statistics(
    world, documents: Sequence[RealizedDocument]
) -> BackgroundStatistics:
    """Aggregate background statistics from realized documents.

    Anchors come from the realizer's mention records (the Wikipedia-link
    analogue); type-pattern counts from emitted facts whose subject and
    first object are linked entities — exactly the clauses the paper
    keeps ("clauses in which all arguments are mapped to Wikipedia
    entities, or are recognized as either names or time expressions").
    """
    stats = BackgroundStatistics()
    article_tokens: Dict[str, List[str]] = {}

    for doc in documents:
        tokens = content_tokens(doc.text)
        stats.num_docs += 1
        for token in set(tokens):
            stats.doc_freq[token] = stats.doc_freq.get(token, 0) + 1
        for about in doc.about:
            article_tokens.setdefault(about, []).extend(tokens)

        for mention in doc.anchors():
            key = mention.surface.lower()
            bucket = stats.anchor_counts.setdefault(key, {})
            bucket[mention.entity_id] = bucket.get(mention.entity_id, 0) + 1
            stats.entity_anchor_totals[mention.entity_id] = (
                stats.entity_anchor_totals.get(mention.entity_id, 0) + 1
            )
            # Sub-alias counting: "Brad Pitt" also counts for "Pitt",
            # which is how anchor statistics behave on Wikipedia.
            entity = world.entities.get(mention.entity_id)
            if entity is not None:
                for alias in entity.aliases:
                    if alias.lower() != key and alias.lower() in mention.surface.lower():
                        sub = stats.anchor_counts.setdefault(alias.lower(), {})
                        sub[mention.entity_id] = sub.get(mention.entity_id, 0) + 1

        for emitted in doc.emitted:
            subject = world.entities.get(emitted.subject_id)
            if subject is None:
                continue
            entity_args = emitted.entity_args()
            if not entity_args:
                continue
            first_object = world.entities.get(entity_args[0])
            if first_object is None:
                continue
            for s_type in world.type_system.with_ancestors(subject.types[0]):
                for o_type in world.type_system.with_ancestors(
                    first_object.types[0]
                ):
                    key = (s_type, o_type, emitted.pattern)
                    stats.type_pattern_counts[key] = (
                        stats.type_pattern_counts.get(key, 0) + 1
                    )
            stats.pattern_totals[emitted.pattern] = (
                stats.pattern_totals.get(emitted.pattern, 0) + 1
            )

    for entity_id, tokens in article_tokens.items():
        stats.entity_context[entity_id] = stats.tfidf_vector(tokens)
    return stats


__all__ = ["BackgroundStatistics", "compute_statistics", "content_tokens"]
