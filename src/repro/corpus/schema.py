"""Relation schema: canonical relations, paraphrase synsets and templates.

Each :class:`RelationSpec` defines one canonical relation of the world:
its semantic type signature, the lemmatized paraphrase patterns (the
PATTY synset), and the surface templates the realizer renders. Templates
and patterns are written to be mutually consistent: a sentence produced
from a template, run through the full pipeline + clause detection, yields
the template's ``pattern`` as the lemmatized relation pattern.

Relations marked ``in_patty=False`` are *not* registered in the pattern
repository — extracting them exercises the "new relation" path of the
canonicalization stage (Section 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Template:
    """One surface realization of a relation.

    Placeholders: ``{S}`` subject, ``{O}`` object, ``{O2}`` second object
    (ternary relations), ``{AMOUNT}`` money literal, ``{LIT}`` plain
    literal. ``time_prep`` / ``loc`` control optional adverbial adjuncts
    the realizer may append ("in 2014", "in Marwick"), which turn the
    fact into a higher-arity extraction.
    """

    text: str
    pattern: str
    time_prep: str = ""      # "" = no time adjunct allowed; else "in"/"on"
    loc: bool = False
    possessive: bool = False  # rendered via the "'s <noun>" construction


@dataclass(frozen=True)
class RelationSpec:
    """A canonical relation of the synthetic world."""

    relation_id: str
    display: str
    subject_type: str
    object_type: str
    patterns: Tuple[str, ...]
    templates: Tuple[Template, ...]
    symmetric: bool = False
    object2_type: str = ""    # non-empty for ternary relations
    amount: bool = False      # object is a money literal
    literal_object2: Tuple[str, ...] = ()  # literal fillers for {LIT}
    in_patty: bool = True


def _spec(
    relation_id: str,
    display: str,
    subject_type: str,
    object_type: str,
    patterns: List[str],
    templates: List[Template],
    **kwargs,
) -> RelationSpec:
    return RelationSpec(
        relation_id=relation_id,
        display=display,
        subject_type=subject_type,
        object_type=object_type,
        patterns=tuple(patterns),
        templates=tuple(templates),
        **kwargs,
    )


RELATION_SPECS: Tuple[RelationSpec, ...] = (
    _spec(
        "born_in", "born in", "PERSON", "CITY",
        ["be born in", "hail from", "be native of"],
        [
            Template("{S} was born in {O}", "be born in", time_prep="on"),
            Template("{S} hails from {O}", "hail from"),
        ],
    ),
    _spec(
        "born_to", "born to", "PERSON", "PERSON",
        ["be born to", "be son of", "be daughter of", "father", "mother"],
        [
            Template("{S} was born to {O}", "be born to"),
            Template("{S}'s father {O} attended the ceremony", "father",
                     possessive=True),
            Template("{S}'s mother {O} attended the wedding", "mother",
                     possessive=True),
        ],
    ),
    _spec(
        "parent_of", "parent of", "PERSON", "PERSON",
        ["son", "daughter", "adopt", "have child"],
        [
            Template("{S} adopted {O}", "adopt", time_prep="in"),
            Template("{S}'s son {O} visited the museum", "son",
                     possessive=True),
            Template("{S}'s daughter {O} visited the festival", "daughter",
                     possessive=True),
        ],
    ),
    _spec(
        "married_to", "married to", "PERSON", "PERSON",
        ["marry", "be married to", "wed", "tie the knot with",
         "wife", "husband", "ex-wife", "ex-husband", "spouse"],
        [
            Template("{S} married {O}", "marry", time_prep="in", loc=True),
            Template("{S} is married to {O}", "be married to"),
            Template("{S} wed {O}", "wed", time_prep="in"),
            Template("{S}'s wife {O} joined the tour", "wife",
                     possessive=True),
            Template("{S}'s husband {O} joined the tour", "husband",
                     possessive=True),
        ],
        symmetric=True,
    ),
    _spec(
        "divorced_from", "divorced from", "PERSON", "PERSON",
        ["divorce", "file for divorce from", "split from"],
        [
            Template("{S} divorced {O}", "divorce", time_prep="in"),
            Template("{S} filed for divorce from {O}",
                     "file for divorce from", time_prep="on"),
            Template("{S} split from {O}", "split from", time_prep="in"),
        ],
        symmetric=True,
    ),
    _spec(
        "plays_role_in", "plays role in", "ACTOR", "CHARACTER",
        ["play in", "portray in"],
        [
            Template("{S} played {O} in {O2}", "play in"),
            Template("{S} portrayed {O} in {O2}", "portray in"),
        ],
        object2_type="FILM",
    ),
    _spec(
        "acts_in", "acts in", "ACTOR", "FILM",
        ["star in", "appear in", "have role in", "act in"],
        [
            Template("{S} starred in {O}", "star in", time_prep="in"),
            Template("{S} appeared in {O}", "appear in"),
        ],
    ),
    _spec(
        "directed", "directed", "DIRECTOR", "FILM",
        ["direct", "be director of"],
        [Template("{S} directed {O}", "direct", time_prep="in")],
    ),
    _spec(
        "wins_award", "wins", "PERSON", "AWARD",
        ["win", "be awarded"],
        [
            Template("{S} won the {O}", "win", time_prep="in"),
        ],
    ),
    _spec(
        "receives_from", "receives from", "PERSON", "AWARD",
        ["receive from", "receive"],
        [
            Template("{S} received the {O} from {O2}", "receive from",
                     time_prep="in"),
        ],
        object2_type="PERSON",
    ),
    _spec(
        "donates_to", "donates to", "PERSON", "FOUNDATION",
        ["donate to", "give to", "contribute to"],
        [
            Template("{S} donated {AMOUNT} to {O}", "donate to",
                     time_prep="in"),
            Template("{S} gave {AMOUNT} to {O}", "give to"),
        ],
        amount=True,
    ),
    _spec(
        "plays_for", "plays for", "FOOTBALLER", "FOOTBALL_CLUB",
        ["play for", "sign for"],
        [
            Template("{S} plays for {O}", "play for"),
            Template("{S} signed for {O}", "sign for", time_prep="in"),
        ],
    ),
    _spec(
        "joins", "joins", "PERSON", "ORGANIZATION",
        ["join", "transfer to"],
        [Template("{S} joined {O}", "join", time_prep="in")],
    ),
    _spec(
        "ceo_of", "CEO of", "BUSINESSPERSON", "COMPANY",
        ["be ceo of", "lead", "head"],
        [
            Template("{S} is the ceo of {O}", "be ceo of"),
            Template("{S} leads {O}", "lead"),
        ],
    ),
    _spec(
        "founded", "founded", "BUSINESSPERSON", "COMPANY",
        ["found", "establish", "co-found", "launch"],
        [
            Template("{S} founded {O}", "found", time_prep="in", loc=True),
            Template("{S} established {O}", "establish", time_prep="in"),
            Template("{S} launched {O}", "launch", time_prep="in"),
        ],
    ),
    _spec(
        "studied_at", "studied at", "PERSON", "UNIVERSITY",
        ["study at", "graduate from", "enroll at"],
        [
            Template("{S} studied at {O}", "study at"),
            Template("{S} graduated from {O}", "graduate from",
                     time_prep="in"),
            Template("{S} enrolled at {O}", "enroll at", time_prep="in"),
        ],
    ),
    _spec(
        "based_in", "based in", "ORGANIZATION", "CITY",
        ["be based in", "be headquartered in"],
        [
            Template("{S} is based in {O}", "be based in"),
            Template("{S} is headquartered in {O}", "be headquartered in"),
        ],
    ),
    _spec(
        "city_in", "city in", "CITY", "COUNTRY",
        ["be city in", "lie in", "be town in"],
        [
            Template("{S} is a city in {O}", "be city in"),
            Template("{S} lies in {O}", "lie in"),
        ],
    ),
    _spec(
        "capital_of", "capital of", "CITY", "COUNTRY",
        ["be capital of"],
        [Template("{S} is the capital of {O}", "be capital of")],
    ),
    _spec(
        "performs_at", "performs at", "MUSICAL_ARTIST", "FESTIVAL",
        ["perform at", "headline"],
        [
            Template("{S} performed at {O}", "perform at", time_prep="in"),
            Template("{S} headlined {O}", "headline", time_prep="in"),
        ],
    ),
    _spec(
        "records", "records", "MUSICAL_ARTIST", "ALBUM",
        ["record", "release"],
        [
            Template("{S} released {O}", "release", time_prep="in"),
            Template("{S} recorded {O}", "record", time_prep="in"),
        ],
    ),
    _spec(
        "member_of", "member of", "MUSICAL_ARTIST", "BAND",
        ["be member of", "sing in"],
        [Template("{S} is a member of {O}", "be member of")],
    ),
    _spec(
        "writes", "writes", "WRITER", "BOOK",
        ["write", "publish"],
        [
            Template("{S} wrote {O}", "write", time_prep="in"),
            Template("{S} published {O}", "publish", time_prep="in"),
        ],
    ),
    _spec(
        "supports", "supports", "PERSON", "FOUNDATION",
        ["support", "back", "endorse"],
        [
            Template("{S} supports {O}", "support"),
            Template("{S} endorses {O}", "endorse"),
        ],
    ),
    _spec(
        "lives_in", "lives in", "PERSON", "CITY",
        ["live in", "reside in", "move to"],
        [
            Template("{S} lives in {O}", "live in"),
            Template("{S} resides in {O}", "reside in"),
            Template("{S} moved to {O}", "move to", time_prep="in"),
        ],
    ),
    _spec(
        "works_for", "works for", "JOURNALIST", "NEWSPAPER",
        ["work for", "report for", "write for"],
        [
            Template("{S} works for {O}", "work for"),
            Template("{S} reports for {O}", "report for"),
        ],
    ),
    _spec(
        "accuses_of", "accuses of", "PERSON", "PERSON",
        ["accuse of"],
        [Template("{S} accused {O} of {LIT}", "accuse of", time_prep="on")],
        literal_object2=("fraud", "plagiarism", "negligence", "corruption"),
    ),
    _spec(
        "coach_of", "coaches", "COACH", "FOOTBALL_CLUB",
        ["coach", "manage", "train"],
        [
            Template("{S} coaches {O}", "coach"),
            Template("{S} manages {O}", "manage"),
        ],
    ),
    _spec(
        "mayor_of", "mayor of", "POLITICIAN", "CITY",
        ["be mayor of", "govern"],
        [
            Template("{S} is the mayor of {O}", "be mayor of"),
            Template("{S} governs {O}", "govern"),
        ],
    ),
    _spec(
        "defeats", "defeats", "FOOTBALL_CLUB", "FOOTBALL_CLUB",
        ["defeat", "beat"],
        [Template("{S} defeated {O}", "defeat", time_prep="on", loc=True)],
    ),
    # ---- relations NOT in the pattern repository: the "new relation"
    # path of the canonicalization stage.
    _spec(
        "visits", "visits", "PERSON", "CITY",
        ["visit"],
        [Template("{S} visited {O}", "visit", time_prep="in")],
        in_patty=False,
    ),
    _spec(
        "praises", "praises", "PERSON", "PERSON",
        ["praise"],
        [Template("{S} praised {O}", "praise")],
        in_patty=False,
    ),
    _spec(
        "shoots", "shoots", "PERSON", "PERSON",
        ["shoot"],
        [Template("{S} shot {O}", "shoot", time_prep="on", loc=True)],
        in_patty=False,
    ),
    _spec(
        "forgets", "forgets", "PERSON", "MISC",
        ["forget"],
        [Template("{S} forgot the lyrics", "forget")],
        in_patty=False,
    ),
)

SPECS_BY_ID: Dict[str, RelationSpec] = {
    spec.relation_id: spec for spec in RELATION_SPECS
}


def patty_specs() -> List[RelationSpec]:
    """Specs registered in the pattern repository."""
    return [spec for spec in RELATION_SPECS if spec.in_patty]


def build_pattern_repository():
    """Instantiate a :class:`repro.kb.pattern_repository.PatternRepository`."""
    from repro.kb.pattern_repository import PatternRepository, Relation

    repo = PatternRepository()
    for spec in patty_specs():
        repo.add(
            Relation(
                relation_id=spec.relation_id,
                display_name=spec.display,
                patterns=list(spec.patterns),
                signature=(spec.subject_type, spec.object_type),
                symmetric=spec.symmetric,
                arity_hint=3 if spec.object2_type or spec.amount else 2,
            )
        )
    return repo


__all__ = [
    "RELATION_SPECS",
    "SPECS_BY_ID",
    "RelationSpec",
    "Template",
    "build_pattern_repository",
    "patty_specs",
]
