"""Document retrieval: the Wikipedia / Google-News search stand-in.

QKBfly retrieves relevant source documents for a query (Section 2.2,
"Stage 1" inputs; Appendix B step 1). We index the realized document
collection with BM25 and expose the two channels the paper's demo offers:
``wikipedia`` (entity pages) and ``news`` (event articles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.corpus.realizer import RealizedDocument, Realizer
from repro.corpus.statistics import content_tokens
from repro.corpus.world import World


class Bm25Index:
    """A compact in-memory BM25 (Okapi) index."""

    def __init__(self, k1: float = 1.5, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, Dict[str, int]] = {}
        self._doc_len: Dict[str, int] = {}
        self._total_len = 0

    def add(self, doc_id: str, tokens: Sequence[str]) -> None:
        """Index a document given its (already normalized) tokens."""
        if doc_id in self._doc_len:
            raise ValueError(f"duplicate document id {doc_id!r}")
        self._doc_len[doc_id] = len(tokens)
        self._total_len += len(tokens)
        for token in tokens:
            bucket = self._postings.setdefault(token, {})
            bucket[doc_id] = bucket.get(doc_id, 0) + 1

    def __len__(self) -> int:
        return len(self._doc_len)

    def search(self, query_tokens: Sequence[str], k: int = 10) -> List[Tuple[str, float]]:
        """Top-``k`` (doc id, BM25 score) for the query tokens."""
        n = len(self._doc_len)
        if n == 0:
            return []
        avg_len = self._total_len / n
        scores: Dict[str, float] = {}
        for token in query_tokens:
            postings = self._postings.get(token)
            if not postings:
                continue
            df = len(postings)
            idf = math.log(1 + (n - df + 0.5) / (df + 0.5))
            for doc_id, tf in postings.items():
                length_norm = 1 - self.b + self.b * self._doc_len[doc_id] / avg_len
                score = idf * tf * (self.k1 + 1) / (tf + self.k1 * length_norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + score
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


@dataclass
class SearchEngine:
    """Query-driven retrieval over the synthetic collection.

    Two channels mirror the demo UI: ``wikipedia`` restricts to entity
    pages (en.wikipedia.org in the paper), ``news`` to event articles
    (bbc.com in the paper). Titles are up-weighted by indexing them
    twice, the standard cheap trick.
    """

    world: World
    wikipedia_docs: Dict[str, RealizedDocument] = field(default_factory=dict)
    news_docs: Dict[str, RealizedDocument] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._wiki_index = Bm25Index()
        self._news_index = Bm25Index()
        for doc_id, doc in self.wikipedia_docs.items():
            self._wiki_index.add(doc_id, self._doc_tokens(doc))
        for doc_id, doc in self.news_docs.items():
            self._news_index.add(doc_id, self._doc_tokens(doc))

    @classmethod
    def from_world(
        cls,
        world: World,
        wikipedia_docs: Sequence[RealizedDocument],
        realizer_seed: int = 4099,
    ) -> "SearchEngine":
        """Build the engine from background articles + realized news."""
        realizer = Realizer(world, seed=realizer_seed)
        news = [realizer.news_article(event) for event in world.events]
        return cls(
            world=world,
            wikipedia_docs={d.doc_id: d for d in wikipedia_docs},
            news_docs={d.doc_id: d for d in news},
        )

    @staticmethod
    def _doc_tokens(doc: RealizedDocument) -> List[str]:
        return content_tokens(doc.title) * 2 + content_tokens(doc.text)

    def search(
        self, query: str, source: str = "wikipedia", k: int = 10
    ) -> List[RealizedDocument]:
        """Top-``k`` documents for a free-text query on one channel."""
        tokens = content_tokens(query)
        if source == "wikipedia":
            ranked = self._wiki_index.search(tokens, k)
            return [self.wikipedia_docs[doc_id] for doc_id, _ in ranked]
        if source == "news":
            ranked = self._news_index.search(tokens, k)
            return [self.news_docs[doc_id] for doc_id, _ in ranked]
        raise ValueError(f"unknown source {source!r}")


__all__ = ["Bm25Index", "SearchEngine"]
