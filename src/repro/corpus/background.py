"""Background corpus: the Wikipedia-dump stand-in.

Realizes one Wikipedia-style article per repository entity, computes the
background statistics over them, and caches the result per (seed,
config) so benchmarks and tests share one build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.corpus.realizer import RealizedDocument, Realizer
from repro.corpus.statistics import BackgroundStatistics, compute_statistics
from repro.corpus.world import World


@dataclass
class BackgroundCorpus:
    """The realized background corpus plus its statistics."""

    documents: List[RealizedDocument]
    statistics: BackgroundStatistics
    by_entity: Dict[str, RealizedDocument]

    def article_of(self, entity_id: str) -> Optional[RealizedDocument]:
        """The Wikipedia-style article about ``entity_id`` (if any)."""
        return self.by_entity.get(entity_id)


def build_background_corpus(
    world: World, use_cache: bool = True
) -> BackgroundCorpus:
    """Realize articles for every repository entity and compute statistics.

    The result is cached on the world instance: rebuilding it would
    always produce the identical corpus (the realizer is seeded from the
    world seed), so sharing is safe.
    """
    if use_cache:
        cached = getattr(world, "_background_corpus", None)
        if cached is not None:
            return cached

    realizer = Realizer(world, seed=world.seed * 7919 + 13)
    documents: List[RealizedDocument] = []
    by_entity: Dict[str, RealizedDocument] = {}
    for entity in world.entities.values():
        if not entity.in_repository:
            continue
        doc = realizer.wikipedia_article(entity.entity_id)
        if not doc.sentences:
            continue
        documents.append(doc)
        by_entity[entity.entity_id] = doc

    statistics = compute_statistics(world, documents)
    corpus = BackgroundCorpus(
        documents=documents, statistics=statistics, by_entity=by_entity
    )
    if use_cache:
        world._background_corpus = corpus
    return corpus


__all__ = ["BackgroundCorpus", "build_background_corpus"]
