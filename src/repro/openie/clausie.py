"""ClausIE-style clause detection over labeled dependency trees.

For every verb in the sentence (main verb, verbal conjuncts, relative-
clause verbs) the detector assembles the verb group (auxiliaries +
content verb), finds the constituents from dependency labels, inherits
subjects across coordination and relative clauses, classifies the clause
into one of the seven Quirk types, and emits :class:`Clause` objects.
``propositions()`` flattens clauses into Open-IE-style n-ary extractions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.nlp.dependency import ROOT, coarse
from repro.nlp.tokens import Sentence, Span, Token
from repro.openie.clauses import Clause, Constituent, Proposition

#: Version stamp of the extraction algorithm, folded into the stage
#: cache's content-addressed signatures (docs/PIPELINE.md): the
#: detector is stateless and configuration-free, so this constant is
#: its entire configuration digest. Bump it whenever a change here (or
#: in repro.openie.clauses) alters extraction output, or cached clause
#: lists from the old algorithm would be served as if current.
EXTRACTOR_VERSION = "clausie-1"

_COPULAS = {"be"}
_NOMINAL = {"NN", "NNS", "NNP", "NNPS", "CD", "PRP"}
# Labels whose subtrees are *not* part of an argument span: they carry
# their own clauses or separate assertions.
_EXCLUDED_FROM_ARGS = {"acl:relcl", "appos", "conj", "cc", "punct", "ccomp"}


class ClausIE:
    """Clause detector. Stateless; safe to share across threads."""

    def extract(self, sentence: Sentence) -> List[Clause]:
        """Detect all clauses of an annotated sentence."""
        tokens = sentence.tokens
        children = _children_index(tokens)
        verbs = self._clause_verbs(tokens, children)
        clauses: List[Clause] = []
        index_of: Dict[int, int] = {}
        for verb in verbs:
            clause = self._build_clause(sentence, children, verb)
            if clause is not None:
                index_of[verb] = len(clauses)
                clauses.append(clause)
        # Wire parent links: conj / relcl / ccomp clauses depend on the
        # clause of their governing verb.
        for verb, position in index_of.items():
            token = tokens[verb]
            if token.deprel in ("conj", "ccomp") and token.head in index_of:
                clauses[position].parent = index_of[token.head]
            elif token.deprel == "acl:relcl":
                governor = self._governing_verb(tokens, token.head)
                if governor is not None and governor in index_of:
                    clauses[position].parent = index_of[governor]
        return clauses

    def propositions(self, sentence: Sentence) -> List[Proposition]:
        """Open-IE-style n-ary extractions for one sentence."""
        out: List[Proposition] = []
        for clause in self.extract(sentence):
            proposition = self._flatten(clause)
            if proposition is not None:
                proposition.sentence_index = sentence.index
                out.append(proposition)
        return out

    # ------------------------------------------------------------------
    # Verb discovery
    # ------------------------------------------------------------------

    def _clause_verbs(
        self, tokens: Sequence[Token], children: Dict[int, List[int]]
    ) -> List[int]:
        """Indices of content verbs that head a clause."""
        from repro.nlp.lexicon import AUXILIARIES

        verbs: List[int] = []
        for i, token in enumerate(tokens):
            if coarse(token.pos) != "V":
                continue
            if token.deprel in ("aux", "auxpass"):
                # Only genuine auxiliaries are part of a verb group; a
                # content verb mislabeled as aux still heads a clause.
                if token.lower() in AUXILIARIES or token.pos == "MD":
                    continue
            if token.deprel in (
                "root", "conj", "acl:relcl", "ccomp", "pcomp", "dep",
                "aux", "auxpass",
            ):
                verbs.append(i)
        return verbs

    def _governing_verb(
        self, tokens: Sequence[Token], index: int
    ) -> Optional[int]:
        """Nearest verb ancestor of ``index``."""
        node = index
        seen = set()
        while node != ROOT and node not in seen:
            seen.add(node)
            node = tokens[node].head
            if node != ROOT and coarse(tokens[node].pos) == "V":
                return node
        return None

    # ------------------------------------------------------------------
    # Clause assembly
    # ------------------------------------------------------------------

    def _build_clause(
        self,
        sentence: Sentence,
        children: Dict[int, List[int]],
        verb: int,
    ) -> Optional[Clause]:
        tokens = sentence.tokens
        kids = children.get(verb, [])

        aux = [i for i in kids if tokens[i].deprel == "aux" and i < verb]
        verb_start = min(aux) if aux else verb
        passive = (
            tokens[verb].pos == "VBN"
            and any(tokens[i].lemma == "be" for i in aux)
        )
        negation_scope = list(kids)
        for i in aux:
            negation_scope.extend(children.get(i, []))
        negated = any(
            tokens[i].lower() in ("not", "n't") for i in negation_scope
        )

        subject = self._find_subject(sentence, children, verb)
        objects: List[Constituent] = []
        complement: Optional[Constituent] = None
        adverbials: List[Constituent] = []

        for child in kids:
            rel = tokens[child].deprel
            if rel in ("dobj", "iobj"):
                role = "IO" if rel == "iobj" else "O"
                objects.append(
                    self._nominal_constituent(sentence, children, child, role)
                )
            elif rel in ("attr", "acomp", "xcomp"):
                complement = self._nominal_constituent(
                    sentence, children, child, "C"
                )
            elif rel == "prep":
                adverbial = self._prep_constituent(sentence, children, child)
                if adverbial is not None:
                    adverbials.append(adverbial)
            elif rel == "advmod" and tokens[child].lower() not in ("not", "n't"):
                adverbials.append(
                    Constituent(
                        role="A",
                        span=Span(child, child + 1),
                        head=child,
                        kind="literal",
                    )
                )

        # Order objects: indirect before direct per SVOO convention.
        objects.sort(key=lambda c: (c.role != "IO", c.span.start))
        # Time adverbials last, matching the argument order of the
        # paper's higher-arity fact examples.
        adverbials.sort(key=lambda c: (c.kind == "time", c.span.start))

        clause_type = self._classify(subject, objects, complement, adverbials)
        if clause_type is None:
            return None
        return Clause(
            sentence=sentence,
            clause_type=clause_type,
            verb_span=Span(verb_start, verb + 1),
            verb_lemma=tokens[verb].lemma,
            subject=subject,
            objects=objects,
            complement=complement,
            adverbials=adverbials,
            negated=negated,
            passive=passive,
        )

    def _find_subject(
        self,
        sentence: Sentence,
        children: Dict[int, List[int]],
        verb: int,
    ) -> Optional[Constituent]:
        tokens = sentence.tokens
        for child in children.get(verb, []):
            if tokens[child].deprel != "nsubj":
                continue
            # Time expressions and amounts cannot be clause subjects; a
            # misparsed fronted adverbial falls through to inheritance.
            if tokens[child].ner in ("TIME", "MONEY"):
                continue
            if coarse(tokens[child].pos) == "W":
                # Relativizer subject: the true subject is the antecedent
                # noun the relative clause attaches to; when the parser
                # attached the clause elsewhere, fall back to the nearest
                # preceding noun, then to subject inheritance.
                antecedent = self._relcl_antecedent(tokens, verb)
                if antecedent is None:
                    antecedent = self._nearest_preceding_noun(tokens, child)
                if antecedent is not None:
                    return self._nominal_constituent(
                        sentence, children, antecedent, "S"
                    )
                break
            return self._nominal_constituent(sentence, children, child, "S")
        # Subject misattached to an auxiliary of this verb group.
        for child in children.get(verb, []):
            if tokens[child].deprel in ("aux", "auxpass"):
                for grandchild in children.get(child, []):
                    if tokens[grandchild].deprel == "nsubj":
                        return self._nominal_constituent(
                            sentence, children, grandchild, "S"
                        )
        # Inherited subject: coordination and relative clauses.
        token = tokens[verb]
        if token.deprel in ("conj", "ccomp") and token.head != ROOT:
            return self._find_subject(sentence, children, token.head)
        if token.deprel == "acl:relcl" and token.head != ROOT:
            return self._nominal_constituent(sentence, children, token.head, "S")
        return None

    def _relcl_antecedent(
        self, tokens: Sequence[Token], verb: int
    ) -> Optional[int]:
        head = tokens[verb].head
        if head != ROOT and coarse(tokens[head].pos) == "N":
            return head
        return None

    @staticmethod
    def _nearest_preceding_noun(
        tokens: Sequence[Token], index: int
    ) -> Optional[int]:
        for j in range(index - 1, -1, -1):
            if coarse(tokens[j].pos) == "N" and tokens[j].pos != "PRP":
                return j
        return None

    def _nominal_constituent(
        self,
        sentence: Sentence,
        children: Dict[int, List[int]],
        head: int,
        role: str,
    ) -> Constituent:
        tokens = sentence.tokens
        kind = "np"
        normalized = ""
        if tokens[head].ner == "TIME":
            kind = "time"
            # Use the full time-mention span and its normalized value.
            span = None
            for time_span in sentence.time_mentions:
                if time_span.contains(head):
                    span = Span(time_span.start, time_span.end)
                    normalized = sentence.time_values.get(time_span.start, "")
                    break
            if span is None:
                span = _argument_span(tokens, children, head)
        else:
            span = _argument_span(tokens, children, head)
            if tokens[head].ner == "MONEY":
                kind = "money"
            elif tokens[head].pos == "PRP":
                kind = "pronoun"
            elif tokens[head].pos not in _NOMINAL:
                kind = "literal"
        return Constituent(
            role=role, span=span, head=head, kind=kind, normalized=normalized
        )

    def _prep_constituent(
        self,
        sentence: Sentence,
        children: Dict[int, List[int]],
        prep: int,
    ) -> Optional[Constituent]:
        tokens = sentence.tokens
        pobj = None
        for child in children.get(prep, []):
            if tokens[child].deprel in ("pobj", "pcomp"):
                pobj = child
                break
        if pobj is None:
            return None
        constituent = self._nominal_constituent(sentence, children, pobj, "A")
        constituent.preposition = tokens[prep].lemma
        return constituent

    @staticmethod
    def _classify(
        subject: Optional[Constituent],
        objects: List[Constituent],
        complement: Optional[Constituent],
        adverbials: List[Constituent],
    ) -> Optional[str]:
        if subject is None:
            return None
        has_object = any(c.role == "O" for c in objects)
        has_indirect = any(c.role == "IO" for c in objects)
        if complement is not None:
            return "SVOC" if has_object else "SVC"
        if has_object and has_indirect:
            return "SVOO"
        if has_object and adverbials:
            return "SVOA"
        if has_object:
            return "SVO"
        if adverbials:
            return "SVA"
        return "SV"

    # ------------------------------------------------------------------
    # Proposition flattening
    # ------------------------------------------------------------------

    def _flatten(self, clause: Clause) -> Optional[Proposition]:
        sentence = clause.sentence
        if clause.subject is None:
            return None
        subject_text = clause.subject.text(sentence)
        arguments: List[Tuple[str, str]] = []
        primary_prep = ""
        for adverbial in clause.adverbials:
            if not primary_prep and adverbial.preposition and adverbial.kind in (
                "np", "pronoun",
            ):
                primary_prep = adverbial.preposition
        # Copula + nominal complement + PP folds into the pattern:
        # "is the mayor of Marwick" -> ("be mayor of", Marwick).
        folded_complement = (
            clause.verb_lemma in _COPULAS
            and clause.complement is not None
            and clause.complement.kind in ("np", "literal")
            and bool(primary_prep)
        )
        for constituent in clause.objects:
            arguments.append((constituent.text(sentence), constituent.kind))
        if clause.complement is not None and not folded_complement:
            arguments.append(
                (clause.complement.text(sentence), clause.complement.kind)
            )
        for adverbial in clause.adverbials:
            arguments.append((adverbial.text(sentence), adverbial.kind))
        if not arguments:
            return None
        # Pattern: verb lemma, optionally with the preposition of the
        # first nominal (non-time) adverbial ("donate to", "star in").
        # With only time adverbials the bare verb pattern is kept.
        if folded_complement:
            complement_head = sentence.tokens[clause.complement.head]
            pattern = f"be {complement_head.lemma} {primary_prep}"
        else:
            pattern = clause.pattern(primary_prep)
        if clause.negated:
            pattern = f"not {pattern}"
        return Proposition(
            subject=subject_text,
            pattern=pattern,
            arguments=arguments,
            clause_type=clause.clause_type,
        )


def _children_index(tokens: Sequence[Token]) -> Dict[int, List[int]]:
    children: Dict[int, List[int]] = {}
    for i, token in enumerate(tokens):
        children.setdefault(token.head, []).append(i)
    return children


def _argument_span(
    tokens: Sequence[Token],
    children: Dict[int, List[int]],
    head: int,
) -> Span:
    """Contiguous span of the argument subtree rooted at ``head``.

    Excludes clausal/appositive/coordinated dependents (they become their
    own clauses) and trailing prepositional modifiers of non-head nouns
    are kept only if they fall inside the contiguous core.
    """
    keep = {head}
    stack = [head]
    while stack:
        node = stack.pop()
        for child in children.get(node, []):
            rel = tokens[child].deprel
            if rel in _EXCLUDED_FROM_ARGS:
                continue
            # Prepositional modifiers stay inside object spans ("the
            # University of Marwick") but a verb inside would be clausal.
            if coarse(tokens[child].pos) == "V":
                continue
            keep.add(child)
            stack.append(child)
    start = min(keep)
    end = max(keep) + 1
    # Clip to the contiguous region around the head (projectivity holds,
    # but excluded children can punch holes; keep the simple hull minus
    # leading/trailing punctuation).
    while start < head and tokens[start].pos == "PUNCT":
        start += 1
    while end - 1 > head and tokens[end - 1].pos == "PUNCT":
        end -= 1
    return Span(start, end)


__all__ = ["ClausIE", "EXTRACTOR_VERSION"]
