"""Clause and proposition data model.

Following Quirk et al. (1985) as operationalized by ClausIE: a clause has
one subject (S), one verb (V), optionally a direct/indirect object (O),
a complement (C) and any number of adverbials (A). Only seven
constituent combinations occur in English: SV, SVA, SVC, SVO, SVOO,
SVOA, SVOC. One clause corresponds to exactly one n-ary fact whose
arguments are the constituents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.nlp.tokens import Sentence, Span

CONSTITUENT_SUBJECT = "S"
CONSTITUENT_VERB = "V"
CONSTITUENT_OBJECT = "O"
CONSTITUENT_INDIRECT_OBJECT = "IO"
CONSTITUENT_COMPLEMENT = "C"
CONSTITUENT_ADVERBIAL = "A"

CLAUSE_TYPES = ("SV", "SVA", "SVC", "SVO", "SVOO", "SVOA", "SVOC")


@dataclass
class Constituent:
    """One clause constituent.

    Attributes:
        role: S / V / O / IO / C / A.
        span: Token span in the sentence.
        head: Index of the constituent's head token.
        preposition: For adverbials, the introducing preposition lemma
            ("in", "to", ...); empty otherwise.
        kind: "np" for nominal constituents, "time" for time
            expressions, "money" for amounts, "pronoun", "literal" for
            anything else.
    """

    role: str
    span: Span
    head: int
    preposition: str = ""
    kind: str = "np"
    normalized: str = ""  # normalized value for time expressions

    def text(self, sentence: Sentence) -> str:
        """Surface text of the constituent."""
        return sentence.text(self.span.start, self.span.end)


@dataclass
class Clause:
    """A detected clause: verb group plus constituents."""

    sentence: Sentence
    clause_type: str
    verb_span: Span
    verb_lemma: str
    subject: Optional[Constituent] = None
    objects: List[Constituent] = field(default_factory=list)
    complement: Optional[Constituent] = None
    adverbials: List[Constituent] = field(default_factory=list)
    negated: bool = False
    passive: bool = False
    # Index of the clause this one depends on (relative clause,
    # coordination, complement clause); -1 for a main clause.
    parent: int = -1

    def verb_text(self) -> str:
        """Surface text of the verb group."""
        return self.sentence.text(self.verb_span.start, self.verb_span.end)

    def pattern(self, preposition: str = "") -> str:
        """Lemmatized relation pattern of this clause's verb.

        Passive clauses keep the participle with an explicit "be"
        ("be born"), matching how paraphrase dictionaries list passive
        patterns; active clauses use the bare verb lemma. An optional
        adverbial preposition is appended ("donate to", "star in").
        """
        if self.passive:
            participle = self.sentence.tokens[self.verb_span.end - 1]
            core = f"be {participle.text.lower()}"
        else:
            core = self.verb_lemma
        if preposition:
            return f"{core} {preposition}"
        return core

    def arguments(self) -> List[Constituent]:
        """All non-verb constituents in clause order."""
        out: List[Constituent] = []
        if self.subject is not None:
            out.append(self.subject)
        out.extend(self.objects)
        if self.complement is not None:
            out.append(self.complement)
        out.extend(self.adverbials)
        return out


@dataclass
class Proposition:
    """A flat n-ary extraction derived from one clause.

    ``arguments`` holds (text, kind) pairs in clause order; the first
    argument is the subject. This is the Open-IE-style output used by
    the Table 5 comparison; QKBfly's own pipeline works on the richer
    :class:`Clause` objects.
    """

    subject: str
    pattern: str
    arguments: List[Tuple[str, str]]
    clause_type: str
    sentence_index: int = -1
    confidence: float = 1.0

    @property
    def arity(self) -> int:
        """Subject + objects count."""
        return 1 + len(self.arguments)

    def as_triple(self) -> Optional[Tuple[str, str, str]]:
        """(subject, pattern, object) when at least one argument exists."""
        if not self.arguments:
            return None
        return (self.subject, self.pattern, self.arguments[0][0])

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        args = "; ".join(text for text, _ in self.arguments)
        return f"({self.subject} | {self.pattern} | {args})"


__all__ = [
    "CLAUSE_TYPES",
    "Clause",
    "Constituent",
    "Proposition",
]
