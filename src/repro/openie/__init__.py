"""Open information extraction: the ClausIE substrate.

QKBfly builds its semantic graph from clauses detected by ClausIE
(Del Corro & Gemulla, 2013), which decomposes a dependency parse into
the seven clause types of Quirk et al.: SV, SVA, SVC, SVO, SVOO, SVOA,
SVOC. :mod:`repro.openie.clausie` reimplements that decomposition over
our parsers; :mod:`repro.openie.clauses` holds the clause/constituent
data model and proposition generation.
"""

from repro.openie.clauses import Clause, Constituent, Proposition
from repro.openie.clausie import ClausIE

__all__ = ["ClausIE", "Clause", "Constituent", "Proposition"]
