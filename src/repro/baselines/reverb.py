"""Reverb-style Open IE: POS-pattern matching, no parsing.

Reverb (Fader et al., 2011) extracts triples whose relation phrase
matches the regular expression ``V | V P | V W* P`` between two noun
phrases, using only POS tags. It is the fastest Open IE method in
Table 5 and produces the fewest extractions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.nlp.tokens import Sentence, Span
from repro.openie.clauses import Proposition

_VERB = {"VB", "VBD", "VBZ", "VBP", "VBN", "VBG"}
_NOUN_END = {"NN", "NNS", "NNP", "NNPS", "PRP", "CD"}


class ReverbExtractor:
    """Pattern-based triple extractor (no dependency parse needed)."""

    def extract(self, sentence: Sentence) -> List[Proposition]:
        """Extract (NP, V(P), NP) triples from a POS-tagged sentence."""
        chunks = sentence.noun_phrases
        out: List[Proposition] = []
        for i, left in enumerate(chunks):
            # Find the relation phrase directly after the left NP.
            rel = self._relation_phrase(sentence, left.end)
            if rel is None:
                continue
            rel_span, pattern = rel
            right = self._chunk_starting_near(chunks, rel_span.end)
            if right is None:
                continue
            out.append(
                Proposition(
                    subject=sentence.text(left.start, left.end),
                    pattern=pattern,
                    arguments=[
                        (sentence.text(right.start, right.end), "np")
                    ],
                    clause_type="SVO",
                    sentence_index=sentence.index,
                )
            )
        return out

    def _relation_phrase(
        self, sentence: Sentence, start: int
    ) -> Optional[Tuple[Span, str]]:
        tokens = sentence.tokens
        i = start
        verbs = []
        while i < len(tokens) and tokens[i].pos in _VERB:
            verbs.append(i)
            i += 1
        if not verbs:
            return None
        end = i
        # Optional particle/preposition.
        prep = ""
        if i < len(tokens) and tokens[i].pos in ("IN", "TO"):
            prep = tokens[i].lemma
            end = i + 1
        content = verbs[-1]
        lemma = tokens[content].lemma
        if tokens[content].pos == "VBN" and len(verbs) > 1:
            pattern = f"be {tokens[content].text.lower()}"
        else:
            pattern = lemma
        if prep:
            pattern = f"{pattern} {prep}"
        return Span(verbs[0], end), pattern

    def _chunk_starting_near(
        self, chunks: List[Span], position: int
    ) -> Optional[Span]:
        for chunk in chunks:
            if chunk.start == position:
                return chunk
        for chunk in chunks:
            if position <= chunk.start <= position + 1:
                return chunk
        return None


__all__ = ["ReverbExtractor"]
