"""Babelfy-style named-entity disambiguation.

Babelfy (Moro et al., 2014) couples loose candidate identification with
a densest-subgraph heuristic over *semantic coherence* between candidate
meanings. Differences from QKBfly's Stage 2 that the paper calls out:
no pronoun handling and no type-signature feature — which is exactly
where QKBfly gains its 4% in Table 4 (e.g. Liverpool the city vs.
Liverpool F.C.).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.corpus.statistics import BackgroundStatistics, content_tokens
from repro.kb.entity_repository import EntityRepository
from repro.nlp.tokens import Document
from repro.utils.text import strip_determiners
from repro.utils.vectors import SparseVector, weighted_overlap


class BabelfyLinker:
    """Coherence-driven entity linker over a whole document."""

    def __init__(
        self,
        repository: EntityRepository,
        statistics: BackgroundStatistics,
        prior_weight: float = 1.0,
        context_weight: float = 0.8,
        coherence_weight: float = 0.5,
    ) -> None:
        self.repository = repository
        self.statistics = statistics
        self.prior_weight = prior_weight
        self.context_weight = context_weight
        self.coherence_weight = coherence_weight

    def link(self, document: Document) -> Dict[Tuple[int, int, int], Optional[str]]:
        """Disambiguate every NER mention of the document.

        Returns (sentence index, start, end) -> entity id or None.
        """
        mentions: List[Tuple[int, int, int, str, SparseVector]] = []
        for sentence in document.sentences:
            sentence_vector = self.statistics.tfidf_vector(
                content_tokens(sentence.text())
            )
            for span in sentence.entity_mentions:
                surface = sentence.text(span.start, span.end)
                mentions.append(
                    (sentence.index, span.start, span.end, surface, sentence_vector)
                )

        candidates: Dict[int, List[str]] = {}
        for index, (_, _, _, surface, _) in enumerate(mentions):
            cleaned = strip_determiners(surface)
            candidates[index] = sorted(
                c.entity_id for c in self.repository.candidates(cleaned)
            )

        # Densest-subgraph heuristic: iteratively drop the candidate with
        # the weakest total score (local evidence + coherence degree to
        # the other mentions' remaining candidates).
        active: Dict[int, Set[str]] = {
            i: set(c) for i, c in candidates.items()
        }
        while True:
            worst: Optional[Tuple[int, str]] = None
            worst_score = float("inf")
            for index, cands in active.items():
                if len(cands) < 2:
                    continue
                for entity_id in sorted(cands):
                    score = self._score(index, entity_id, mentions, active)
                    if score < worst_score:
                        worst_score = score
                        worst = (index, entity_id)
            if worst is None:
                break
            active[worst[0]].discard(worst[1])

        out: Dict[Tuple[int, int, int], Optional[str]] = {}
        for index, (sent, start, end, _, _) in enumerate(mentions):
            cands = sorted(active.get(index, ()))
            out[(sent, start, end)] = cands[0] if len(cands) == 1 else None
        return out

    def _score(
        self,
        index: int,
        entity_id: str,
        mentions: List[Tuple[int, int, int, str, SparseVector]],
        active: Dict[int, Set[str]],
    ) -> float:
        _, _, _, surface, sentence_vector = mentions[index]
        prior = self.statistics.prior(strip_determiners(surface), entity_id)
        context = weighted_overlap(
            sentence_vector, self.statistics.context_of(entity_id)
        )
        coherence = 0.0
        entity_vector = self.statistics.context_of(entity_id)
        for other, cands in active.items():
            if other == index:
                continue
            for other_entity in cands:
                coherence += weighted_overlap(
                    entity_vector, self.statistics.context_of(other_entity)
                )
        return (
            self.prior_weight * prior
            + self.context_weight * context
            + self.coherence_weight * coherence
        )


__all__ = ["BabelfyLinker"]
