"""Ollie-style Open IE: dependency-pattern extraction.

Ollie (Mausam et al., 2012) learns open patterns over dependency paths.
Our reimplementation applies the core pattern inventory directly on the
parse: subject-verb-object paths and subject-verb-preposition-object
paths, without clause typing and without the adverbial bookkeeping that
gives ClausIE its higher yield.
"""

from __future__ import annotations

from typing import Dict, List

from repro.nlp.dependency import coarse
from repro.nlp.tokens import Sentence
from repro.openie.clauses import Proposition


class OllieExtractor:
    """Dependency-path triple extractor."""

    def extract(self, sentence: Sentence) -> List[Proposition]:
        """Extract triples from nsubj/dobj/prep-pobj paths."""
        tokens = sentence.tokens
        children: Dict[int, List[int]] = {}
        for i, token in enumerate(tokens):
            children.setdefault(token.head, []).append(i)

        out: List[Proposition] = []
        for verb_index, token in enumerate(tokens):
            if coarse(token.pos) != "V":
                continue
            subject = None
            for child in children.get(verb_index, []):
                if tokens[child].deprel == "nsubj" and tokens[child].ner not in (
                    "TIME", "MONEY",
                ):
                    subject = child
                    break
            if subject is None:
                continue
            subject_text = self._np_text(sentence, subject)
            # Direct objects.
            for child in children.get(verb_index, []):
                if tokens[child].deprel in ("dobj", "attr", "acomp"):
                    out.append(
                        Proposition(
                            subject=subject_text,
                            pattern=token.lemma,
                            arguments=[
                                (self._np_text(sentence, child), "np")
                            ],
                            clause_type="SVO",
                            sentence_index=sentence.index,
                        )
                    )
            # Prepositional objects.
            for child in children.get(verb_index, []):
                if tokens[child].deprel != "prep":
                    continue
                for grandchild in children.get(child, []):
                    if tokens[grandchild].deprel == "pobj":
                        out.append(
                            Proposition(
                                subject=subject_text,
                                pattern=f"{token.lemma} {tokens[child].lemma}",
                                arguments=[
                                    (self._np_text(sentence, grandchild), "np")
                                ],
                                clause_type="SVA",
                                sentence_index=sentence.index,
                            )
                        )
        return out

    def _np_text(self, sentence: Sentence, head: int) -> str:
        for chunk in sentence.noun_phrases:
            if chunk.contains(head):
                return sentence.text(chunk.start, chunk.end)
        return sentence.tokens[head].text


__all__ = ["OllieExtractor"]
