"""Baseline systems used in the paper's evaluation.

- :mod:`repro.baselines.reverb` — purely pattern-based Open IE (fastest,
  fewest extractions).
- :mod:`repro.baselines.ollie` — dependency-pattern Open IE.
- :mod:`repro.baselines.openie4` — SRL-flavored clause-based Open IE,
  triples only.
- :mod:`repro.baselines.babelfy` — graph-coherence NED (no pronouns, no
  type signatures), the DEFIE linking stage.
- :mod:`repro.baselines.defie` — the DEFIE pipeline: definition-oriented
  Open IE feeding Babelfy-style NED, triples only.
- :mod:`repro.baselines.deepdive` — distant-supervision spouse extractor
  with a learned logistic-regression scorer.
"""

from repro.baselines.babelfy import BabelfyLinker
from repro.baselines.deepdive import DeepDiveSpouse
from repro.baselines.defie import Defie
from repro.baselines.ollie import OllieExtractor
from repro.baselines.openie4 import OpenIE4Extractor
from repro.baselines.reverb import ReverbExtractor

__all__ = [
    "BabelfyLinker",
    "DeepDiveSpouse",
    "Defie",
    "OllieExtractor",
    "OpenIE4Extractor",
    "ReverbExtractor",
]
