"""DeepDive-style spouse extraction (Section 7.3's comparison).

Reproduces the methodology of the DeepDive spouse tutorial: candidate
generation over co-occurring person-mention pairs, distant supervision
from a seed set of known married couples (the DBpedia stand-in), sparse
lexical features over the words between/around the pair, and a learned
logistic-regression scorer whose probability is the fact confidence.
As in the paper's setup, a high confidence threshold (tau = 0.9) yields
the precision-oriented operating point.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.corpus.realizer import RealizedDocument
from repro.corpus.world import World
from repro.nlp.pipeline import NlpPipeline, PipelineConfig
from repro.nlp.tokens import Document, Sentence, Span
from repro.utils.rng import DeterministicRng

_FEATURE_DIM = 1 << 15


@dataclass
class SpouseCandidate:
    """A candidate married pair from one sentence."""

    doc_id: str
    sentence_index: int
    left_surface: str
    right_surface: str
    left_entity: Optional[str]
    right_entity: Optional[str]
    features: List[int] = field(default_factory=list)
    probability: float = 0.0


class DeepDiveSpouse:
    """Distant-supervision spouse extractor."""

    def __init__(self, world: World, seed: int = 57) -> None:
        self.world = world
        self.nlp = NlpPipeline(
            PipelineConfig(
                parser="greedy",
                gazetteer=world.entity_repository.gazetteer(),
            )
        )
        self._rng = DeterministicRng(seed, namespace="deepdive")
        self._weights = np.zeros(_FEATURE_DIM)
        self._bias = 0.0
        self._trained = False

    # ------------------------------------------------------------------
    # Candidate generation + features
    # ------------------------------------------------------------------

    def candidates_from_document(self, document: Document) -> List[SpouseCandidate]:
        """All person-mention pairs co-occurring in one sentence."""
        out: List[SpouseCandidate] = []
        for sentence in document.sentences:
            people = [
                span for span in sentence.entity_mentions
                if span.label == "PERSON"
            ]
            for i, left in enumerate(people):
                for right in people[i + 1:]:
                    candidate = SpouseCandidate(
                        doc_id=document.doc_id,
                        sentence_index=sentence.index,
                        left_surface=sentence.text(left.start, left.end),
                        right_surface=sentence.text(right.start, right.end),
                        left_entity=self._resolve(sentence, left),
                        right_entity=self._resolve(sentence, right),
                    )
                    candidate.features = self._featurize(sentence, left, right)
                    out.append(candidate)
        return out

    def _resolve(self, sentence: Sentence, span: Span) -> Optional[str]:
        surface = sentence.text(span.start, span.end)
        candidates = self.world.entity_repository.candidates(surface)
        if len(candidates) == 1:
            return candidates[0].entity_id
        if candidates:
            return max(candidates, key=lambda e: e.prominence).entity_id
        return None

    def _featurize(
        self, sentence: Sentence, left: Span, right: Span
    ) -> List[int]:
        tokens = sentence.tokens
        features: Set[int] = set()

        def add(feature: str) -> None:
            # zlib.crc32 is stable across processes (str hash is not).
            features.add(zlib.crc32(feature.encode("utf-8")) % _FEATURE_DIM)

        between = [
            tokens[i].lemma.lower()
            for i in range(left.end, right.start)
            if not tokens[i].is_punct()
        ]
        add(f"len_between={min(len(between), 8)}")
        for lemma in between:
            add(f"between:{lemma}")
        for i in range(1, 3):
            if left.start - i >= 0:
                add(f"left-{i}:{tokens[left.start - i].lemma.lower()}")
            if right.end + i - 1 < len(tokens):
                add(f"right+{i}:{tokens[right.end + i - 1].lemma.lower()}")
        if between:
            add(f"between_seq:{'_'.join(between[:4])}")
        return sorted(features)

    # ------------------------------------------------------------------
    # Training (distant supervision)
    # ------------------------------------------------------------------

    def train(
        self,
        documents: Sequence[RealizedDocument],
        epochs: int = 12,
        learning_rate: float = 0.3,
        l2: float = 1e-4,
    ) -> Dict[str, float]:
        """Distant supervision + logistic regression.

        Positive labels: candidate pairs whose resolved entities are a
        known married couple in the seed set (all ``married_to`` facts of
        the world — the "instances of married couples in DBpedia" the
        paper feeds the DeepDive learner). Negatives: all other pairs.
        """
        seed_pairs = self._seed_pairs()
        examples: List[Tuple[List[int], int]] = []
        for realized in documents:
            annotated = self.nlp.annotate_text(
                realized.text, doc_id=realized.doc_id
            )
            for candidate in self.candidates_from_document(annotated):
                label = int(
                    candidate.left_entity is not None
                    and candidate.right_entity is not None
                    and (candidate.left_entity, candidate.right_entity)
                    in seed_pairs
                )
                examples.append((candidate.features, label))
        if not examples:
            raise RuntimeError("no training candidates found")
        self._rng.shuffle(examples)
        positives = sum(label for _, label in examples)
        # SGD on logistic loss with class-balanced weighting.
        pos_weight = max(1.0, (len(examples) - positives) / max(positives, 1))
        for epoch in range(epochs):
            rate = learning_rate / (1.0 + epoch)
            for features, label in examples:
                score = self._bias + self._weights[features].sum()
                probability = 1.0 / (1.0 + math.exp(-max(min(score, 30), -30)))
                gradient = probability - label
                if label == 1:
                    gradient *= pos_weight
                self._weights[features] -= rate * (
                    gradient + l2 * self._weights[features]
                )
                self._bias -= rate * gradient
        self._trained = True
        return {"examples": len(examples), "positives": positives}

    def _seed_pairs(self) -> Set[Tuple[str, str]]:
        pairs: Set[Tuple[str, str]] = set()
        for fact in self.world.facts:
            if fact.relation_id == "married_to" and fact.object_id:
                pairs.add((fact.subject_id, fact.object_id))
                pairs.add((fact.object_id, fact.subject_id))
        return pairs

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def extract(
        self, documents: Sequence[RealizedDocument], tau: float = 0.9
    ) -> List[SpouseCandidate]:
        """Score all candidate pairs; keep those above ``tau``."""
        if not self._trained:
            raise RuntimeError("call train() before extract()")
        out: List[SpouseCandidate] = []
        for realized in documents:
            annotated = self.nlp.annotate_text(
                realized.text, doc_id=realized.doc_id
            )
            for candidate in self.candidates_from_document(annotated):
                score = self._bias + self._weights[candidate.features].sum()
                candidate.probability = 1.0 / (
                    1.0 + math.exp(-max(min(score, 30), -30))
                )
                if candidate.probability >= tau:
                    out.append(candidate)
        out.sort(key=lambda c: -c.probability)
        return out


__all__ = ["DeepDiveSpouse", "SpouseCandidate"]
