"""Open IE 4.2-style extraction: SRL-flavored, triples only.

Open IE 4 builds on semantic role labeling over the parse; compared to
ClausIE it keeps verb frames but flattens every frame to a triple whose
second argument concatenates the remaining role fillers. We approximate
this by reusing the clause detector and serializing each clause to one
triple (argument texts joined), which reproduces the observed behavior:
fewer, coarser extractions than ClausIE at similar speed.
"""

from __future__ import annotations

from typing import List

from repro.nlp.tokens import Sentence
from repro.openie.clausie import ClausIE
from repro.openie.clauses import Proposition


class OpenIE4Extractor:
    """Frame-to-triple extractor on top of the clause detector."""

    def __init__(self) -> None:
        self._clausie = ClausIE()

    def extract(self, sentence: Sentence) -> List[Proposition]:
        """One triple per clause; extra arguments folded into the object."""
        out: List[Proposition] = []
        for proposition in self._clausie.propositions(sentence):
            if not proposition.arguments:
                continue
            first_text, first_kind = proposition.arguments[0]
            rest = "; ".join(text for text, _ in proposition.arguments[1:])
            merged = first_text if not rest else f"{first_text} {rest}"
            out.append(
                Proposition(
                    subject=proposition.subject,
                    pattern=proposition.pattern,
                    arguments=[(merged, first_kind)],
                    clause_type=proposition.clause_type,
                    sentence_index=sentence.index,
                )
            )
        return out


__all__ = ["OpenIE4Extractor"]
