"""DEFIE: the paper's main end-to-end baseline.

DEFIE (Delli Bovi et al., 2015) is a two-stage pipeline: syntactic-
semantic Open IE tuned to short definitional sentences, followed by
Babelfy NED. Characteristics the paper exploits in the comparison
(Table 3): triples only (no higher-arity facts), no pronoun handling,
weaker on complex sentences with subordinate clauses — and relational
predicates are left un-canonicalized.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines.babelfy import BabelfyLinker
from repro.corpus.statistics import BackgroundStatistics
from repro.kb.entity_repository import EntityRepository
from repro.kb.facts import (
    ARG_EMERGING,
    ARG_ENTITY,
    ARG_LITERAL,
    Argument,
    Fact,
    KnowledgeBase,
)
from repro.nlp.pipeline import NlpPipeline, PipelineConfig
from repro.nlp.tokens import Sentence
from repro.openie.clausie import ClausIE
from repro.utils.text import strip_determiners


class Defie:
    """Open IE + Babelfy pipeline, triples only."""

    def __init__(
        self,
        repository: EntityRepository,
        statistics: BackgroundStatistics,
        max_clause_tokens: int = 18,
    ) -> None:
        self.repository = repository
        self.linker = BabelfyLinker(repository, statistics)
        self.nlp = NlpPipeline(
            PipelineConfig(parser="greedy", gazetteer=repository.gazetteer())
        )
        self._clausie = ClausIE()
        # DEFIE is optimized for short definitional sentences; clauses in
        # long sentences past this budget are skipped, reproducing its
        # effectiveness drop on complex text.
        self.max_clause_tokens = max_clause_tokens

    def process_text(self, text: str, doc_id: str = "doc") -> KnowledgeBase:
        """Extract a triple KB from raw text."""
        document = self.nlp.annotate_text(text, doc_id=doc_id)
        links = self.linker.link(document)
        kb = KnowledgeBase()
        for sentence in document.sentences:
            for proposition in self._clausie.propositions(sentence):
                if len(sentence.tokens) > self.max_clause_tokens * 2:
                    continue
                fact = self._to_fact(
                    sentence, proposition, links, doc_id
                )
                if fact is not None:
                    kb.add_fact(fact)
        return kb

    def _to_fact(
        self,
        sentence: Sentence,
        proposition,
        links: Dict[Tuple[int, int, int], Optional[str]],
        doc_id: str,
    ) -> Optional[Fact]:
        if proposition.subject.lower() in ("he", "she", "it", "they"):
            return None  # no pronoun handling
        subject = self._argument(sentence, proposition.subject, links)
        if subject is None:
            return None
        first = proposition.arguments[0] if proposition.arguments else None
        if first is None:
            return None
        obj = self._argument(sentence, first[0], links)
        if obj is None:
            obj = Argument(
                kind=ARG_LITERAL,
                value=strip_determiners(first[0]).lower(),
                display=first[0],
            )
        return Fact(
            subject=subject,
            predicate=proposition.pattern,  # predicates stay raw
            objects=[obj],
            pattern=proposition.pattern,
            confidence=1.0,
            doc_id=doc_id,
            sentence_index=sentence.index,
            canonical_predicate=False,
        )

    def _argument(
        self,
        sentence: Sentence,
        surface: str,
        links: Dict[Tuple[int, int, int], Optional[str]],
    ) -> Optional[Argument]:
        cleaned = strip_determiners(surface)
        for span in sentence.entity_mentions:
            mention = sentence.text(span.start, span.end)
            if mention.lower() in cleaned.lower():
                entity_id = links.get((sentence.index, span.start, span.end))
                if entity_id is not None:
                    name = self.repository.get(entity_id).canonical_name
                    return Argument(ARG_ENTITY, entity_id, name)
                return Argument(
                    ARG_EMERGING, f"defie:{mention.lower()}", mention
                )
        if cleaned:
            return Argument(ARG_LITERAL, cleaned.lower(), surface)
        return None


__all__ = ["Defie"]
