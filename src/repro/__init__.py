"""QKBfly reproduction: query-driven on-the-fly knowledge base construction.

This package reimplements the full system of Nguyen et al.,
"Query-Driven On-The-Fly Knowledge Base Construction" (PVLDB 11(1), 2017),
including every substrate the paper depends on: a linguistic pipeline
(tokenizer, POS tagger, lemmatizer, chunker, NER, time tagger, two
dependency parsers), a ClausIE-style clause detector, background
repositories (entity repository, paraphrase dictionary, background corpus
statistics), the semantic-graph model with the greedy densest-subgraph
densification algorithm and its ILP counterpart, the canonicalization
stage producing binary and higher-arity facts, the baselines used in the
evaluation (DEFIE/Babelfy, Reverb, Ollie, Open IE 4.2, DeepDive-style
spouse extraction), and the ad-hoc question-answering use case.

Typical usage::

    from repro import build_world, QKBfly

    world = build_world(seed=7)
    system = QKBfly.from_world(world)
    kb = system.build_kb("Alice Stone", source="wikipedia", num_documents=1)
    for fact in kb.facts:
        print(fact)
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

__all__ = [
    "Fact",
    "KnowledgeBase",
    "QKBfly",
    "QKBflyConfig",
    "QKBflyService",
    "QueryRequest",
    "QueryResult",
    "ServiceConfig",
    "SessionState",
    "World",
    "WorldConfig",
    "build_world",
]

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.core.qkbfly import QKBfly, QKBflyConfig, SessionState
    from repro.corpus.world import World, WorldConfig, build_world
    from repro.kb.facts import Fact, KnowledgeBase
    from repro.service.api import QueryRequest, QueryResult
    from repro.service.service import QKBflyService, ServiceConfig

_LAZY = {
    "QKBfly": ("repro.core.qkbfly", "QKBfly"),
    "QKBflyConfig": ("repro.core.qkbfly", "QKBflyConfig"),
    "SessionState": ("repro.core.qkbfly", "SessionState"),
    "World": ("repro.corpus.world", "World"),
    "WorldConfig": ("repro.corpus.world", "WorldConfig"),
    "build_world": ("repro.corpus.world", "build_world"),
    "Fact": ("repro.kb.facts", "Fact"),
    "KnowledgeBase": ("repro.kb.facts", "KnowledgeBase"),
    "QKBflyService": ("repro.service.service", "QKBflyService"),
    "QueryRequest": ("repro.service.api", "QueryRequest"),
    "QueryResult": ("repro.service.api", "QueryResult"),
    "ServiceConfig": ("repro.service.service", "ServiceConfig"),
}


def __getattr__(name: str):
    """Lazily resolve the public API to keep import time minimal."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
