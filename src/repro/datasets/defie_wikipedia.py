"""DEFIE-Wikipedia dataset: randomly chosen Wikipedia-style pages.

The original dataset has 14,072 random Wikipedia pages; ours samples a
configurable number of entity pages from the synthetic world, mixing
person, organization, location and work pages like a random Wikipedia
sample would. About 13% of the entities mentioned are out-of-repository,
matching the paper's observation for this dataset.
"""

from __future__ import annotations

from typing import List

from repro.corpus.realizer import RealizedDocument, Realizer
from repro.corpus.world import World
from repro.utils.rng import DeterministicRng


def build_defie_wikipedia(
    world: World, num_documents: int = 60, seed: int = 8072
) -> List[RealizedDocument]:
    """Sample ``num_documents`` random entity pages."""
    rng = DeterministicRng(seed, namespace="defie-wikipedia")
    realizer = Realizer(world, seed=seed)
    candidates = [
        entity.entity_id
        for entity in world.entities.values()
        if entity.in_repository and world.facts_of(entity.entity_id)
    ]
    chosen = rng.sample(candidates, min(num_documents, len(candidates)))
    documents = []
    for entity_id in chosen:
        doc = realizer.wikipedia_article(entity_id)
        if doc.sentences:
            documents.append(doc)
    return documents


__all__ = ["build_defie_wikipedia"]
