"""News dataset: event articles (the paper's 100 sport news articles).

Realizes one article per trend event; transfer/derby events give the
sport flavor of the original dataset, and roughly a quarter of the
entities are emerging (accusers, family members), matching the 24%
out-of-Yago rate the paper reports for its News dataset.
"""

from __future__ import annotations

from typing import List

from repro.corpus.realizer import RealizedDocument, Realizer
from repro.corpus.world import World


def build_news_dataset(
    world: World, num_documents: int = 100, seed: int = 601
) -> List[RealizedDocument]:
    """Realize news articles for up to ``num_documents`` events."""
    realizer = Realizer(world, seed=seed)
    documents: List[RealizedDocument] = []
    for event in world.events[:num_documents]:
        doc = realizer.news_article(event)
        if doc.sentences:
            documents.append(doc)
    return documents


__all__ = ["build_news_dataset"]
