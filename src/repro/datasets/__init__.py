"""Benchmark dataset builders.

Synthetic counterparts of the paper's evaluation datasets:

- :mod:`repro.datasets.defie_wikipedia` — the DEFIE-Wikipedia dataset
  (randomly chosen Wikipedia pages) used for end-to-end KB construction.
- :mod:`repro.datasets.reverb500` — 500 standalone web sentences for the
  Open IE component comparison.
- :mod:`repro.datasets.news` — news articles (Table 6's News dataset).
- :mod:`repro.datasets.wikia` — long fan-wiki pages dominated by
  out-of-repository fictional characters (Table 6's Wikia dataset).
- :mod:`repro.datasets.trends_questions` — the GoogleTrendsQuestions QA
  benchmark (100 questions over 50 trend events) plus WebQuestions-style
  training pairs.
"""

from repro.datasets.defie_wikipedia import build_defie_wikipedia
from repro.datasets.news import build_news_dataset
from repro.datasets.reverb500 import build_reverb500
from repro.datasets.trends_questions import (
    QaQuestion,
    build_trends_questions,
    build_training_questions,
)
from repro.datasets.wikia import build_wikia_dataset

__all__ = [
    "QaQuestion",
    "build_defie_wikipedia",
    "build_news_dataset",
    "build_reverb500",
    "build_trends_questions",
    "build_training_questions",
    "build_wikia_dataset",
]
