"""Wikia dataset: long fan-wiki episode pages.

The original consists of 10 Wikia pages about Game-of-Thrones episodes,
where 71% of the extracted entities are out-of-Yago fictional
characters. We synthesize episode recaps: long documents whose subjects
are mostly emerging characters interacting with each other, plus a few
in-repository actors/films for the residual linkable mentions.
"""

from __future__ import annotations

from typing import List

from repro.corpus.realizer import RealizedDocument, Realizer
from repro.corpus.world import World, WorldFact
from repro.utils.rng import DeterministicRng

_CHARACTER_RELATIONS = (
    "praises", "accuses_of", "shoots", "married_to", "visits",
)


def build_wikia_dataset(
    world: World,
    num_documents: int = 10,
    sentences_per_document: int = 40,
    seed: int = 1810,
) -> List[RealizedDocument]:
    """Synthesize ``num_documents`` character-heavy episode pages."""
    rng = DeterministicRng(seed, namespace="wikia")
    realizer = Realizer(world, seed=seed + 1)
    characters = list(world.character_ids)
    cities = list(world.city_ids)
    if len(characters) < 2:
        return []
    documents: List[RealizedDocument] = []
    fact_counter = 0
    for doc_index in range(num_documents):
        r = rng.fork(f"episode:{doc_index}")
        facts: List[WorldFact] = []
        for _ in range(sentences_per_document):
            relation = r.choice(_CHARACTER_RELATIONS)
            subject, other = r.sample(characters, 2)
            fact_counter += 1
            if relation == "accuses_of":
                fact = WorldFact(
                    fact_id=f"WK{fact_counter:05d}",
                    relation_id=relation,
                    subject_id=subject,
                    object_id=other,
                    literal=r.choice(["treason", "theft", "cowardice"]),
                )
            elif relation == "visits":
                fact = WorldFact(
                    fact_id=f"WK{fact_counter:05d}",
                    relation_id=relation,
                    subject_id=subject,
                    object_id=r.choice(cities),
                )
            else:
                fact = WorldFact(
                    fact_id=f"WK{fact_counter:05d}",
                    relation_id=relation,
                    subject_id=subject,
                    object_id=other,
                )
            facts.append(fact)
        doc = realizer.article_from_facts(
            doc_id=f"wikia:{doc_index}",
            title=f"Episode {doc_index + 1}",
            facts=facts,
        )
        if doc.sentences:
            documents.append(doc)
    return documents


__all__ = ["build_wikia_dataset"]
