"""Reverb dataset: standalone web sentences for the Open IE comparison.

The original has 500 sentences sampled via Yahoo's random-link service;
ours renders standalone single-fact sentences from randomly sampled
world facts, which exercises the same extraction machinery without
document-level co-reference.
"""

from __future__ import annotations

from typing import List

from repro.corpus.realizer import RealizedDocument, Realizer
from repro.corpus.world import World
from repro.utils.rng import DeterministicRng


def build_reverb500(
    world: World, num_sentences: int = 500, seed: int = 500
) -> List[RealizedDocument]:
    """Render up to ``num_sentences`` standalone one-fact documents."""
    rng = DeterministicRng(seed, namespace="reverb500")
    realizer = Realizer(world, seed=seed)
    facts = [f for f in world.facts if not f.recent]
    documents: List[RealizedDocument] = []
    index = 0
    while len(documents) < num_sentences:
        fact = facts[rng.randint(0, len(facts) - 1)]
        # Web sentences are long: coordinate a second fact of the same
        # subject in roughly two thirds of the sentences.
        second = None
        if rng.maybe(0.65):
            siblings = [
                f for f in world.facts_of(fact.subject_id)
                if f.fact_id != fact.fact_id and not f.recent
            ]
            if siblings:
                second = rng.choice(siblings)
        doc = realizer.single_sentence(
            fact, doc_id=f"reverb:{index}", second=second
        )
        index += 1
        if doc.sentences:
            documents.append(doc)
        if index > num_sentences * 4:
            break
    return documents


__all__ = ["build_reverb500"]
