"""GoogleTrendsQuestions: the ad-hoc QA benchmark (Section 7.4).

The paper identified 50 recent events via Google Trends and had students
write 100 questions with gold answers. We generate two questions per
trend event from kind-specific templates, with gold answers taken from
the event's ground-truth facts. Training questions (the WebQuestions
stand-in for the answer classifier) are generated from non-event world
facts with a disjoint set of templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.corpus.world import TrendEvent, World, WorldFact
from repro.utils.rng import DeterministicRng

PERSON_TYPES = ("PERSON", "CHARACTER", "ORGANIZATION")
WHERE_TYPES = ("LOCATION",)
WHEN_TYPES = ("TIME",)


@dataclass
class QaQuestion:
    """One benchmark question.

    Attributes:
        question: Natural-language question text.
        gold: Acceptable answer strings (lower-cased aliases).
        query: Retrieval query (usually the main entity's name).
        answer_types: Coarse types a candidate answer must satisfy.
        relation_id: Ground-truth relation (for analysis only).
        event_id: Originating trend event ("" for training questions).
    """

    question: str
    gold: Set[str]
    query: str
    answer_types: Tuple[str, ...] = PERSON_TYPES
    relation_id: str = ""
    event_id: str = ""


def _aliases(world: World, entity_id: str) -> Set[str]:
    return {a.lower() for a in world.entities[entity_id].aliases}


def build_trends_questions(world: World) -> List[QaQuestion]:
    """Two questions per trend event, mirroring the 100-question set."""
    questions: List[QaQuestion] = []
    for event in world.events:
        fact = _event_fact(world, event)
        if fact is None:
            continue
        subject = world.entities[fact.subject_id]
        obj = world.entities.get(fact.object_id) if fact.object_id else None
        if event.kind == "divorce" and obj is not None:
            questions.append(QaQuestion(
                question=f"Who did {subject.name} divorce?",
                gold=_aliases(world, fact.object_id),
                query=subject.name,
                relation_id="divorced_from", event_id=event.event_id,
            ))
            questions.append(QaQuestion(
                question=f"Who divorced {obj.name}?",
                gold=_aliases(world, fact.subject_id),
                query=obj.name,
                relation_id="divorced_from", event_id=event.event_id,
            ))
        elif event.kind == "award" and obj is not None and fact.object2_id:
            presenter = world.entities[fact.object2_id]
            questions.append(QaQuestion(
                question=f"Who presented the {obj.name} to {subject.name}?",
                gold=_aliases(world, fact.object2_id),
                query=subject.name,
                relation_id="receives_from", event_id=event.event_id,
            ))
            questions.append(QaQuestion(
                question=f"Which award did {subject.name} receive from {presenter.name}?",
                gold=_aliases(world, fact.object_id),
                query=subject.name,
                answer_types=("MISC",),
                relation_id="receives_from", event_id=event.event_id,
            ))
        elif event.kind == "transfer" and obj is not None:
            questions.append(QaQuestion(
                question=f"Which club did {subject.name} join?",
                gold=_aliases(world, fact.object_id),
                query=subject.name,
                answer_types=("ORGANIZATION",),
                relation_id="joins", event_id=event.event_id,
            ))
            questions.append(QaQuestion(
                question=f"Who joined {obj.name}?",
                gold=_aliases(world, fact.subject_id),
                query=obj.name,
                relation_id="joins", event_id=event.event_id,
            ))
        elif event.kind == "premiere" and obj is not None and fact.object2_id:
            film = world.entities[fact.object2_id]
            questions.append(QaQuestion(
                question=f"Who plays {obj.name} in {film.name}?",
                gold=_aliases(world, fact.subject_id),
                query=film.name,
                relation_id="plays_role_in", event_id=event.event_id,
            ))
            questions.append(QaQuestion(
                question=f"In which film does {subject.name} play {obj.name}?",
                gold=_aliases(world, fact.object2_id),
                query=subject.name,
                answer_types=("MISC",),
                relation_id="plays_role_in", event_id=event.event_id,
            ))
        elif event.kind == "accusation" and obj is not None:
            questions.append(QaQuestion(
                question=f"Who accused {obj.name}?",
                gold=_aliases(world, fact.subject_id),
                query=obj.name,
                relation_id="accuses_of", event_id=event.event_id,
            ))
            questions.append(QaQuestion(
                question=f"Who did {subject.name} accuse?",
                gold=_aliases(world, fact.object_id),
                query=obj.name,
                relation_id="accuses_of", event_id=event.event_id,
            ))
        elif event.kind == "concert" and obj is not None:
            questions.append(QaQuestion(
                question=f"Which festival did {subject.name} perform at?",
                gold=_aliases(world, fact.object_id),
                query=subject.name,
                answer_types=("MISC", "LOCATION"),
                relation_id="performs_at", event_id=event.event_id,
            ))
            questions.append(QaQuestion(
                question=f"Who performed at {obj.name}?",
                gold=_aliases(world, fact.subject_id),
                query=obj.name,
                relation_id="performs_at", event_id=event.event_id,
            ))
        elif event.kind == "founding" and obj is not None:
            questions.append(QaQuestion(
                question=f"Which company did {subject.name} launch?",
                gold=_aliases(world, fact.object_id),
                query=subject.name,
                answer_types=("ORGANIZATION",),
                relation_id="founded", event_id=event.event_id,
            ))
            questions.append(QaQuestion(
                question=f"Who launched {obj.name}?",
                gold=_aliases(world, fact.subject_id),
                query=obj.name,
                relation_id="founded", event_id=event.event_id,
            ))
        elif event.kind == "derby" and obj is not None:
            questions.append(QaQuestion(
                question=f"Which team did {subject.name} defeat?",
                gold=_aliases(world, fact.object_id),
                query=subject.name,
                answer_types=("ORGANIZATION",),
                relation_id="defeats", event_id=event.event_id,
            ))
    return questions


def _event_fact(world: World, event: TrendEvent) -> Optional[WorldFact]:
    for fact in world.facts:
        if fact.fact_id == event.fact_ids[0]:
            return fact
    return None


# ---------------------------------------------------------------------------
# Training questions (WebQuestions stand-in)
# ---------------------------------------------------------------------------

_TRAINING_TEMPLATES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "married_to": ("Who did {S} marry?", PERSON_TYPES),
    "born_in": ("Where was {S} born?", WHERE_TYPES),
    "lives_in": ("Where does {S} live?", WHERE_TYPES),
    "plays_for": ("Which club does {S} play for?", ("ORGANIZATION",)),
    "ceo_of": ("Which company does {S} lead?", ("ORGANIZATION",)),
    "studied_at": ("Where did {S} study?", ("ORGANIZATION",)),
    "acts_in": ("Which film did {S} appear in?", ("MISC",)),
    "records": ("Which album did {S} release?", ("MISC",)),
    "wins_award": ("Which award did {S} win?", ("MISC",)),
    "works_for": ("Which newspaper does {S} work for?", ("ORGANIZATION",)),
}


def build_training_questions(
    world: World, limit: int = 200, seed: int = 3778
) -> List[QaQuestion]:
    """Training question/gold pairs from non-event facts."""
    rng = DeterministicRng(seed, namespace="webquestions")
    eligible = [
        f for f in world.facts
        if not f.recent
        and f.relation_id in _TRAINING_TEMPLATES
        and f.object_id
        and world.entities[f.subject_id].in_repository
    ]
    rng.shuffle(eligible)
    questions: List[QaQuestion] = []
    for fact in eligible[:limit]:
        template, answer_types = _TRAINING_TEMPLATES[fact.relation_id]
        subject = world.entities[fact.subject_id]
        questions.append(QaQuestion(
            question=template.format(S=subject.name),
            gold=_aliases(world, fact.object_id),
            query=subject.name,
            answer_types=answer_types,
            relation_id=fact.relation_id,
        ))
    return questions


__all__ = ["QaQuestion", "build_trends_questions", "build_training_questions"]
