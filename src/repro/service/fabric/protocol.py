"""Length-prefixed JSON framing for the shard fabric.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON. Requests are ``{"op": <name>, "args": {...}}``;
responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": <message>, "type": <exception class name>}``. The payloads
reuse the deterministic ``to_dict``/``from_dict`` wire forms the KB
model and the store signatures already have — the fabric adds framing,
not a second serialization story.

Framing (rather than newline-delimited JSON) keeps the protocol safe
for KB payloads that may embed any text, and makes a torn connection
detectable: a reader either gets a complete frame or a
:class:`ProtocolError` / clean EOF, never half a message parsed as a
whole one.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

#: Hard ceiling on one frame, far above any real KB entry — a
#: corrupted length prefix must fail fast, not allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed or oversized frame (desynchronized peer)."""


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize ``payload`` and write one complete frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on EOF at a frame boundary.

    EOF *inside* a frame is a torn message and raises — the caller must
    not mistake it for an orderly close.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one complete frame; None on clean EOF before any byte."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES}"
        )
    body = _recv_exact(sock, length)
    if body is None:  # pragma: no cover - EOF between header and body
        raise ProtocolError("connection closed between header and body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    return payload


__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "recv_frame",
    "send_frame",
]
