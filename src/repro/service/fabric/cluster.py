"""Replica groups and the fabric that wires them behind the router.

Three pieces:

- :class:`Replicator` — one background thread per fabric draining a
  FIFO of primary-acknowledged writes to replicas. In-order delivery
  per fabric plus the shard server's ``write_seq`` version check means
  a replica can lag but never regress; a failed delivery is counted
  and dropped (the replica simply stays behind — reads that miss it
  fall back to the primary, so nothing acknowledged is ever lost).
- :class:`ReplicatedShardClient` — the :class:`KbStore` surface over
  one primary plus R-1 replicas: writes go to the primary
  synchronously (the ack) and propagate asynchronously; reads fan to
  the least-loaded healthy replica, fall back to the primary on a
  miss, and fail a replica over on :class:`ShardUnavailable`.
- :class:`Fabric` — owns the shard servers (in-process, or none in
  connect mode), the replicator, and the :class:`ShardedKbStore`
  whose ``backend_factory`` it supplies — which is also what lets the
  router's *online rebalance* provision a whole new generation of
  replicated shards mid-flight.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faultinject.points import SimulatedCrash, fault_point
from repro.kb.facts import KnowledgeBase
from repro.service.fabric.remote_store import (
    RemoteKbStore,
    ShardUnavailable,
    parse_address,
)
from repro.service.fabric.shard_server import ShardServer
from repro.service.kb_store import EntrySignature
from repro.service.sharding import ShardedKbStore

#: Seconds a replica sits out of the read rotation after a transport
#: failure before being probed again.
REPLICA_COOLDOWN_SECONDS = 1.0


class Replicator:
    """Asynchronous, in-order write propagation to replicas."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._stopped = False
        self._idle = True
        self.propagated = 0
        self.dropped = 0
        self._thread = threading.Thread(
            target=self._run, name="fabric-replicator", daemon=True
        )
        self._thread.start()

    def submit(
        self, replica: RemoteKbStore, save_kwargs: Dict[str, Any]
    ) -> None:
        """Enqueue one replica delivery (called after the primary ack)."""
        with self._cond:
            if self._stopped:
                return
            self._queue.append((replica, save_kwargs))
            self._idle = False
            self._cond.notify_all()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._idle = True
                    self._cond.notify_all()
                    self._cond.wait()
                if self._stopped and not self._queue:
                    self._idle = True
                    self._cond.notify_all()
                    return
                replica, save_kwargs = self._queue.popleft()
            try:
                fault_point(
                    "fabric.replicate.entry",
                    replica=replica.path,
                    query=save_kwargs.get("query"),
                )
                replica.save(**save_kwargs)
                delivered = True
            except SimulatedCrash:
                delivered = False
            except Exception:  # noqa: BLE001 - replica lags, reads fall back
                delivered = False
            with self._cond:
                if delivered:
                    self.propagated += 1
                else:
                    self.dropped += 1

    def flush(self, timeout: float = 30.0) -> bool:
        """Block until every queued delivery was attempted (event-wait,
        no polling sleep); False on timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._queue or not self._idle:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    def stop(self) -> None:
        """Drain the queue, then stop the thread."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._thread.join(timeout=30)

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "pending": len(self._queue),
                "propagated": self.propagated,
                "dropped": self.dropped,
            }


class ReplicatedShardClient:
    """Primary-writes / replica-reads over one shard's replica group.

    The consistency contract (docs/FABRIC.md):

    - a ``save`` is acknowledged iff the **primary** committed it;
      replica propagation is asynchronous and may be dropped;
    - replica reads can therefore *miss* entries the primary has — a
      miss falls back to the primary, so an acknowledged write is
      always readable;
    - the ``write_seq`` carried by every save makes replica apply
      order irrelevant: a replica ignores deliveries older than what
      it already holds, so a read served from any replica is never an
      *earlier* version of an entry than one previously observable
      there (no stale regression — the property the freshness checker
      verifies end to end).
    """

    def __init__(
        self,
        primary: RemoteKbStore,
        replicas: Sequence[RemoteKbStore],
        replicator: Replicator,
        seq: Optional[Callable[[], int]] = None,
    ) -> None:
        self.primary = primary
        self.replicas = list(replicas)
        self._replicator = replicator
        self._lock = threading.Lock()
        self._seq_counter = 0
        self._seq = seq or self._next_seq
        self._inflight = [0] * len(self.replicas)
        self._unhealthy_until = [0.0] * len(self.replicas)
        self.replica_reads = 0
        self.replica_hits = 0
        self.replica_misses = 0
        self.replica_errors = 0
        self.primary_reads = 0
        #: KbStore-compatible identity: the primary's address.
        self.path = primary.path

    def _next_seq(self) -> int:
        with self._lock:
            self._seq_counter += 1
            return self._seq_counter

    # ---- replica selection -------------------------------------------------

    def _pick_replica(self) -> Optional[int]:
        """Least-loaded healthy replica, or None to read the primary."""
        if not self.replicas:
            return None
        now = time.monotonic()
        with self._lock:
            candidates = [
                (self._inflight[i], i)
                for i in range(len(self.replicas))
                if self._unhealthy_until[i] <= now
            ]
            if not candidates:
                return None
            _, index = min(candidates)
            self._inflight[index] += 1
            return index

    def _release_replica(self, index: int, failed: bool) -> None:
        with self._lock:
            self._inflight[index] -= 1
            if failed:
                self._unhealthy_until[index] = (
                    time.monotonic() + REPLICA_COOLDOWN_SECONDS
                )
                self.replica_errors += 1

    # ---- save / load -------------------------------------------------------

    def save(
        self,
        query: str,
        kb: KnowledgeBase,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
        created_at: Optional[float] = None,
        replace: bool = True,
    ) -> int:
        """Write-through to the primary (the ack), then fan out async."""
        seq = self._seq()
        save_kwargs = {
            "query": query,
            "kb": kb,
            "corpus_version": corpus_version,
            "mode": mode,
            "algorithm": algorithm,
            "source": source,
            "num_documents": num_documents,
            "config_digest": config_digest,
            "created_at": created_at,
            "replace": replace,
            "write_seq": seq,
        }
        entry_id = self.primary.save(**save_kwargs)
        for replica in self.replicas:
            self._replicator.submit(replica, dict(save_kwargs))
        return entry_id

    def load(
        self,
        query: str,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
    ) -> Optional[KnowledgeBase]:
        """Replica-first read with primary fallback on miss/failure."""
        kwargs = {
            "corpus_version": corpus_version,
            "mode": mode,
            "algorithm": algorithm,
            "source": source,
            "num_documents": num_documents,
            "config_digest": config_digest,
        }
        index = self._pick_replica()
        if index is not None:
            with self._lock:
                self.replica_reads += 1
            failed = False
            try:
                kb = self.replicas[index].load(query, **kwargs)
                if kb is not None:
                    with self._lock:
                        self.replica_hits += 1
                    return kb
                with self._lock:
                    self.replica_misses += 1
            except ShardUnavailable:
                failed = True
            finally:
                self._release_replica(index, failed)
        with self._lock:
            self.primary_reads += 1
        return self.primary.load(query, **kwargs)

    def try_load(
        self,
        query: str,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
    ) -> Tuple[bool, Optional[KnowledgeBase]]:
        """Non-blocking read: replica first, primary on miss/busy."""
        kwargs = {
            "corpus_version": corpus_version,
            "mode": mode,
            "algorithm": algorithm,
            "source": source,
            "num_documents": num_documents,
            "config_digest": config_digest,
        }
        index = self._pick_replica()
        if index is not None:
            with self._lock:
                self.replica_reads += 1
            failed = False
            try:
                attempted, kb = self.replicas[index].try_load(
                    query, **kwargs
                )
                if attempted and kb is not None:
                    with self._lock:
                        self.replica_hits += 1
                    return True, kb
                if attempted:
                    with self._lock:
                        self.replica_misses += 1
            except ShardUnavailable:
                failed = True
            finally:
                self._release_replica(index, failed)
        with self._lock:
            self.primary_reads += 1
        return self.primary.try_load(query, **kwargs)

    # ---- meta / maintenance (primary-authoritative) ------------------------

    @property
    def corpus_version(self) -> str:
        return self.primary.corpus_version

    def set_corpus_version(self, version: str) -> None:
        self.primary.set_corpus_version(version)
        for replica in self.replicas:
            try:
                replica.set_corpus_version(version)
            except ShardUnavailable:
                pass  # replica resyncs via keyed misses

    def entries(self) -> List[Tuple[str, str, str, str]]:
        return self.primary.entries()

    def signatures(self, **kwargs) -> List[EntrySignature]:
        return self.primary.signatures(**kwargs)

    def search_facts(self, params: Dict[str, Any]) -> List[Dict]:
        # Primary-authoritative: a keyset walk must see one consistent
        # shard timeline; bouncing pages between primary and a lagging
        # replica could lose acknowledged rows mid-walk.
        return self.primary.search_facts(params)

    def search_entities(self, params: Dict[str, Any]) -> List[Dict]:
        return self.primary.search_entities(params)

    def created_index(self) -> List[Tuple[float, int]]:
        return self.primary.created_index()

    def delete_entries(self, entry_ids) -> int:
        ids = [int(entry_id) for entry_id in entry_ids]
        removed = self.primary.delete_entries(ids)
        # Replica deletions are best-effort: a lagging replica's extra
        # rows are keyed like everything else, and the read path only
        # trusts a replica *hit* when the primary acknowledged that
        # exact key+version — leftover rows waste space, not truth.
        for replica in self.replicas:
            try:
                replica.delete_entries(ids)
            except ShardUnavailable:
                pass
        return removed

    def delete_stale(self, current_version: str) -> int:
        removed = self.primary.delete_stale(current_version)
        for replica in self.replicas:
            try:
                replica.delete_stale(current_version)
            except ShardUnavailable:
                pass
        return removed

    def delete_for_entities(self, entities) -> int:
        entity_list = [str(entity) for entity in entities]
        removed = self.primary.delete_for_entities(entity_list)
        # Best-effort on replicas for the same reason as
        # delete_entries: a replica hit is only trusted when the
        # primary confirms the key, so a lagging replica's leftover
        # rows can never resurface an invalidated KB.
        for replica in self.replicas:
            try:
                replica.delete_for_entities(entity_list)
            except ShardUnavailable:
                pass
        return removed

    def compact(
        self,
        max_age_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        removed = self.primary.compact(
            max_age_seconds=max_age_seconds,
            max_entries=max_entries,
            now=now,
        )
        for replica in self.replicas:
            try:
                replica.compact(
                    max_age_seconds=max_age_seconds,
                    max_entries=max_entries,
                    now=now,
                )
            except ShardUnavailable:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return self.primary.stats()

    def entry_count(self) -> int:
        return self.primary.entry_count()

    def close(self) -> None:
        self.primary.close()
        for replica in self.replicas:
            replica.close()

    def fabric_stats(self) -> Dict[str, Any]:
        """Read fan-out and transport counters for this replica group."""
        with self._lock:
            out: Dict[str, Any] = {
                "primary": self.primary.path,
                "replicas": [replica.path for replica in self.replicas],
                "replica_reads": self.replica_reads,
                "replica_hits": self.replica_hits,
                "replica_misses": self.replica_misses,
                "replica_errors": self.replica_errors,
                "primary_reads": self.primary_reads,
            }
        out["transport"] = self.primary.client_stats()
        return out


class Fabric:
    """A same-host shard fabric: servers, clients, router, mover.

    Build one with :meth:`launch_local` (in-process servers over a
    store directory — tests, single-host deployments driven by one
    service) or :meth:`connect` (servers launched elsewhere, e.g. by
    ``scripts/run_fabric.py``). Either way, :attr:`store` is a
    :class:`ShardedKbStore` whose backends are
    :class:`ReplicatedShardClient` groups, so the serving stack above
    it is unchanged — including
    :meth:`~repro.service.sharding.ShardedKbStore.online_rebalance`,
    which asks this fabric's backend factory for a fresh generation of
    replicated shards (launch-local mode only: in connect mode the
    fabric cannot provision servers and the factory raises).
    """

    def __init__(self, replication_factor: int = 1) -> None:
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        self.replication_factor = replication_factor
        self.replicator = Replicator()
        self.store: Optional[ShardedKbStore] = None
        self._servers: List[ShardServer] = []
        self._clients: List[ReplicatedShardClient] = []
        self._lock = threading.Lock()
        self._connect_addresses: Optional[List[List[Tuple[str, int]]]] = None
        self._request_timeout = 10.0
        self._closed = False

    # ---- construction ------------------------------------------------------

    @classmethod
    def launch_local(
        cls,
        directory: str,
        num_shards: Optional[int] = None,
        replication_factor: int = 1,
        request_timeout: float = 10.0,
    ) -> "Fabric":
        """In-process fabric: one :class:`ShardServer` (thread) per
        shard replica over files in ``directory``; replica files sit
        next to the primary with an ``.r<N>`` suffix."""
        fabric = cls(replication_factor=replication_factor)
        fabric._request_timeout = request_timeout
        fabric.store = ShardedKbStore(
            directory,
            num_shards=num_shards,
            backend_factory=fabric._launch_backend,
        )
        return fabric

    @classmethod
    def connect(
        cls,
        directory: str,
        addresses: Sequence[Sequence[Any]],
        request_timeout: float = 10.0,
    ) -> "Fabric":
        """Fabric over externally launched shard servers.

        ``addresses`` is one list per shard — the primary first, then
        its replicas (``"host:port"`` strings or ``(host, port)``
        pairs); the replication factor is the group width.
        ``directory`` holds the routing manifest only.
        """
        if not addresses:
            raise ValueError("addresses must name at least one shard")
        groups = [
            [parse_address(address) for address in group]
            for group in addresses
        ]
        widths = {len(group) for group in groups}
        if not widths or 0 in widths:
            raise ValueError("every shard needs at least a primary address")
        if len(widths) != 1:
            raise ValueError(
                f"uneven replica groups: {sorted(widths)} — every shard "
                "must have the same replication factor"
            )
        fabric = cls(replication_factor=widths.pop())
        fabric._request_timeout = request_timeout
        fabric._connect_addresses = groups
        fabric.store = ShardedKbStore(
            directory,
            num_shards=len(groups),
            backend_factory=fabric._connect_backend,
        )
        return fabric

    # ---- backend factories -------------------------------------------------

    def _group_client(
        self, members: Sequence[RemoteKbStore]
    ) -> ReplicatedShardClient:
        client = ReplicatedShardClient(
            members[0], members[1:], self.replicator
        )
        with self._lock:
            self._clients.append(client)
        return client

    def _launch_backend(self, index: int, path: str) -> ReplicatedShardClient:
        """Start ``replication_factor`` servers for one shard path and
        return the replica-group client (the ``ShardedKbStore`` backend
        factory — also invoked by online rebalance for new
        generations)."""
        members: List[RemoteKbStore] = []
        for replica_no in range(self.replication_factor):
            replica_path = (
                path if replica_no == 0 else f"{path}.r{replica_no}"
            )
            server = ShardServer(replica_path)
            server.start()
            with self._lock:
                self._servers.append(server)
            members.append(
                RemoteKbStore(
                    server.address, timeout=self._request_timeout
                )
            )
        return self._group_client(members)

    def _connect_backend(self, index: int, path: str) -> ReplicatedShardClient:
        if self._connect_addresses is None or index >= len(
            self._connect_addresses
        ):
            raise RuntimeError(
                f"no addresses for shard {index}: a connect-mode fabric "
                "cannot provision servers (online rebalance to a new "
                "shard count needs launch_local, or new servers plus a "
                "new connect)"
            )
        return self._group_client(
            [
                RemoteKbStore(address, timeout=self._request_timeout)
                for address in self._connect_addresses[index]
            ]
        )

    # ---- operations --------------------------------------------------------

    def flush_replication(self, timeout: float = 30.0) -> bool:
        """Wait for queued replica deliveries (tests, clean shutdown)."""
        return self.replicator.flush(timeout=timeout)

    def online_rebalance(self, num_shards: int) -> int:
        """Online-rebalance the routed store (see ``ShardedKbStore``);
        new-generation shards are provisioned through this fabric."""
        if self.store is None:
            raise RuntimeError("fabric has no store")
        return self.store.online_rebalance(num_shards)

    def plan_rebalance(self, threshold: float = 1.5) -> Optional[int]:
        """Suggest a shard count when the balance signal crosses
        ``threshold`` (max/mean of ``shard_entry_counts``); None when
        the fabric is balanced enough. Purely advisory — the operator
        (or a test) passes the suggestion to :meth:`online_rebalance`."""
        if self.store is None:
            raise RuntimeError("fabric has no store")
        imbalance = self.store.shard_imbalance()
        if imbalance <= threshold:
            return None
        return self.store.num_shards + 1

    def stats(self) -> Dict[str, Any]:
        """The ``fabric`` block of ``QKBflyService.stats()``."""
        with self._lock:
            clients = list(self._clients)
            servers = len(self._servers)
        store = self.store
        return {
            "replication_factor": self.replication_factor,
            "num_shards": store.num_shards if store is not None else 0,
            "servers": servers,
            "rebalance_in_progress": (
                store.rebalance_in_progress() if store is not None else False
            ),
            "replication": self.replicator.stats(),
            "shards": [client.fabric_stats() for client in clients],
        }

    def close(self) -> None:
        """Stop replication, close clients, stop in-process servers."""
        if self._closed:
            return
        self._closed = True
        self.replicator.stop()
        if self.store is not None:
            self.store.close()
        with self._lock:
            clients = list(self._clients)
            servers = list(self._servers)
        for client in clients:
            client.close()
        for server in servers:
            server.stop()

    def __enter__(self) -> "Fabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def fabric_replica_paths(directory: str, num_shards: int,
                         replication_factor: int) -> List[List[str]]:
    """The file layout ``launch_local`` / ``run_fabric.py`` use: per
    shard, the primary file then ``.r<N>`` replica siblings."""
    base = Path(directory)
    out: List[List[str]] = []
    for index in range(num_shards):
        primary = str(base / f"shard-{index:03d}.sqlite")
        group = [primary]
        group.extend(
            f"{primary}.r{replica_no}"
            for replica_no in range(1, replication_factor)
        )
        out.append(group)
    return out


__all__ = [
    "Fabric",
    "REPLICA_COOLDOWN_SECONDS",
    "ReplicatedShardClient",
    "Replicator",
    "fabric_replica_paths",
]
