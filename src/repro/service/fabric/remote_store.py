"""Client-side shard backend: the :class:`KbStore` surface over TCP.

:class:`RemoteKbStore` speaks the fabric protocol to one
:class:`~repro.service.fabric.shard_server.ShardServer` and implements
the exact method surface of a local :class:`KbStore`, so
``ShardedKbStore`` (and therefore the whole serving stack) composes
local and remote shards through the same backend-factory seam without
knowing which is which.

Failure handling is explicit and bounded:

- every request runs under a per-request socket ``timeout``;
- transport failures (refused/reset/dropped connections, timeouts,
  torn frames) are retried up to ``retries`` times with exponential
  backoff, on a *fresh* connection each time;
- when the budget is exhausted the caller gets a typed
  :class:`ShardUnavailable` naming the shard address — the replicated
  read path catches exactly this type to fail over, and everything
  else propagates as the bug it is;
- a server-side exception is re-raised here as :class:`RemoteError`
  immediately (no retry: the server answered, the operation itself
  failed — retrying a loud ``RuntimeError`` would just repeat it).

Connections are pooled (a small LIFO free list) and re-checked-in only
after a complete round trip, so a frame desync can never leak into the
next request.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.faultinject.points import fault_point
from repro.kb.facts import KnowledgeBase
from repro.service.fabric.protocol import (
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.api import SearchUnavailable
from repro.service.kb_store import EntrySignature


def parse_address(address) -> Tuple[str, int]:
    """Accept ``(host, port)`` or ``"host:port"``; return the tuple."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"malformed shard address: {address!r}")
        return host, int(port)
    host, port = address
    return str(host), int(port)


class ShardUnavailable(Exception):
    """A shard could not be reached within the retry budget.

    The replicated read path treats this as "fail over"; at the top of
    the stack it means the fabric lost a shard's whole replica group.
    """

    def __init__(self, address: Tuple[str, int], detail: str) -> None:
        super().__init__(
            f"shard at {address[0]}:{address[1]} unavailable: {detail}"
        )
        self.address = address
        self.detail = detail


class RemoteError(Exception):
    """The server executed the operation and reported an exception."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


class RemoteKbStore:
    """One shard server, presented as a local :class:`KbStore`.

    Args:
        address: ``(host, port)`` or ``"host:port"`` of the shard
            server.
        timeout: Per-request socket timeout in seconds (connect and
            each read/write).
        retries: Transport-failure retries per request (total attempts
            are ``retries + 1``).
        backoff_seconds: Base of the exponential retry backoff.
        pool_size: Idle connections kept for reuse; bursts above this
            open extra sockets that are closed on check-in.
    """

    def __init__(
        self,
        address,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_seconds: float = 0.02,
        pool_size: int = 2,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.pool_size = pool_size
        #: KbStore-compatible identity (shard_paths, logs, stats).
        self.path = f"fabric://{self.address[0]}:{self.address[1]}"
        self._pool: List[socket.socket] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self.requests = 0
        self.retried = 0
        self.dropped_connections = 0

    # ---- connection pool ---------------------------------------------------

    def _checkout(self) -> socket.socket:
        with self._pool_lock:
            if self._closed:
                raise ShardUnavailable(self.address, "client closed")
            if self._pool:
                return self._pool.pop()
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.settimeout(self.timeout)
        return sock

    def _checkin(self, sock: socket.socket) -> None:
        with self._pool_lock:
            if not self._closed and len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        try:
            sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already dead
                pass

    # ---- request core ------------------------------------------------------

    def _request(self, op: str, args: Dict[str, Any]) -> Any:
        """One op, with bounded transport retries on fresh sockets."""
        with self._pool_lock:
            self.requests += 1
        payload = {"op": op, "args": args}
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                with self._pool_lock:
                    self.retried += 1
                time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
            try:
                sock = self._checkout()
            except OSError as error:
                last_error = error
                continue
            try:
                # The drop callable closes *this* socket: the injected
                # connection drop hits a real in-flight transport, and
                # the retry path below is what recovers from it.
                fault_point(
                    "fabric.remote.request", op=op, drop=sock.close
                )
                send_frame(sock, payload)
                response = recv_frame(sock)
                if response is None:
                    raise ProtocolError("server closed the connection")
            except (OSError, ProtocolError) as error:
                with self._pool_lock:
                    self.dropped_connections += 1
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already dead
                    pass
                last_error = error
                continue
            self._checkin(sock)
            if response.get("ok"):
                return response.get("result")
            raise RemoteError(
                str(response.get("type", "Exception")),
                str(response.get("error", "")),
            )
        raise ShardUnavailable(
            self.address,
            f"{type(last_error).__name__}: {last_error} "
            f"after {self.retries + 1} attempt(s)",
        )

    # ---- KbStore surface ---------------------------------------------------

    def save(
        self,
        query: str,
        kb: KnowledgeBase,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
        created_at: Optional[float] = None,
        replace: bool = True,
        write_seq: Optional[int] = None,
    ) -> int:
        """Persist on the shard server; returns the remote entry id.

        ``write_seq`` is the replication version check (see the shard
        server): deliveries carrying an older sequence than one already
        applied for the key are ignored server-side.
        """
        result = self._request(
            "save",
            {
                "query": query,
                "kb": kb.to_dict(),
                "corpus_version": corpus_version,
                "mode": mode,
                "algorithm": algorithm,
                "source": source,
                "num_documents": num_documents,
                "config_digest": config_digest,
                "created_at": created_at,
                "replace": replace,
                "write_seq": write_seq,
            },
        )
        entry_id = result.get("entry_id")
        return -1 if entry_id is None else int(entry_id)

    def _sig_args(
        self,
        query: str,
        corpus_version: str,
        mode: str,
        algorithm: str,
        source: str,
        num_documents: int,
        config_digest: str,
    ) -> Dict[str, Any]:
        return {
            "query": query,
            "corpus_version": corpus_version,
            "mode": mode,
            "algorithm": algorithm,
            "source": source,
            "num_documents": num_documents,
            "config_digest": config_digest,
        }

    def load(
        self,
        query: str,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
    ) -> Optional[KnowledgeBase]:
        """Reconstruct a stored KB, or None when the key is absent."""
        result = self._request(
            "load",
            self._sig_args(
                query, corpus_version, mode, algorithm, source,
                num_documents, config_digest,
            ),
        )
        return None if result is None else KnowledgeBase.from_dict(result)

    def try_load(
        self,
        query: str,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
    ) -> Tuple[bool, Optional[KnowledgeBase]]:
        """Non-blocking load: the *server-side* store lock is probed,
        so a remote writer mid-save yields ``(False, None)`` here just
        like a local one would."""
        result = self._request(
            "try_load",
            self._sig_args(
                query, corpus_version, mode, algorithm, source,
                num_documents, config_digest,
            ),
        )
        kb = result.get("kb")
        return (
            bool(result.get("attempted")),
            None if kb is None else KnowledgeBase.from_dict(kb),
        )

    # ---- fact search -------------------------------------------------------

    def _search(self, kind: str, params: Dict[str, Any]) -> List[Dict]:
        result = self._request(f"search_{kind}", {"params": params})
        if result.get("unavailable"):
            raise SearchUnavailable(
                f"shard {self.path} was built without FTS5; fact search "
                f"is unavailable"
            )
        return list(result.get("rows") or [])

    def search_facts(self, params: Dict[str, Any]) -> List[Dict]:
        """One remote shard's slice of a paginated fact search."""
        return self._search("facts", params)

    def search_entities(self, params: Dict[str, Any]) -> List[Dict]:
        """One remote shard's slice of a paginated entity search."""
        return self._search("entities", params)

    # ---- meta --------------------------------------------------------------

    @property
    def corpus_version(self) -> str:
        """The corpus stamp the shard was last synchronized to."""
        return str(self._request("get_corpus_version", {}))

    def set_corpus_version(self, version: str) -> None:
        """Record the corpus stamp on the shard."""
        self._request("set_corpus_version", {"version": version})

    # ---- maintenance -------------------------------------------------------

    def entries(self) -> List[Tuple[str, str, str, str]]:
        """(query, mode, algorithm, corpus_version) for every entry."""
        return [tuple(entry) for entry in self._request("entries", {})]

    def signatures(
        self,
        corpus_version: Optional[str] = None,
        mode: Optional[str] = None,
        algorithm: Optional[str] = None,
        config_digest: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[EntrySignature]:
        """Stored entry signatures, newest first (server-side filters)."""
        return [
            EntrySignature.from_dict(sig)
            for sig in self._request(
                "signatures",
                {
                    "corpus_version": corpus_version,
                    "mode": mode,
                    "algorithm": algorithm,
                    "config_digest": config_digest,
                    "limit": limit,
                },
            )
        ]

    def created_index(self) -> List[Tuple[float, int]]:
        """(created_at, entry_id) for every entry — compaction input."""
        return [
            (float(created_at), int(entry_id))
            for created_at, entry_id in self._request("created_index", {})
        ]

    def delete_entries(self, entry_ids: Iterable[int]) -> int:
        """Drop specific entries; returns the count removed."""
        return int(
            self._request(
                "delete_entries",
                {"entry_ids": [int(entry_id) for entry_id in entry_ids]},
            )
        )

    def delete_stale(self, current_version: str) -> int:
        """Drop entries from other corpus versions; returns the count."""
        return int(
            self._request(
                "delete_stale", {"current_version": current_version}
            )
        )

    def delete_for_entities(self, entities: Iterable[str]) -> int:
        """Drop entries whose query touches one of ``entities``; the
        shard server applies the shared match rule to its own rows."""
        return int(
            self._request(
                "delete_for_entities",
                {"entities": [str(entity) for entity in entities]},
            )
        )

    def compact(
        self,
        max_age_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Server-side TTL/size compaction; returns removed entries."""
        return int(
            self._request(
                "compact",
                {
                    "max_age_seconds": max_age_seconds,
                    "max_entries": max_entries,
                    "now": now,
                },
            )
        )

    def stats(self) -> Dict[str, int]:
        """Row counts per table on the shard server."""
        return {
            str(table): int(count)
            for table, count in self._request("stats", {}).items()
        }

    def entry_count(self) -> int:
        """Number of entries on the shard (cheap indexed count)."""
        return int(self._request("entry_count", {}))

    def healthz(self) -> Dict[str, Any]:
        """The server's health envelope (entries, ops, crash count)."""
        return self._request("healthz", {})

    def client_stats(self) -> Dict[str, int]:
        """Transport counters for the fabric stats block."""
        with self._pool_lock:
            return {
                "requests": self.requests,
                "retried": self.retried,
                "dropped_connections": self.dropped_connections,
                "pooled": len(self._pool),
            }

    def __enter__(self) -> "RemoteKbStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "RemoteError",
    "RemoteKbStore",
    "ShardUnavailable",
    "parse_address",
]
