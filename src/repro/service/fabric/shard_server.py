"""Socket server exposing one shard's :class:`KbStore` to the fabric.

A :class:`ShardServer` owns exactly one SQLite shard file and serves
the store surface over the length-prefixed JSON protocol of
:mod:`repro.service.fabric.protocol`: ``save`` / ``load`` /
``try_load`` / ``delete_entries`` / ``delete_stale`` / ``compact`` /
``entry_count`` / ``signatures`` / ``entries`` / ``created_index`` /
``stats`` / corpus-version meta / ``healthz``. Connections are
persistent (one frame per request, many requests per connection) and
handled by the stdlib ``socketserver`` threading mix-in; the store's
own lock serializes the actual SQLite access, so the server adds
concurrency at the socket layer without changing the store's
consistency story.

Replica freshness: ``save`` accepts an optional ``write_seq``. The
server remembers the highest sequence applied per entry key (in
memory — a restarted replica is resynchronized by the fabric anyway)
and ignores a save that carries an *older* sequence than one already
applied. Asynchronous replication may retry and reorder deliveries;
this version check is what makes "a replica never regresses an entry
it has already seen" hold regardless, which is exactly the invariant
the freshness checker proves end to end.

Runs in-process (``ShardServer(...).start()`` — tests, same-process
fabrics) or standalone (``python -m repro.service.fabric.shard_server
--path shard.sqlite``) under the :mod:`scripts.run_fabric` supervisor.
"""

from __future__ import annotations

import argparse
import json
import socket
import socketserver
import sys
import threading
from typing import Any, Dict, Optional, Set, Tuple

from repro.faultinject.points import SimulatedCrash, fault_point
from repro.kb.facts import KnowledgeBase
from repro.service.fabric.protocol import (
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.api import SearchUnavailable
from repro.service.kb_store import KbStore


def _signature_key(args: Dict[str, Any]) -> Tuple[Any, ...]:
    """The full entry key a ``write_seq`` is tracked under."""
    return (
        args["query"],
        args.get("mode", "joint"),
        args.get("algorithm", "greedy"),
        args["corpus_version"],
        args.get("source", "wikipedia"),
        int(args.get("num_documents", 1)),
        args.get("config_digest", ""),
    )


class _Handler(socketserver.BaseRequestHandler):
    """One persistent connection: frames in, frames out."""

    def setup(self) -> None:
        self.server.register_connection(self.request)

    def finish(self) -> None:
        self.server.forget_connection(self.request)

    def handle(self) -> None:
        while True:
            try:
                request = recv_frame(self.request)
            except (ProtocolError, OSError):
                return
            if request is None:
                return
            try:
                fault_point(
                    "fabric.server.handle",
                    op=request.get("op"),
                    server=self.server,
                )
                result = self.server.dispatch(request)
                response = {"ok": True, "result": result}
            except SimulatedCrash:
                # An injected shard-server crash: the connection dies
                # without a reply, exactly what the client of a killed
                # process would observe. The store's own BaseException
                # rollback has already run (or the op never started).
                self.server.note_crash()
                return
            except Exception as error:  # noqa: BLE001 - typed reply
                response = {
                    "ok": False,
                    "error": str(error),
                    "type": type(error).__name__,
                }
            try:
                send_frame(self.request, response)
            except OSError:
                return


class ShardServer(socketserver.ThreadingTCPServer):
    """Serve one shard file on a loopback TCP port.

    Args:
        path: SQLite file backing this shard (created if absent).
        host: Bind address; the fabric is same-host, so loopback.
        port: TCP port; 0 picks a free one (read it back from
            :attr:`address`).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, path: str, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.store = KbStore(path)
        self.store_path = path
        self.ops_served = 0
        self.crashes = 0
        self._stats_lock = threading.Lock()
        self._seq_lock = threading.Lock()
        self._applied_seq: Dict[Tuple[Any, ...], int] = {}
        self._connections: Set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = False
        super().__init__((host, port), _Handler)

    # ---- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound (resolves ``port=0``)."""
        host, port = self.server_address[:2]
        return str(host), int(port)

    def start(self) -> threading.Thread:
        """Serve in a daemon thread; returns it (joined by ``stop``)."""
        thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"shard-server-{self.address[1]}",
            daemon=True,
        )
        self._serve_thread = thread
        thread.start()
        return thread

    def stop(self) -> None:
        """Stop serving, sever live connections, close the store."""
        if self._stopped:
            return
        self._stopped = True
        if self._serve_thread is not None:
            # shutdown() waits for serve_forever to exit; calling it
            # without a serving thread would wait forever.
            self.shutdown()
        with self._connections_lock:
            live = list(self._connections)
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None
        self.server_close()
        self.store.close()

    def register_connection(self, conn: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(conn)

    def forget_connection(self, conn: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(conn)

    def note_crash(self) -> None:
        with self._stats_lock:
            self.crashes += 1

    # ---- dispatch ----------------------------------------------------------

    def dispatch(self, request: Dict[str, Any]) -> Any:
        """Execute one request against the shard store."""
        op = request.get("op")
        args = request.get("args") or {}
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"unknown fabric op: {op!r}")
        with self._stats_lock:
            self.ops_served += 1
        return handler(args)

    # Each op mirrors one KbStore method; payloads are the model's own
    # wire forms (KnowledgeBase.to_dict / EntrySignature.to_dict).

    def _op_save(self, args: Dict[str, Any]) -> Dict[str, Any]:
        write_seq = args.get("write_seq")
        if write_seq is not None:
            key = _signature_key(args)
            with self._seq_lock:
                last = self._applied_seq.get(key)
                if last is not None and int(write_seq) < last:
                    # A reordered/retried older replication delivery:
                    # applying it would regress the entry. Skip.
                    return {"entry_id": None, "applied": False}
                self._applied_seq[key] = int(write_seq)
        kb = KnowledgeBase.from_dict(args["kb"])
        entry_id = self.store.save(
            args["query"],
            kb,
            corpus_version=args["corpus_version"],
            mode=args.get("mode", "joint"),
            algorithm=args.get("algorithm", "greedy"),
            source=args.get("source", "wikipedia"),
            num_documents=int(args.get("num_documents", 1)),
            config_digest=args.get("config_digest", ""),
            created_at=args.get("created_at"),
            replace=bool(args.get("replace", True)),
        )
        return {"entry_id": entry_id, "applied": True}

    def _load_args(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "corpus_version": args["corpus_version"],
            "mode": args.get("mode", "joint"),
            "algorithm": args.get("algorithm", "greedy"),
            "source": args.get("source", "wikipedia"),
            "num_documents": int(args.get("num_documents", 1)),
            "config_digest": args.get("config_digest", ""),
        }

    def _op_load(self, args: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        kb = self.store.load(args["query"], **self._load_args(args))
        return None if kb is None else kb.to_dict()

    def _op_try_load(self, args: Dict[str, Any]) -> Dict[str, Any]:
        attempted, kb = self.store.try_load(
            args["query"], **self._load_args(args)
        )
        return {
            "attempted": attempted,
            "kb": None if kb is None else kb.to_dict(),
        }

    def _op_delete_entries(self, args: Dict[str, Any]) -> int:
        return self.store.delete_entries(
            int(entry_id) for entry_id in args.get("entry_ids", [])
        )

    def _op_delete_stale(self, args: Dict[str, Any]) -> int:
        return self.store.delete_stale(args["current_version"])

    def _op_delete_for_entities(self, args: Dict[str, Any]) -> int:
        # The touched-entity list travels over the wire and the match
        # runs here, against this shard's own rows, with the same
        # query_touches rule every local tier applies.
        return self.store.delete_for_entities(
            [str(entity) for entity in args.get("entities", [])]
        )

    def _op_compact(self, args: Dict[str, Any]) -> int:
        return self.store.compact(
            max_age_seconds=args.get("max_age_seconds"),
            max_entries=args.get("max_entries"),
            now=args.get("now"),
        )

    def _op_entries(self, args: Dict[str, Any]) -> list:
        return [list(entry) for entry in self.store.entries()]

    def _op_signatures(self, args: Dict[str, Any]) -> list:
        return [
            sig.to_dict()
            for sig in self.store.signatures(
                corpus_version=args.get("corpus_version"),
                mode=args.get("mode"),
                algorithm=args.get("algorithm"),
                config_digest=args.get("config_digest"),
                limit=args.get("limit"),
            )
        ]

    def _op_created_index(self, args: Dict[str, Any]) -> list:
        return [list(pair) for pair in self.store.created_index()]

    def _op_stats(self, args: Dict[str, Any]) -> Dict[str, int]:
        return self.store.stats()

    def _op_entry_count(self, args: Dict[str, Any]) -> int:
        return self.store.entry_count()

    def _op_get_corpus_version(self, args: Dict[str, Any]) -> str:
        return self.store.corpus_version

    def _op_set_corpus_version(self, args: Dict[str, Any]) -> bool:
        self.store.set_corpus_version(args["version"])
        return True

    def _search(self, kind: str, args: Dict[str, Any]) -> Dict[str, Any]:
        # FTS5 absence is a *capability*, not a failure: it travels as
        # a marker in the ok-reply so the client can raise the typed
        # SearchUnavailable instead of a generic RemoteError.
        params = args.get("params") or {}
        try:
            if kind == "facts":
                rows = self.store.search_facts(params)
            else:
                rows = self.store.search_entities(params)
        except SearchUnavailable:
            return {"unavailable": True}
        return {"rows": rows}

    def _op_search_facts(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return self._search("facts", args)

    def _op_search_entities(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return self._search("entities", args)

    def _op_healthz(self, args: Dict[str, Any]) -> Dict[str, Any]:
        with self._stats_lock:
            ops, crashes = self.ops_served, self.crashes
        return {
            "ok": True,
            "path": self.store_path,
            "entries": self.store.entry_count(),
            "ops_served": ops,
            "crashes": crashes,
        }


def main(argv: Optional[list] = None) -> int:
    """Standalone entry point: serve one shard until interrupted.

    Announces the bound address as one JSON line on stdout so a
    supervisor launching with ``--port 0`` can learn the real port.
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", required=True,
                        help="SQLite shard file to serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one)")
    options = parser.parse_args(argv)
    server = ShardServer(options.path, host=options.host, port=options.port)
    host, port = server.address
    print(json.dumps({"host": host, "port": port, "path": options.path}),
          flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    sys.exit(main())


__all__ = ["ShardServer", "main"]
