"""Same-host multi-process KB shard fabric.

The fabric puts each shard of the serving KB store behind its own
socket server process (or in-process server thread) and reconnects
them through the existing :class:`~repro.service.sharding.ShardedKbStore`
routing layer, adding replication and online rebalance without
changing anything above the store seam:

- :mod:`repro.service.fabric.protocol` — length-prefixed JSON framing;
- :mod:`repro.service.fabric.shard_server` — one shard's
  :class:`~repro.service.kb_store.KbStore` served over TCP;
- :mod:`repro.service.fabric.remote_store` — the client-side
  :class:`~repro.service.kb_store.KbStore` surface with pooling,
  timeouts, bounded retry, and typed failure;
- :mod:`repro.service.fabric.cluster` — replica groups
  (primary-writes / replica-reads) and the :class:`Fabric`
  orchestrator the service wires in via
  ``ServiceConfig(store_backend="fabric")``.

See ``docs/FABRIC.md`` for the wire protocol, the consistency
contract, the online-rebalance state machine, and the failure matrix.
"""

from repro.service.fabric.cluster import (
    Fabric,
    REPLICA_COOLDOWN_SECONDS,
    ReplicatedShardClient,
    Replicator,
    fabric_replica_paths,
)
from repro.service.fabric.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.fabric.remote_store import (
    RemoteError,
    RemoteKbStore,
    ShardUnavailable,
    parse_address,
)
from repro.service.fabric.shard_server import ShardServer

__all__ = [
    "Fabric",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "REPLICA_COOLDOWN_SECONDS",
    "RemoteError",
    "RemoteKbStore",
    "ReplicatedShardClient",
    "Replicator",
    "ShardServer",
    "ShardUnavailable",
    "fabric_replica_paths",
    "parse_address",
    "recv_frame",
    "send_frame",
]
