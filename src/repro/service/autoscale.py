"""Runtime executor autoscaling: tier selection and pool sizing.

The serving layer has two execution tiers with opposite sweet spots
(see :mod:`repro.service.process_executor`): the thread tier wins on
repeat-heavy traffic (dedup and the cache absorb the work, and no IPC
is paid) and on single-core hosts (where a process pool can only add
overhead), while the process tier wins when concurrent **distinct**
queries must actually run the CPU-bound pipeline and the host has cores
to parallelize them across. Which regime a deployment is in is a
property of its *traffic*, not its configuration — so instead of asking
operators to guess, :class:`ExecutorSelector` observes it:

- at **startup** it picks a tier from the observed CPU count alone
  (processes can never win on one core);
- at **runtime** it watches a sliding window of recent requests — the
  *distinct-query ratio* (how much of the traffic is dedupable repeats)
  and the *per-request latency* (whether requests are actually
  pipeline-bound rather than served from cache) — and recommends
  switching tier when the traffic crosses the policy thresholds, with
  hysteresis (two thresholds plus a cooldown) so oscillating traffic
  does not thrash the pool;
- also at runtime, it **sizes the pool** (:meth:`ExecutorSelector.
  decide_pool_size`): fed the executor's live ``pending`` depth (the
  distinct computations currently in flight — see
  :attr:`~repro.service.executor.BatchExecutor.pending` /
  :attr:`~repro.service.process_executor.ProcessBatchExecutor.pending`)
  and the measured queue-wait distribution
  (:class:`~repro.service.admission.QueueWaitWindow`), it recommends
  growing the worker pool while work is genuinely backing up and
  shrinking it once the backlog is gone — again with a hysteresis band
  (grow and shrink thresholds far apart) and its own cooldown, so a
  bursty minute cannot see-saw the pool.

The selector only *recommends*; :class:`~repro.service.service.
QKBflyService` (with ``ServiceConfig(executor="auto")``) performs the
actual pool swap or resize. All methods are thread-safe and
non-blocking, so the asyncio front end may record observations
directly on the event loop.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Hashable, Optional, Tuple


def observed_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware).

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity
    mask a container is pinned to; ``sched_getaffinity`` reflects what
    the process can really use, which is what decides whether a process
    pool can pay for its IPC.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1


@dataclass
class AutoscalePolicy:
    """Thresholds governing :class:`ExecutorSelector` decisions.

    Attributes:
        window: Number of recent requests the sliding window holds.
        min_samples: No recommendation is made before this many
            requests have been observed (a cold window has a
            meaningless distinct ratio).
        distinct_high: Window distinct-query ratio at or above which
            traffic counts as distinct-heavy (favors processes).
        distinct_low: Ratio at or below which traffic counts as
            repeat-heavy (favors threads). Keeping ``distinct_low <
            distinct_high`` creates the hysteresis band in between,
            where the current tier is kept.
        min_pipeline_ms: Mean per-request latency floor (milliseconds)
            for a switch *to* processes: distinct-but-cheap traffic
            (store hits, trivial queries) gains nothing from a pool.
        cooldown_seconds: Minimum time between recommended switches —
            pool construction is expensive (process bootstrap pickles
            the session), so decisions are rate-limited.
        min_cpus_for_process: Hosts with fewer usable CPUs than this
            are pinned to the thread tier outright.
        pool_min_workers: Floor on the recommended pool size — the
            pool never shrinks below this many workers.
        pool_max_workers: Ceiling on the recommended pool size — the
            pool never grows past this many workers, however deep the
            backlog (protects the host from unbounded thread/process
            creation under attack traffic).
        pool_grow_backlog: Grow threshold, in *pending computations
            per worker*: with ``pending >= workers * pool_grow_backlog``
            the queue is outrunning the pool and a grow step is
            recommended (subject to the queue-wait corroboration and
            cooldown below).
        pool_shrink_backlog: Shrink threshold, same unit: with
            ``pending <= workers * pool_shrink_backlog`` the pool is
            mostly idle and a shrink step is recommended. Keeping
            ``pool_shrink_backlog < pool_grow_backlog`` creates the
            hysteresis band in between, where the current size is kept
            — the two defaults (2.0 and 0.25) put an 8x ratio between
            the triggers, so backlog noise cannot see-saw the pool.
        pool_grow_wait_seconds: Queue-wait corroboration for growth:
            when the measured wait window has samples, a grow step
            additionally requires its p95 to reach this many seconds —
            a momentary burst of ``pending`` whose work starts
            instantly is not a capacity problem. (An *empty* window —
            cold start — does not block growth: backlog alone decides.)
        pool_step: Workers added or removed per resize decision.
        pool_cooldown_seconds: Minimum time between recommended
            resizes — a resize retires and rebuilds worker pools, so
            decisions are rate-limited independently of the tier
            cooldown (sizing reacts on a faster timescale than tier
            switching, hence the lower default).
    """

    window: int = 64
    min_samples: int = 16
    distinct_high: float = 0.5
    distinct_low: float = 0.25
    min_pipeline_ms: float = 1.0
    cooldown_seconds: float = 30.0
    min_cpus_for_process: int = 2
    pool_min_workers: int = 1
    pool_max_workers: int = 16
    pool_grow_backlog: float = 2.0
    pool_shrink_backlog: float = 0.25
    pool_grow_wait_seconds: float = 0.05
    pool_step: int = 1
    pool_cooldown_seconds: float = 10.0


class ExecutorSelector:
    """Observe request traffic; recommend an execution tier and a pool
    size.

    Two independent control loops over one policy object:
    :meth:`decide` picks thread-vs-process from the traffic window
    (distinct ratio + latency), :meth:`decide_pool_size` grows or
    shrinks the worker pool from the live queue state (pending depth +
    measured waits). Each has its own hysteresis and cooldown, so a
    tier switch and a resize can never feed back into each other
    through shared rate limiting.

    Args:
        policy: Decision thresholds (defaults are deliberately
            conservative: switching needs sustained evidence).
        cpu_count: Usable CPUs; defaults to :func:`observed_cpu_count`.
            Injectable so tests can exercise multi-core policy on any
            host.
        clock: Monotonic time source, injectable for cooldown tests.
    """

    def __init__(
        self,
        policy: Optional[AutoscalePolicy] = None,
        cpu_count: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or AutoscalePolicy()
        if self.policy.window <= 0:
            raise ValueError("window must be positive")
        if self.policy.min_samples > self.policy.window:
            # The window can never hold min_samples entries, so decide()
            # would silently never switch — refuse the dead policy.
            raise ValueError("min_samples must not exceed window")
        if not self.policy.distinct_low <= self.policy.distinct_high:
            raise ValueError("distinct_low must not exceed distinct_high")
        if self.policy.pool_min_workers < 1:
            raise ValueError("pool_min_workers must be at least 1")
        if self.policy.pool_max_workers < self.policy.pool_min_workers:
            raise ValueError(
                "pool_max_workers must not be below pool_min_workers"
            )
        if not self.policy.pool_shrink_backlog < self.policy.pool_grow_backlog:
            # Equal thresholds leave no hysteresis band at all: every
            # decision point would be both a grow and a shrink trigger.
            raise ValueError(
                "pool_shrink_backlog must be below pool_grow_backlog"
            )
        if self.policy.pool_step < 1:
            raise ValueError("pool_step must be at least 1")
        self.cpu_count = (
            cpu_count if cpu_count is not None else observed_cpu_count()
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._window: Deque[Tuple[Hashable, float]] = deque(
            maxlen=self.policy.window
        )
        self._last_switch_at: Optional[float] = None
        self._last_resize_at: Optional[float] = None
        self.pinned_thread_reason: Optional[str] = None
        self.recorded = 0
        self.switches_recommended = 0
        self.resizes_recommended = 0

    def pin_to_thread(self, reason: str) -> None:
        """Permanently rule out the process tier for this deployment.

        Called when a process pool turned out to be *unavailable* (the
        session cannot be pickled, no multiprocessing support): without
        the pin, every cooldown expiry under distinct-heavy traffic
        would re-recommend the impossible switch, re-attempt the
        pickle, and churn a fresh fallback pool. ``reason`` is surfaced
        via :meth:`stats`.
        """
        with self._lock:
            self.pinned_thread_reason = reason

    # ---- observation -------------------------------------------------------

    def record(self, signature: Hashable, seconds: float) -> None:
        """Add one served request to the sliding window.

        ``signature`` identifies the request for the distinct-ratio
        computation (the serving layer passes the cache key); it is
        never interpreted beyond equality. Non-blocking (one lock'd
        deque append), so the asyncio front end calls this directly on
        the event loop.
        """
        with self._lock:
            self._window.append((signature, seconds))
            self.recorded += 1

    def distinct_ratio(self) -> float:
        """Distinct signatures over window size (1.0 for an empty window).

        1.0 means every recent request was unique — dedup and the cache
        cannot help, so pipeline execution dominates. Low values mean
        the traffic repeats itself and the thread tier serves it from
        cache/dedup without paying IPC.
        """
        with self._lock:
            if not self._window:
                return 1.0
            distinct = len({signature for signature, _ in self._window})
            return distinct / len(self._window)

    def mean_latency_ms(self) -> float:
        """Mean per-request latency over the window, in milliseconds."""
        with self._lock:
            if not self._window:
                return 0.0
            total = sum(seconds for _, seconds in self._window)
            return total / len(self._window) * 1000.0

    # ---- decisions ---------------------------------------------------------

    def initial_kind(self) -> str:
        """The tier to start on, from the CPU count alone.

        Multi-core hosts start on the process tier: at startup nothing
        is cached, so early traffic is pipeline-bound by construction
        and the GIL is the binding constraint. Single-core hosts are
        pinned to threads (IPC overhead can never be won back).
        """
        if self.cpu_count < self.policy.min_cpus_for_process:
            return "thread"
        return "process"

    def decide(self, current_kind: str) -> Optional[str]:
        """Recommend ``"thread"`` / ``"process"``, or None to stay put.

        A non-None return also arms the cooldown, so callers should
        treat it as a commitment and actually switch. The rules, in
        order:

        1. below ``min_cpus_for_process`` usable CPUs, always thread;
        2. fewer than ``min_samples`` observations (or still cooling
           down), no change;
        3. distinct ratio >= ``distinct_high`` *and* mean latency >=
           ``min_pipeline_ms``: recommend process;
        4. distinct ratio <= ``distinct_low``: recommend thread;
        5. otherwise (the hysteresis band): no change.
        """
        policy = self.policy
        if (
            self.cpu_count < policy.min_cpus_for_process
            or self.pinned_thread_reason is not None
        ):
            return self._recommend("thread", current_kind, cooldown=False)
        with self._lock:
            samples = len(self._window)
            if samples < policy.min_samples:
                return None
            now = self._clock()
            if (
                self._last_switch_at is not None
                and now - self._last_switch_at < policy.cooldown_seconds
            ):
                return None
            distinct = len({signature for signature, _ in self._window})
            ratio = distinct / samples
            mean_ms = (
                sum(seconds for _, seconds in self._window) / samples * 1000.0
            )
        if ratio >= policy.distinct_high and mean_ms >= policy.min_pipeline_ms:
            return self._recommend("process", current_kind)
        if ratio <= policy.distinct_low:
            return self._recommend("thread", current_kind)
        return None

    def _recommend(
        self, kind: str, current_kind: str, cooldown: bool = True
    ) -> Optional[str]:
        """None when already on ``kind``; else stamp cooldown and return."""
        if kind == current_kind:
            return None
        with self._lock:
            if cooldown:
                self._last_switch_at = self._clock()
            self.switches_recommended += 1
        return kind

    def decide_pool_size(
        self,
        current_workers: int,
        pending: int,
        queue_wait: Optional[Any] = None,
    ) -> Optional[int]:
        """Recommend a new worker count, or None to keep the pool.

        Args:
            current_workers: The pool's current size.
            pending: Distinct computations in flight right now — the
                executor's live queue depth (take the max over the
                request executor and the pipeline-tier pool; a flight
                appears in both while dispatched).
            queue_wait: The deployment's
                :class:`~repro.service.admission.QueueWaitWindow`
                (optional) — growth corroboration, see
                :attr:`AutoscalePolicy.pool_grow_wait_seconds`.

        The rules, in order (units and thresholds documented on
        :class:`AutoscalePolicy`):

        1. still inside ``pool_cooldown_seconds`` of the last resize:
           no change;
        2. ``pending >= current * pool_grow_backlog``, the pool is
           below ``pool_max_workers``, *and* the measured queue-wait
           p95 corroborates (or nothing has been measured yet):
           recommend ``current + pool_step`` (clamped to the ceiling);
        3. ``pending <= current * pool_shrink_backlog`` and the pool
           is above ``pool_min_workers``: recommend
           ``current - pool_step`` (clamped to the floor) — backlog
           alone decides, because the wait window may still hold
           samples from the busy period that just ended;
        4. otherwise (the hysteresis band): no change.

        A non-None return stamps the resize cooldown, so callers
        should treat it as a commitment and actually resize.
        """
        policy = self.policy
        if current_workers < 1:
            raise ValueError("current_workers must be positive")
        # The wait percentile takes the window's own lock; read it
        # before taking ours (nothing acquires them in the other
        # order, but keeping the scopes disjoint makes that obvious).
        wait_p95 = (
            queue_wait.percentile(0.95)
            if queue_wait is not None and len(queue_wait)
            else None
        )
        now = self._clock()
        with self._lock:
            # Check and stamp under one lock acquisition: two callers
            # racing past an expired cooldown must not both commit a
            # resize step inside the same window.
            if (
                self._last_resize_at is not None
                and now - self._last_resize_at < policy.pool_cooldown_seconds
            ):
                return None
            target: Optional[int] = None
            if (
                pending >= current_workers * policy.pool_grow_backlog
                and current_workers < policy.pool_max_workers
            ):
                if (
                    wait_p95 is None
                    or wait_p95 >= policy.pool_grow_wait_seconds
                ):
                    target = min(
                        policy.pool_max_workers,
                        current_workers + policy.pool_step,
                    )
            elif (
                pending <= current_workers * policy.pool_shrink_backlog
                and current_workers > policy.pool_min_workers
            ):
                target = max(
                    policy.pool_min_workers,
                    current_workers - policy.pool_step,
                )
            if target is None or target == current_workers:
                return None
            self._last_resize_at = now
            self.resizes_recommended += 1
        return target

    # ---- monitoring --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Selector state for the service's monitoring surface."""
        return {
            "cpu_count": self.cpu_count,
            "recorded": self.recorded,
            "window_size": len(self._window),
            "distinct_ratio": round(self.distinct_ratio(), 4),
            "mean_latency_ms": round(self.mean_latency_ms(), 3),
            "switches_recommended": self.switches_recommended,
            "resizes_recommended": self.resizes_recommended,
            "pinned_thread_reason": self.pinned_thread_reason,
        }


__all__ = ["AutoscalePolicy", "ExecutorSelector", "observed_cpu_count"]
