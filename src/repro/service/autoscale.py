"""Runtime thread-vs-process executor selection.

The serving layer has two execution tiers with opposite sweet spots
(see :mod:`repro.service.process_executor`): the thread tier wins on
repeat-heavy traffic (dedup and the cache absorb the work, and no IPC
is paid) and on single-core hosts (where a process pool can only add
overhead), while the process tier wins when concurrent **distinct**
queries must actually run the CPU-bound pipeline and the host has cores
to parallelize them across. Which regime a deployment is in is a
property of its *traffic*, not its configuration — so instead of asking
operators to guess, :class:`ExecutorSelector` observes it:

- at **startup** it picks a tier from the observed CPU count alone
  (processes can never win on one core);
- at **runtime** it watches a sliding window of recent requests — the
  *distinct-query ratio* (how much of the traffic is dedupable repeats)
  and the *per-request latency* (whether requests are actually
  pipeline-bound rather than served from cache) — and recommends
  switching tier when the traffic crosses the policy thresholds, with
  hysteresis (two thresholds plus a cooldown) so oscillating traffic
  does not thrash the pool.

The selector only *recommends*; :class:`~repro.service.service.
QKBflyService` (with ``ServiceConfig(executor="auto")``) performs the
actual pool swap. All methods are thread-safe and non-blocking, so the
asyncio front end may record observations directly on the event loop.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Hashable, Optional, Tuple


def observed_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware).

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity
    mask a container is pinned to; ``sched_getaffinity`` reflects what
    the process can really use, which is what decides whether a process
    pool can pay for its IPC.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1


@dataclass
class AutoscalePolicy:
    """Thresholds governing :class:`ExecutorSelector` decisions.

    Attributes:
        window: Number of recent requests the sliding window holds.
        min_samples: No recommendation is made before this many
            requests have been observed (a cold window has a
            meaningless distinct ratio).
        distinct_high: Window distinct-query ratio at or above which
            traffic counts as distinct-heavy (favors processes).
        distinct_low: Ratio at or below which traffic counts as
            repeat-heavy (favors threads). Keeping ``distinct_low <
            distinct_high`` creates the hysteresis band in between,
            where the current tier is kept.
        min_pipeline_ms: Mean per-request latency floor (milliseconds)
            for a switch *to* processes: distinct-but-cheap traffic
            (store hits, trivial queries) gains nothing from a pool.
        cooldown_seconds: Minimum time between recommended switches —
            pool construction is expensive (process bootstrap pickles
            the session), so decisions are rate-limited.
        min_cpus_for_process: Hosts with fewer usable CPUs than this
            are pinned to the thread tier outright.
    """

    window: int = 64
    min_samples: int = 16
    distinct_high: float = 0.5
    distinct_low: float = 0.25
    min_pipeline_ms: float = 1.0
    cooldown_seconds: float = 30.0
    min_cpus_for_process: int = 2


class ExecutorSelector:
    """Observe request traffic; recommend a thread or process tier.

    Args:
        policy: Decision thresholds (defaults are deliberately
            conservative: switching needs sustained evidence).
        cpu_count: Usable CPUs; defaults to :func:`observed_cpu_count`.
            Injectable so tests can exercise multi-core policy on any
            host.
        clock: Monotonic time source, injectable for cooldown tests.
    """

    def __init__(
        self,
        policy: Optional[AutoscalePolicy] = None,
        cpu_count: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or AutoscalePolicy()
        if self.policy.window <= 0:
            raise ValueError("window must be positive")
        if self.policy.min_samples > self.policy.window:
            # The window can never hold min_samples entries, so decide()
            # would silently never switch — refuse the dead policy.
            raise ValueError("min_samples must not exceed window")
        if not self.policy.distinct_low <= self.policy.distinct_high:
            raise ValueError("distinct_low must not exceed distinct_high")
        self.cpu_count = (
            cpu_count if cpu_count is not None else observed_cpu_count()
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._window: Deque[Tuple[Hashable, float]] = deque(
            maxlen=self.policy.window
        )
        self._last_switch_at: Optional[float] = None
        self.pinned_thread_reason: Optional[str] = None
        self.recorded = 0
        self.switches_recommended = 0

    def pin_to_thread(self, reason: str) -> None:
        """Permanently rule out the process tier for this deployment.

        Called when a process pool turned out to be *unavailable* (the
        session cannot be pickled, no multiprocessing support): without
        the pin, every cooldown expiry under distinct-heavy traffic
        would re-recommend the impossible switch, re-attempt the
        pickle, and churn a fresh fallback pool. ``reason`` is surfaced
        via :meth:`stats`.
        """
        with self._lock:
            self.pinned_thread_reason = reason

    # ---- observation -------------------------------------------------------

    def record(self, signature: Hashable, seconds: float) -> None:
        """Add one served request to the sliding window.

        ``signature`` identifies the request for the distinct-ratio
        computation (the serving layer passes the cache key); it is
        never interpreted beyond equality. Non-blocking (one lock'd
        deque append), so the asyncio front end calls this directly on
        the event loop.
        """
        with self._lock:
            self._window.append((signature, seconds))
            self.recorded += 1

    def distinct_ratio(self) -> float:
        """Distinct signatures over window size (1.0 for an empty window).

        1.0 means every recent request was unique — dedup and the cache
        cannot help, so pipeline execution dominates. Low values mean
        the traffic repeats itself and the thread tier serves it from
        cache/dedup without paying IPC.
        """
        with self._lock:
            if not self._window:
                return 1.0
            distinct = len({signature for signature, _ in self._window})
            return distinct / len(self._window)

    def mean_latency_ms(self) -> float:
        """Mean per-request latency over the window, in milliseconds."""
        with self._lock:
            if not self._window:
                return 0.0
            total = sum(seconds for _, seconds in self._window)
            return total / len(self._window) * 1000.0

    # ---- decisions ---------------------------------------------------------

    def initial_kind(self) -> str:
        """The tier to start on, from the CPU count alone.

        Multi-core hosts start on the process tier: at startup nothing
        is cached, so early traffic is pipeline-bound by construction
        and the GIL is the binding constraint. Single-core hosts are
        pinned to threads (IPC overhead can never be won back).
        """
        if self.cpu_count < self.policy.min_cpus_for_process:
            return "thread"
        return "process"

    def decide(self, current_kind: str) -> Optional[str]:
        """Recommend ``"thread"`` / ``"process"``, or None to stay put.

        A non-None return also arms the cooldown, so callers should
        treat it as a commitment and actually switch. The rules, in
        order:

        1. below ``min_cpus_for_process`` usable CPUs, always thread;
        2. fewer than ``min_samples`` observations (or still cooling
           down), no change;
        3. distinct ratio >= ``distinct_high`` *and* mean latency >=
           ``min_pipeline_ms``: recommend process;
        4. distinct ratio <= ``distinct_low``: recommend thread;
        5. otherwise (the hysteresis band): no change.
        """
        policy = self.policy
        if (
            self.cpu_count < policy.min_cpus_for_process
            or self.pinned_thread_reason is not None
        ):
            return self._recommend("thread", current_kind, cooldown=False)
        with self._lock:
            samples = len(self._window)
            if samples < policy.min_samples:
                return None
            now = self._clock()
            if (
                self._last_switch_at is not None
                and now - self._last_switch_at < policy.cooldown_seconds
            ):
                return None
            distinct = len({signature for signature, _ in self._window})
            ratio = distinct / samples
            mean_ms = (
                sum(seconds for _, seconds in self._window) / samples * 1000.0
            )
        if ratio >= policy.distinct_high and mean_ms >= policy.min_pipeline_ms:
            return self._recommend("process", current_kind)
        if ratio <= policy.distinct_low:
            return self._recommend("thread", current_kind)
        return None

    def _recommend(
        self, kind: str, current_kind: str, cooldown: bool = True
    ) -> Optional[str]:
        """None when already on ``kind``; else stamp cooldown and return."""
        if kind == current_kind:
            return None
        with self._lock:
            if cooldown:
                self._last_switch_at = self._clock()
            self.switches_recommended += 1
        return kind

    # ---- monitoring --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Selector state for the service's monitoring surface."""
        return {
            "cpu_count": self.cpu_count,
            "recorded": self.recorded,
            "window_size": len(self._window),
            "distinct_ratio": round(self.distinct_ratio(), 4),
            "mean_latency_ms": round(self.mean_latency_ms(), 3),
            "switches_recommended": self.switches_recommended,
            "pinned_thread_reason": self.pinned_thread_reason,
        }


__all__ = ["AutoscalePolicy", "ExecutorSelector", "observed_cpu_count"]
