"""The fact-search index: FTS5 virtual tables over one shard's store.

Each :class:`~repro.service.kb_store.KbStore` shard carries four extra
tables next to the relational KB schema (see ``docs/SEARCH.md``):

- ``search_facts`` — one denormalized row per stored fact (subject,
  predicate, pattern, the object displays as JSON, provenance doc id,
  plus the owning entry's ``created_at`` / ``corpus_version`` /
  ``query``), keyed by the fact's own ``facts.fact_id``;
- ``fact_search`` — the FTS5 index over the textual columns of
  ``search_facts`` (``rowid`` = ``search_facts.id``);
- ``search_entities`` / ``entity_search`` — the same pair for linked
  entity records and emerging clusters.

The rows are written by :func:`index_entry` *inside* the save
transaction of ``KbStore._save_locked``, so a crash mid-index rolls
back with the entry — a fact row and its index row commit atomically
or not at all. Deletions need no hook anywhere: the
``search_cleanup`` trigger installed by :func:`ensure_search_schema`
fires on every ``kb_entries`` delete (replace-saves, TTL/size
compaction, ``delete_stale``, explicit deletes) and clears all four
tables in the same transaction.

FTS5 is probed at schema-creation time: on a SQLite build without the
extension :func:`ensure_search_schema` returns ``False``, the store
skips indexing, and the query layer raises
:class:`~repro.service.api.SearchUnavailable` instead of crashing.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, Tuple

_SEARCH_SCHEMA = """
CREATE TABLE IF NOT EXISTS search_facts (
    id             INTEGER PRIMARY KEY,
    entry_id       INTEGER NOT NULL,
    created_at     REAL NOT NULL,
    corpus_version TEXT NOT NULL,
    query          TEXT NOT NULL,
    subject        TEXT NOT NULL,
    predicate      TEXT NOT NULL,
    pattern        TEXT NOT NULL,
    objects        TEXT NOT NULL,
    provenance     TEXT NOT NULL,
    confidence     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_search_facts_entry
    ON search_facts(entry_id);
CREATE INDEX IF NOT EXISTS idx_search_facts_created
    ON search_facts(created_at, id);
CREATE TABLE IF NOT EXISTS search_entities (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    entry_id       INTEGER NOT NULL,
    created_at     REAL NOT NULL,
    corpus_version TEXT NOT NULL,
    query          TEXT NOT NULL,
    entity         TEXT NOT NULL,
    display        TEXT NOT NULL,
    kind           TEXT NOT NULL,
    types          TEXT NOT NULL,
    mentions       INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_search_entities_entry
    ON search_entities(entry_id);
CREATE INDEX IF NOT EXISTS idx_search_entities_created
    ON search_entities(created_at, id);
CREATE VIRTUAL TABLE IF NOT EXISTS fact_search USING fts5(
    subject, predicate, pattern, objects, provenance
);
CREATE VIRTUAL TABLE IF NOT EXISTS entity_search USING fts5(
    entity, display, types
);
CREATE TRIGGER IF NOT EXISTS search_cleanup
AFTER DELETE ON kb_entries BEGIN
    DELETE FROM fact_search WHERE rowid IN (
        SELECT id FROM search_facts WHERE entry_id = OLD.entry_id);
    DELETE FROM search_facts WHERE entry_id = OLD.entry_id;
    DELETE FROM entity_search WHERE rowid IN (
        SELECT id FROM search_entities WHERE entry_id = OLD.entry_id);
    DELETE FROM search_entities WHERE entry_id = OLD.entry_id;
END;
"""


def fts5_supported(conn: sqlite3.Connection) -> bool:
    """Probe the connection's SQLite build for the FTS5 extension."""
    try:
        conn.execute(
            "CREATE VIRTUAL TABLE IF NOT EXISTS _fts5_probe USING fts5(x)"
        )
        conn.execute("DROP TABLE IF EXISTS _fts5_probe")
    except sqlite3.OperationalError:
        return False
    return True


def ensure_search_schema(conn: sqlite3.Connection) -> bool:
    """Create the search tables + cleanup trigger; False without FTS5.

    Idempotent (``IF NOT EXISTS`` throughout); the caller commits. On
    a SQLite build without FTS5 nothing is created and the store runs
    index-less — saves skip :func:`index_entry`, searches raise
    ``SearchUnavailable``.
    """
    if not fts5_supported(conn):
        return False
    conn.executescript(_SEARCH_SCHEMA)
    return True


def index_entry(conn: sqlite3.Connection, entry_id: int) -> None:
    """Index one just-saved entry from its relational rows.

    Called inside the save transaction, after the ``facts`` /
    ``fact_objects`` / ``emerging_entities`` / ``entity_records`` rows
    are written and before the commit — the entry and its index rows
    are atomic. Everything is re-derived from the canonical tables, so
    the offline :func:`rebuild_index` and the incremental hook can
    never drift apart.
    """
    entry = conn.execute(
        "SELECT query, corpus_version, created_at FROM kb_entries "
        "WHERE entry_id = ?",
        (entry_id,),
    ).fetchone()
    if entry is None:
        return
    query, corpus_version, created_at = entry

    objects_by_fact: Dict[int, list] = {}
    for fact_id, display in conn.execute(
        "SELECT o.fact_id, o.display FROM fact_objects o "
        "JOIN facts f ON f.fact_id = o.fact_id "
        "WHERE f.entry_id = ? ORDER BY o.fact_id, o.position",
        (entry_id,),
    ):
        objects_by_fact.setdefault(fact_id, []).append(display)

    fact_rows = conn.execute(
        "SELECT fact_id, subject_display, predicate, pattern, "
        "confidence, doc_id FROM facts WHERE entry_id = ? "
        "ORDER BY position",
        (entry_id,),
    ).fetchall()
    for fact_id, subject, predicate, pattern, confidence, doc_id in fact_rows:
        objects = objects_by_fact.get(fact_id, [])
        conn.execute(
            "INSERT INTO search_facts (id, entry_id, created_at, "
            "corpus_version, query, subject, predicate, pattern, "
            "objects, provenance, confidence) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                fact_id,
                entry_id,
                created_at,
                corpus_version,
                query,
                subject,
                predicate,
                pattern,
                json.dumps(objects),
                doc_id,
                confidence,
            ),
        )
        conn.execute(
            "INSERT INTO fact_search (rowid, subject, predicate, "
            "pattern, objects, provenance) VALUES (?, ?, ?, ?, ?, ?)",
            (
                fact_id,
                subject,
                predicate,
                pattern,
                " ".join(objects),
                doc_id,
            ),
        )

    def _index_entity(
        entity: str, display: str, kind: str, types: list, mentions: int
    ) -> None:
        cur = conn.execute(
            "INSERT INTO search_entities (entry_id, created_at, "
            "corpus_version, query, entity, display, kind, types, "
            "mentions) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                entry_id,
                created_at,
                corpus_version,
                query,
                entity,
                display,
                kind,
                json.dumps(types),
                mentions,
            ),
        )
        conn.execute(
            "INSERT INTO entity_search (rowid, entity, display, types) "
            "VALUES (?, ?, ?, ?)",
            (cur.lastrowid, entity, display, " ".join(types)),
        )

    for entity_id, mentions, types in conn.execute(
        "SELECT entity_id, mentions, types FROM entity_records "
        "WHERE entry_id = ? ORDER BY entity_id",
        (entry_id,),
    ):
        mention_list = json.loads(mentions)
        _index_entity(
            entity_id,
            " ".join(mention_list) if mention_list else entity_id,
            "linked",
            json.loads(types) if types is not None else [],
            len(mention_list),
        )
    for cluster_id, display_name, guessed_type, mentions in conn.execute(
        "SELECT cluster_id, display_name, guessed_type, mentions "
        "FROM emerging_entities WHERE entry_id = ? ORDER BY cluster_id",
        (entry_id,),
    ):
        _index_entity(
            cluster_id,
            display_name,
            "emerging",
            [guessed_type] if guessed_type else [],
            len(json.loads(mentions)),
        )


def rebuild_index(conn: sqlite3.Connection) -> Tuple[int, int]:
    """Rebuild one shard's search index from the relational tables.

    The offline recovery path (``docs/SEARCH.md`` has the recipe):
    wipes all four search tables and re-indexes every stored entry.
    The caller holds the store lock and commits. Returns the
    ``(fact_rows, entity_rows)`` counts after the rebuild.
    """
    conn.execute("DELETE FROM fact_search")
    conn.execute("DELETE FROM search_facts")
    conn.execute("DELETE FROM entity_search")
    conn.execute("DELETE FROM search_entities")
    for (entry_id,) in conn.execute(
        "SELECT entry_id FROM kb_entries ORDER BY entry_id"
    ).fetchall():
        index_entry(conn, entry_id)
    facts = conn.execute("SELECT COUNT(*) FROM search_facts").fetchone()[0]
    entities = conn.execute(
        "SELECT COUNT(*) FROM search_entities"
    ).fetchone()[0]
    return int(facts), int(entities)


def integrity_check(conn: sqlite3.Connection) -> Dict[str, Any]:
    """FTS-vs-relational consistency probe (fault-injection tests).

    Runs the FTS5 ``integrity-check`` command on both virtual tables
    (raises ``sqlite3.DatabaseError`` on internal corruption) and
    compares row counts between each projection table, its FTS twin,
    and the canonical relational table.
    """
    conn.execute("INSERT INTO fact_search(fact_search) VALUES('integrity-check')")
    conn.execute(
        "INSERT INTO entity_search(entity_search) VALUES('integrity-check')"
    )
    counts = {
        name: int(conn.execute(f"SELECT COUNT(*) FROM {name}").fetchone()[0])
        for name in (
            "facts",
            "search_facts",
            "fact_search",
            "search_entities",
            "entity_search",
        )
    }
    counts["consistent"] = (
        counts["facts"] == counts["search_facts"] == counts["fact_search"]
        and counts["search_entities"] == counts["entity_search"]
    )
    return counts


__all__ = [
    "ensure_search_schema",
    "fts5_supported",
    "index_entry",
    "integrity_check",
    "rebuild_index",
]
