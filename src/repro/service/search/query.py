"""Keyset-paginated search over one store or a fan-out of shards.

The read half of the search subsystem (``docs/SEARCH.md``):

- **cursors** — the ``{sortkey}|{rowid}`` format: the sort key of the
  last row on the page, then its *global* row id. The global id of a
  fact row is ``local_id * num_shards + shard_index`` — unique across
  shards, monotonic per shard (SQLite ``AUTOINCREMENT`` ids are never
  reused), and equal to the plain row id on a single shard. A keyset
  bound on ``(sortkey, global_id)`` makes every page request O(page),
  immune to the OFFSET drift that loses or duplicates rows when
  writes land between pages;
- **per-shard execution** — :func:`search_shard` builds and runs the
  SQL for one shard (plain table scan of the projection table, or an
  FTS5 ``MATCH`` join when ``q`` is given), pushing filters and the
  keyset bound into the query so a shard returns at most
  ``limit`` rows;
- **fan-out merge** — :func:`search_paginated` asks every shard for
  ``limit + 1`` candidate rows past the cursor, merge-sorts the
  candidates on ``(sortkey, global_id)``, takes the page, and emits
  the standard envelope (``results`` / ``next_cursor`` / ``has_more``).

Sort orders: ``id`` (default — stable walk order), ``created_at`` /
``-created_at``, and ``rank`` (bm25, ascending = most relevant first;
requires ``q``). Cursors are only meaningful for the shard count they
were minted under: a rebalance invalidates open cursors.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, List, Optional, Sequence

#: Sort orders the query layer accepts.
SORT_ORDERS = ("id", "created_at", "-created_at", "rank")

#: Default / ceiling page sizes enforced by the API envelopes (the
#: gateway clamps to the ceiling; direct callers get a 400-class error).
DEFAULT_SEARCH_LIMIT = 50
MAX_SEARCH_LIMIT = 200

_FACT_COLUMNS = (
    "entry_id, created_at, corpus_version, query, subject, predicate, "
    "pattern, objects, provenance, confidence"
)
_ENTITY_COLUMNS = (
    "entry_id, created_at, corpus_version, query, entity, display, "
    "kind, types, mentions"
)


def fts_match_expression(q: str) -> str:
    """A user query as a safe FTS5 MATCH expression.

    Every whitespace token is wrapped as a quoted phrase (inner quotes
    doubled), so FTS5 operator syntax in user input (``AND``, ``*``,
    unbalanced quotes) can never raise a syntax error — the tokens are
    implicitly AND-ed, which is the search semantics documented in
    ``docs/SEARCH.md``.
    """
    tokens = [token for token in q.split() if token]
    if not tokens:
        raise ValueError("search query must contain at least one token")
    return " ".join('"{}"'.format(token.replace('"', '""')) for token in tokens)


def encode_cursor(sort: str, key: Any, global_id: int) -> str:
    """``{sortkey}|{rowid}`` for the last row of a page."""
    if sort == "id":
        return f"{int(global_id)}|{int(global_id)}"
    # .17g round-trips any float exactly, so the shard-side keyset
    # comparison sees the same value the page was cut at.
    return f"{format(float(key), '.17g')}|{int(global_id)}"


def decode_cursor(cursor: str, sort: str):
    """Inverse of :func:`encode_cursor`; raises ValueError on garbage."""
    head, sep, tail = cursor.rpartition("|")
    if not sep or not head or not tail:
        raise ValueError(f"malformed cursor {cursor!r}")
    try:
        global_id = int(tail)
        key: Any = int(head) if sort == "id" else float(head)
    except ValueError as error:
        raise ValueError(f"malformed cursor {cursor!r}") from error
    return key, global_id


def _filters(kind: str, params: Dict[str, Any], prefix: str):
    """WHERE fragments + bind values for the field filters."""
    clauses: List[str] = []
    values: List[Any] = []
    entity = params.get("entity")
    if entity is not None:
        match_col = "subject" if kind == "facts" else "entity"
        extra_col = "objects" if kind == "facts" else "display"
        clauses.append(
            f"(lower({prefix}{match_col}) = lower(?) "
            f"OR instr(lower({prefix}{extra_col}), lower(?)) > 0)"
        )
        values.extend([entity, entity])
    pattern = params.get("pattern")
    if pattern is not None:
        clauses.append(f"{prefix}pattern = ?")
        values.append(pattern)
    corpus_version = params.get("corpus_version")
    if corpus_version is not None:
        clauses.append(f"{prefix}corpus_version = ?")
        values.append(corpus_version)
    created_after = params.get("created_after")
    if created_after is not None:
        clauses.append(f"{prefix}created_at >= ?")
        values.append(float(created_after))
    created_before = params.get("created_before")
    if created_before is not None:
        clauses.append(f"{prefix}created_at <= ?")
        values.append(float(created_before))
    return clauses, values


def _keyset(sort: str, gid_expr: str, params: Dict[str, Any]):
    """Keyset WHERE fragment + bind values past the decoded cursor."""
    after_id = params.get("after_id")
    if after_id is None:
        return [], []
    after_key = params.get("after_key")
    if sort == "id":
        return [f"{gid_expr} > ?"], [int(after_id)]
    column = "score" if sort == "rank" else "created_at"
    op = "<" if sort == "-created_at" else ">"
    return (
        [f"({column}, {gid_expr}) {op} (?, ?)"],
        [after_key, int(after_id)],
    )


def _order(sort: str, key_col: str, gid_col: str) -> str:
    if sort == "id":
        return f"ORDER BY {gid_col}"
    if sort == "-created_at":
        return f"ORDER BY {key_col} DESC, {gid_col} DESC"
    return f"ORDER BY {key_col}, {gid_col}"


def search_shard(
    conn: sqlite3.Connection, params: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Run one shard's slice of a paginated search.

    ``params`` is the JSON-safe dict the fabric ships to shard
    servers: the request fields (``kind``, ``q``, filters, ``sort``,
    ``limit``), the decoded cursor (``after_key`` / ``after_id``), and
    the global-id arithmetic (``stride`` = shard count, ``offset`` =
    this shard's index). Returns at most ``limit`` plain row dicts
    carrying ``gid`` (and ``score`` when ``q`` was given).
    """
    kind = params["kind"]
    sort = params.get("sort", "id")
    if sort not in SORT_ORDERS:
        raise ValueError(f"unknown sort order {sort!r}")
    q = params.get("q")
    if sort == "rank" and not q:
        raise ValueError("sort=rank requires a full-text query (q)")
    stride = int(params.get("stride", 1))
    offset = int(params.get("offset", 0))
    limit = max(1, int(params["limit"]))
    table = "search_facts" if kind == "facts" else "search_entities"
    fts = "fact_search" if kind == "facts" else "entity_search"
    columns = _FACT_COLUMNS if kind == "facts" else _ENTITY_COLUMNS

    if q:
        match = fts_match_expression(q)
        prefixed = ", ".join(f"t.{c.strip()}" for c in columns.split(","))
        inner = (
            f"SELECT t.id * ? + ? AS gid, {prefixed}, "
            f"bm25({fts}) AS score FROM {fts} "
            f"JOIN {table} t ON t.id = {fts}.rowid "
            f"WHERE {fts} MATCH ?"
        )
        values: List[Any] = [stride, offset, match]
        filter_clauses, filter_values = _filters(kind, params, "t.")
        if filter_clauses:
            inner += " AND " + " AND ".join(filter_clauses)
            values.extend(filter_values)
        keyset_clauses, keyset_values = _keyset(sort, "gid", params)
        sql = f"SELECT * FROM ({inner})"
        if keyset_clauses:
            sql += " WHERE " + " AND ".join(keyset_clauses)
            values.extend(keyset_values)
        key_col = "score" if sort == "rank" else "created_at"
        sql += f" {_order(sort, key_col, 'gid')} LIMIT ?"
        values.append(limit)
    else:
        gid_expr = "id * ? + ?"
        sql = f"SELECT {gid_expr} AS gid, {columns} FROM {table}"
        values = [stride, offset]
        clauses, filter_values = _filters(kind, params, "")
        values.extend(filter_values)
        keyset_clauses, keyset_values = _keyset(sort, gid_expr, params)
        if keyset_clauses:
            # The gid expression inside the keyset clause carries its
            # own stride/offset binds, in clause order.
            clauses.extend(keyset_clauses)
            values.extend([stride, offset])
            values.extend(keyset_values)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += f" {_order(sort, 'created_at', 'id')} LIMIT ?"
        values.append(limit)

    names = ["gid"] + [c.strip() for c in columns.split(",")]
    if q:
        names.append("score")
    rows = []
    for record in conn.execute(sql, values):
        row = dict(zip(names, record))
        json_col = "objects" if kind == "facts" else "types"
        row[json_col] = json.loads(row[json_col])
        rows.append(row)
    return rows


def _merge_key(sort: str):
    if sort == "id":
        return lambda row: (row["gid"],)
    if sort == "rank":
        return lambda row: (row["score"], row["gid"])
    return lambda row: (row["created_at"], row["gid"])


def search_paginated(
    backends: Sequence[Any],
    kind: str,
    *,
    q: Optional[str] = None,
    entity: Optional[str] = None,
    pattern: Optional[str] = None,
    corpus_version: Optional[str] = None,
    created_after: Optional[float] = None,
    created_before: Optional[float] = None,
    sort: str = "id",
    limit: int = DEFAULT_SEARCH_LIMIT,
    cursor: Optional[str] = None,
) -> Dict[str, Any]:
    """One page of results merged across ``backends``.

    ``backends`` is the frozen shard snapshot for this page — local
    :class:`~repro.service.kb_store.KbStore` objects, fabric replica
    groups, or a single store. Each shard is asked for ``limit + 1``
    rows past the cursor (its keyset bound makes that O(page) on the
    shard); the merged page is cut at ``limit`` and the spill proves
    ``has_more`` without a count query. Raises ValueError on a bad
    sort/cursor combination — the API layer maps that to a 400.
    """
    if sort not in SORT_ORDERS:
        raise ValueError(f"unknown sort order {sort!r}")
    if sort == "rank" and not q:
        raise ValueError("sort=rank requires a full-text query (q)")
    after_key = after_id = None
    if cursor:
        after_key, after_id = decode_cursor(cursor, sort)
    params: Dict[str, Any] = {
        "kind": kind,
        "q": q,
        "entity": entity,
        "pattern": pattern,
        "corpus_version": corpus_version,
        "created_after": created_after,
        "created_before": created_before,
        "sort": sort,
        "limit": int(limit) + 1,
        "after_key": after_key,
        "after_id": after_id,
        "stride": len(backends),
    }
    rows: List[Dict[str, Any]] = []
    for index, backend in enumerate(backends):
        shard_params = dict(params, offset=index)
        if kind == "facts":
            rows.extend(backend.search_facts(shard_params))
        else:
            rows.extend(backend.search_entities(shard_params))
    rows.sort(key=_merge_key(sort), reverse=(sort == "-created_at"))
    has_more = len(rows) > limit
    page = rows[:limit]
    next_cursor = None
    if has_more and page:
        last = page[-1]
        key = _merge_key(sort)(last)[0]
        next_cursor = encode_cursor(sort, key, last["gid"])
    return {
        "results": page,
        "next_cursor": next_cursor,
        "has_more": has_more,
    }


def store_backends(store: Any) -> List[Any]:
    """The frozen per-shard backend list for one page request.

    A sharded store exposes ``shard_backends()`` (a snapshot under its
    routing lock — fabric replica groups included); a plain
    :class:`~repro.service.kb_store.KbStore` is its own single shard.
    """
    getter = getattr(store, "shard_backends", None)
    if getter is not None:
        return getter()
    return [store]


__all__ = [
    "DEFAULT_SEARCH_LIMIT",
    "MAX_SEARCH_LIMIT",
    "SORT_ORDERS",
    "decode_cursor",
    "encode_cursor",
    "fts_match_expression",
    "search_paginated",
    "search_shard",
    "store_backends",
]
