"""Fact-search subsystem: FTS5 indexing + keyset-paginated queries.

Turns the KB store from a point-lookup cache into a queryable
knowledge service (``docs/SEARCH.md``):

- :mod:`repro.service.search.index` — the per-shard FTS5 schema, the
  incremental save-time indexer, the offline rebuild, and the
  integrity probe;
- :mod:`repro.service.search.query` — ``{sortkey}|{rowid}`` cursors,
  per-shard SQL execution, and the multi-shard ranked merge behind
  ``GET /v1/facts`` / ``GET /v1/entities``.
"""

from repro.service.search.index import (
    ensure_search_schema,
    fts5_supported,
    index_entry,
    integrity_check,
    rebuild_index,
)
from repro.service.search.query import (
    DEFAULT_SEARCH_LIMIT,
    MAX_SEARCH_LIMIT,
    SORT_ORDERS,
    decode_cursor,
    encode_cursor,
    fts_match_expression,
    search_paginated,
    search_shard,
    store_backends,
)

__all__ = [
    "DEFAULT_SEARCH_LIMIT",
    "MAX_SEARCH_LIMIT",
    "SORT_ORDERS",
    "decode_cursor",
    "encode_cursor",
    "ensure_search_schema",
    "fts5_supported",
    "fts_match_expression",
    "index_entry",
    "integrity_check",
    "rebuild_index",
    "search_paginated",
    "search_shard",
    "store_backends",
]
