"""LRU query cache for the serving layer.

Repeated queries dominate real traffic, and QKBfly's per-query pipeline
(retrieval -> NLP -> semantic graph -> densification -> canonicalization)
is the expensive part — so the serving layer answers repeats from an
in-memory cache. Entries are keyed on the *query signature*: the
normalized query text, the retrieval channel and document count, the
system variant (mode, algorithm) and the ``corpus_version`` stamp of the
session. Any corpus change yields a new version and therefore a clean
miss; stale entries are evicted lazily and via
:meth:`QueryCache.invalidate_corpus_version`.

Eviction is least-recently-used with an optional wall-clock TTL. The
cache is thread-safe: the batch executor's worker threads share one
instance — and its critical sections are microsecond-scale, which is
what lets the asyncio front end probe it directly on the event loop.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional


def normalize_query(query: str) -> str:
    """Case-fold and collapse whitespace so trivial variants share a key."""
    return " ".join(query.lower().split())


@dataclass(frozen=True)
class CacheKey:
    """Identity of a cacheable query result.

    Two requests share a key exactly when the serving layer would
    produce byte-identical KBs for them: same normalized query, same
    retrieval inputs, same system variant, same corpus snapshot.
    ``config_digest`` covers the remaining result-shaping pipeline
    knobs beyond mode/algorithm (parser, tau, triples_only, weights,
    ILP budget) so a persistent store is never read across configs.
    """

    query: str
    mode: str
    algorithm: str
    corpus_version: str
    source: str = "wikipedia"
    num_documents: int = 1
    config_digest: str = ""

    @classmethod
    def for_request(
        cls,
        query: str,
        mode: str,
        algorithm: str,
        corpus_version: str,
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
    ) -> "CacheKey":
        """Build a key from a raw request, normalizing the query text."""
        return cls(
            query=normalize_query(query),
            mode=mode,
            algorithm=algorithm,
            corpus_version=corpus_version,
            source=source,
            num_documents=num_documents,
            config_digest=config_digest,
        )

    def signature(self) -> str:
        """Stable hex signature over every key field.

        This is the ``request_key`` of the v1 envelope: the same
        identity the cache and store key on, in a form that survives
        the wire (unlike the builtin ``hash``, it is stable across
        processes and Python versions).
        """
        payload = "\x1f".join(
            (
                self.query,
                self.mode,
                self.algorithm,
                self.corpus_version,
                self.source,
                str(self.num_documents),
                self.config_digest,
            )
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


class QueryCache:
    """Thread-safe LRU cache with TTL and corpus-version invalidation.

    Args:
        max_size: Entry count ceiling; the least recently used entry is
            evicted when a put would exceed it.
        ttl_seconds: Optional time-to-live; entries older than this are
            treated as misses and dropped.
        clock: Injectable time source (monotonic seconds) for tests.
    """

    def __init__(
        self,
        max_size: int = 256,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._inserted_at: Dict[CacheKey, float] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries and not self._expired(key)

    def get(self, key: CacheKey, count: bool = True) -> Optional[Any]:
        """Return the cached value, refreshing recency; None on a miss.

        ``count=False`` performs the same lookup without touching the
        hit/miss counters — for double-check lookups whose outcome was
        already counted once (the executor re-checks after queueing).
        """
        with self._lock:
            if key not in self._entries:
                if count:
                    self.misses += 1
                return None
            if self._expired(key):
                del self._entries[key]
                del self._inserted_at[key]
                self.expirations += 1
                if count:
                    self.misses += 1
                return None
            self._entries.move_to_end(key)
            if count:
                self.hits += 1
            return self._entries[key]

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past ``max_size``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self._inserted_at[key] = self._clock()
            while len(self._entries) > self.max_size:
                evicted, _ = self._entries.popitem(last=False)
                del self._inserted_at[evicted]
                self.evictions += 1

    def invalidate_corpus_version(self, current_version: str) -> int:
        """Drop every entry stamped with a different corpus version.

        Called when the corpus advances; returns the number of entries
        removed.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.corpus_version != current_version
            ]
            for key in stale:
                del self._entries[key]
                del self._inserted_at[key]
            self.invalidations += len(stale)
            return len(stale)

    def invalidate_entities(self, entities) -> int:
        """Drop every entry whose normalized query touches one of
        ``entities`` (the entity-granular twin of
        :meth:`invalidate_corpus_version`, used by live ingest).

        Applies :func:`repro.service.ingest.match.query_touches` — the
        same rule the KB store and stage cache apply — so one ingest
        cools exactly the same query slice in every tier. Returns the
        number of entries removed.
        """
        from repro.service.ingest.match import touches_any

        entity_list = list(entities)
        if not entity_list:
            return 0
        with self._lock:
            stale = [
                key
                for key in self._entries
                if touches_any(key.query, entity_list)
            ]
            for key in stale:
                del self._entries[key]
                del self._inserted_at[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Remove all entries (statistics are kept)."""
        with self._lock:
            self._entries.clear()
            self._inserted_at.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Snapshot of the cache counters for monitoring/benchmarks."""
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
                "hit_rate": self.hit_rate,
            }

    def _expired(self, key: CacheKey) -> bool:
        if self.ttl_seconds is None:
            return False
        return self._clock() - self._inserted_at[key] > self.ttl_seconds


__all__ = ["CacheKey", "QueryCache", "normalize_query"]
