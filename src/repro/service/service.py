"""QKBflyService: the query-serving facade.

Wires the serving tiers together in front of the one-shot pipeline:

1. in-memory :class:`~repro.service.cache.QueryCache` (LRU + TTL),
2. persistent :class:`~repro.service.kb_store.KbStore` (SQLite/WAL),
3. :class:`~repro.service.executor.BatchExecutor` (thread pool with
   single-flight deduplication) over a shared
   :class:`~repro.core.qkbfly.SessionState`.

A query falls through cache -> store -> full pipeline; every tier it
misses is filled on the way back. All tiers key on the query signature
including the session's ``corpus_version``, so advancing the corpus
(:meth:`QKBflyService.refresh_corpus`) atomically invalidates both the
cache and the stale store rows. Below the result tiers, a
:class:`~repro.service.stage_cache.StageCache` (installed on the
shared session; ``ServiceConfig.stage_cache_enabled``) lets *distinct*
queries that overlap in their retrieved documents reuse the expensive
retrieval/NLP/extraction stage products — see ``docs/PIPELINE.md``.

Pipeline execution runs on the thread tier (inline on the request
workers) or the process tier
(:class:`~repro.service.process_executor.ProcessBatchExecutor`);
``ServiceConfig(executor="auto")`` delegates the choice to an
:class:`~repro.service.autoscale.ExecutorSelector` that observes the
live traffic and swaps tiers at runtime. The asyncio front end
(:class:`~repro.service.async_service.AsyncQKBflyService`) layers on
top of this facade and shares all of its tiers.

Since the v1 API (:mod:`repro.service.api`), the primary entry points
are the envelope methods :meth:`QKBflyService.serve` /
:meth:`QKBflyService.serve_batch`: one validated
:class:`~repro.service.api.QueryRequest` in, one
:class:`~repro.service.api.QueryResult` envelope out (status, serving
tier, timing breakdown, typed errors), with per-client admission
control (:mod:`repro.service.admission`) enforced on the way in. The
pre-v1 ``query()`` / ``batch_query()`` signatures remain as thin
deprecated shims over the envelope path.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.qkbfly import QKBfly, QKBflyConfig, SessionState
from repro.corpus.retrieval import SearchEngine
from repro.corpus.world import World
from repro.faultinject.history import HistoryRecorder
from repro.faultinject.points import fault_point
from repro.kb.facts import KnowledgeBase
from repro.service.admission import (
    AdmissionController,
    CostCharge,
    QueueWaitWindow,
    cost_shape,
    ingest_cost_shape,
    search_cost_shape,
)
from repro.service.api import (
    DeadlineUnmet,
    FactSearchRequest,
    FactSearchResult,
    IngestRequest,
    IngestResult,
    Overloaded,
    PipelineFailure,
    QueryRequest,
    QueryResult,
    QueryStatus,
    SearchUnavailable,
    ServiceError,
    WatchRequest,
    backend_seconds,
    classify_timeout,
    invalid_request,
    reraise_original,
    warn_deprecated,
    wrap_failure,
)
from repro.service.autoscale import AutoscalePolicy, ExecutorSelector
from repro.service.cache import CacheKey, QueryCache
from repro.service.executor import BatchExecutor
from repro.service.fabric.cluster import Fabric
from repro.service.ingest.pipeline import IngestPipeline
from repro.service.ingest.subscriptions import SubscriptionRegistry
from repro.service.ingest.versions import EntityVersionVector
from repro.service.kb_store import KbStore
from repro.service.process_executor import ProcessBatchExecutor
from repro.service.search.query import search_paginated, store_backends
from repro.service.sharding import ShardedKbStore
from repro.service.stage_cache import (
    STAGE_RETRIEVAL,
    StageCache,
    StagePolicy,
)


def _config_digest(config: QKBflyConfig) -> str:
    """Fingerprint of the result-shaping pipeline knobs beyond mode and
    algorithm, so cache/store keys separate configs that produce
    different KBs (parser, tau, triples_only, weights, ILP budget)."""
    payload = "|".join(
        (
            config.parser,
            f"{config.tau}",
            str(config.triples_only),
            ",".join(str(a) for a in config.weights.as_tuple()),
            f"{config.ilp_time_budget}",
        )
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


@dataclass
class ServiceConfig:
    """Knobs of the serving layer (the pipeline has its own config)."""

    source: str = "wikipedia"
    num_documents: int = 1
    cache_size: int = 256
    cache_ttl_seconds: Optional[float] = None
    max_workers: int = 4
    # None disables persistence; ":memory:" gives an ephemeral store.
    # With store_shards > 1 this is a *directory* of shard files.
    store_path: Optional[str] = None
    # 1 keeps the single-file KbStore; N > 1 partitions entries across
    # N SQLite files with per-shard locks (ShardedKbStore).
    store_shards: int = 1
    # "thread" runs the pipeline on the request worker threads (best
    # for repeat-heavy traffic: dedup + cache do the work); "process"
    # adds a multiprocessing pool for the CPU-bound pipeline stages so
    # concurrent *distinct* queries scale past the GIL on multi-core
    # hosts (falls back to threads when the session cannot be pickled);
    # "auto" lets an ExecutorSelector pick at startup from the observed
    # CPU count and switch tiers at runtime from the traffic's
    # distinct-query ratio and per-request latency.
    executor: str = "thread"
    # Thresholds for executor="auto" (None uses AutoscalePolicy
    # defaults); ignored on the fixed tiers.
    autoscale_policy: Optional[AutoscalePolicy] = None
    # Pool size for executor="process" (defaults to max_workers), and
    # an optional multiprocessing start method ("fork"/"spawn").
    process_workers: Optional[int] = None
    process_start_method: Optional[str] = None
    # Refill the in-memory cache from the store on service start (up to
    # warm_limit entries, newest first; capped by cache_size).
    warm_cache_on_start: bool = False
    warm_limit: Optional[int] = None
    # Store compaction policy for long-running deployments: entries
    # older than store_max_age_seconds, or beyond the newest
    # store_max_entries, are reclaimed by compact_store() — on start
    # when compact_store_on_start is set, and on every call thereafter.
    store_max_age_seconds: Optional[float] = None
    store_max_entries: Optional[int] = None
    compact_store_on_start: bool = False
    # Admission control (see repro.service.admission): sustained
    # per-client request rate and burst allowance (None disables rate
    # limiting), and the distinct-in-flight executor computations
    # beyond which new cold work is shed with Overloaded/503 (None
    # disables shedding). Enforced identically by the sync, asyncio,
    # and HTTP front ends.
    rate_limit_qps: Optional[float] = None
    rate_limit_burst: Optional[float] = None
    max_queue_depth: Optional[int] = None
    # Per-client *cost* budgeting: pipeline wall-seconds a client may
    # consume per wall second (None disables), and the instant burst
    # ceiling in seconds (defaults to max(1.0, cost_budget_per_second)).
    # Buckets drain by the measured store+pipeline seconds fed back
    # from each result envelope; admit-time reservations use an EWMA
    # estimate per query shape. Over budget -> CostLimited/429.
    cost_budget_per_second: Optional[float] = None
    cost_budget_burst: Optional[float] = None
    # Sample capacity of the queue-wait window (executor entry->start
    # latencies) that feeds Overloaded Retry-After hints and the
    # autoscaler's pool-sizing decisions.
    queue_wait_window: int = 256
    # Stage-level pipeline caching (docs/PIPELINE.md): content-
    # addressed reuse of retrieval/NLP/extraction products across
    # overlapping queries. The cache is installed on the shared
    # SessionState, so every service, front end, and QKBfly over one
    # session shares it (a session that already carries one keeps it).
    stage_cache_enabled: bool = True
    # Per-stage entry ceiling, optional wall-clock TTL, and per-stage
    # byte budget (None disables the respective bound); see
    # StagePolicy and the tuning chapter in docs/OPERATIONS.md.
    stage_cache_entries: int = 512
    stage_cache_ttl_seconds: Optional[float] = None
    stage_cache_max_bytes: Optional[int] = 64 * 1024 * 1024
    # Optional per-stage policy overrides ({"nlp": StagePolicy(...)});
    # stages not named fall back to the three knobs above.
    stage_cache_policies: Optional[Dict[str, StagePolicy]] = None
    # Queue-wait-aware deadline admission (docs/API.md): reject a
    # request whose remaining `timeout` cannot survive the measured
    # p95 queue wait with a fast 504 at admission instead of a doomed
    # enqueue. Active only when an AdmissionController is configured
    # (any of the knobs above); joiners and store-servable keys are
    # never rejected.
    deadline_admission: bool = True
    # KB-store backend (docs/FABRIC.md). "local" opens the store
    # in-process (KbStore, or ShardedKbStore when store_shards > 1);
    # "fabric" puts every shard behind a socket shard server with
    # replication_factor-way replica groups (primary writes, replica
    # reads) and online rebalance. With fabric_addresses unset the
    # service launches in-process servers over store_path; set it to
    # one address group per shard (primary first) to connect to
    # servers launched by scripts/run_fabric.py instead.
    store_backend: str = "local"
    replication_factor: int = 1
    fabric_addresses: Optional[List[List[str]]] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject invalid combinations loudly, at construction.

        Every rule here used to fail deep inside the first query (or
        silently misconfigure a tier); validating the moment the config
        exists points the traceback at the actual mistake. The service
        calls this again at its own construction, so a config mutated
        after being built (this is a plain mutable dataclass) cannot
        smuggle an invalid combination past the dataclass hook.
        """
        if self.executor not in ("thread", "process", "auto"):
            raise ValueError(
                f"unknown executor kind: {self.executor!r} "
                "(choose 'thread', 'process', or 'auto')"
            )
        if self.store_shards < 1:
            raise ValueError(
                f"store_shards must be >= 1, got {self.store_shards}"
            )
        if self.store_backend not in ("local", "fabric"):
            raise ValueError(
                f"unknown store_backend: {self.store_backend!r} "
                "(choose 'local' or 'fabric')"
            )
        if self.replication_factor < 1:
            raise ValueError(
                "replication_factor must be >= 1, got "
                f"{self.replication_factor}"
            )
        if self.store_backend == "fabric" and self.store_path is None:
            raise ValueError(
                "store_backend='fabric' needs store_path: the fabric "
                "serves shard files under that directory"
            )
        if self.store_backend == "local":
            if self.replication_factor != 1:
                raise ValueError(
                    "replication_factor > 1 needs store_backend='fabric' "
                    "(a local store has nothing to replicate to)"
                )
            if self.fabric_addresses is not None:
                raise ValueError(
                    "fabric_addresses is set but store_backend is 'local'"
                )
        if self.fabric_addresses is not None:
            if len(self.fabric_addresses) != self.store_shards:
                raise ValueError(
                    f"fabric_addresses names {len(self.fabric_addresses)} "
                    f"shard groups but store_shards is {self.store_shards}"
                )
            for group in self.fabric_addresses:
                if len(group) != self.replication_factor:
                    raise ValueError(
                        "every fabric address group must list "
                        f"replication_factor={self.replication_factor} "
                        f"members (primary first), got {group!r}"
                    )
        if self.warm_limit is not None and self.store_path is None:
            raise ValueError(
                "warm_limit is set but store_path is not: there is no "
                "store to warm the cache from"
            )
        if self.warm_limit is not None and self.warm_limit < 0:
            raise ValueError(f"warm_limit must be >= 0, got {self.warm_limit}")
        if self.cache_size <= 0:
            raise ValueError(f"cache_size must be > 0, got {self.cache_size}")
        if self.max_workers <= 0:
            raise ValueError(f"max_workers must be > 0, got {self.max_workers}")
        if self.num_documents < 1:
            raise ValueError(
                f"num_documents must be >= 1, got {self.num_documents}"
            )
        if self.process_workers is not None and self.process_workers <= 0:
            raise ValueError(
                f"process_workers must be > 0, got {self.process_workers}"
            )
        if (
            self.cache_ttl_seconds is not None
            and self.cache_ttl_seconds <= 0
        ):
            raise ValueError("cache_ttl_seconds must be positive when set")
        if self.queue_wait_window < 1:
            raise ValueError(
                f"queue_wait_window must be >= 1, got {self.queue_wait_window}"
            )
        if self.stage_cache_enabled:
            # One authoritative rule set for the stage-cache bounds:
            # StagePolicy validates its own combination (the service
            # builds the real StageCache from these same fields).
            StagePolicy(
                max_entries=self.stage_cache_entries,
                ttl_seconds=self.stage_cache_ttl_seconds,
                max_bytes=self.stage_cache_max_bytes,
            )
            if self.stage_cache_policies:
                for stage, override in self.stage_cache_policies.items():
                    if not isinstance(override, StagePolicy):
                        raise ValueError(
                            "stage_cache_policies values must be "
                            f"StagePolicy, got {override!r} for {stage!r}"
                        )
        if (
            self.rate_limit_qps is not None
            or self.rate_limit_burst is not None
            or self.cost_budget_per_second is not None
            or self.cost_budget_burst is not None
            or self.max_queue_depth is not None
        ):
            # One authoritative rule set for the admission parameters:
            # the controller validates its own combination (the service
            # builds the real one from these same fields).
            AdmissionController(
                rate_limit_qps=self.rate_limit_qps,
                rate_limit_burst=self.rate_limit_burst,
                cost_budget_per_second=self.cost_budget_per_second,
                cost_budget_burst=self.cost_budget_burst,
                max_queue_depth=self.max_queue_depth,
            )


class QKBflyService:
    """Serving layer over a shared QKBfly session.

    Exposes the same ``build_kb`` / ``entity_repository`` /
    ``search_engine`` surface as :class:`~repro.core.qkbfly.QKBfly`, so
    existing consumers (e.g. :class:`repro.qa.answering.QaSystem`) can
    point at a service instance and transparently gain caching.
    """

    def __init__(
        self,
        session: SessionState,
        config: Optional[QKBflyConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        cache: Optional[QueryCache] = None,
        store: Optional[KbStore] = None,
    ) -> None:
        self.session = session
        self.service_config = service_config or ServiceConfig()
        # Re-validate before any pool/store is allocated (a bad config
        # must never leak worker threads or SQLite handles): the
        # dataclass validated itself at construction, but it is
        # mutable and may have been edited since.
        self.service_config.validate()
        if self.service_config.executor == "auto":
            self._selector: Optional[ExecutorSelector] = ExecutorSelector(
                policy=self.service_config.autoscale_policy
            )
            self.executor_kind = self._selector.initial_kind()
        else:
            self._selector = None
            self.executor_kind = self.service_config.executor
        self.qkbfly = QKBfly.from_session(session, config=config)
        # Per-entity version vector (docs/INGEST.md): installed on the
        # session so the retrieval stage folds the relevant version
        # slice into its signatures. A session that already carries one
        # keeps it — two services over one session must share the
        # vector, like they share the stage cache below.
        if getattr(session, "entity_versions", None) is None:
            session.entity_versions = EntityVersionVector()
        self.entity_versions: EntityVersionVector = session.entity_versions
        # Stage-level pipeline cache (docs/PIPELINE.md): installed on
        # the *session*, so every QKBfly bound to it — including the
        # rebind in refresh_corpus and the pickled copies shipped to
        # process-pool workers — shares one policy. A session that
        # already carries a cache keeps it (the operator installed it
        # deliberately, possibly shared across services).
        if (
            self.service_config.stage_cache_enabled
            and session.stage_cache is None
        ):
            session.stage_cache = StageCache(
                policy=StagePolicy(
                    max_entries=self.service_config.stage_cache_entries,
                    ttl_seconds=self.service_config.stage_cache_ttl_seconds,
                    max_bytes=self.service_config.stage_cache_max_bytes,
                ),
                overrides=self.service_config.stage_cache_policies,
            )
        self.cache = cache or QueryCache(
            max_size=self.service_config.cache_size,
            ttl_seconds=self.service_config.cache_ttl_seconds,
        )
        self.fabric: Optional[Fabric] = None
        if store is None and self.service_config.store_path is not None:
            if self.service_config.store_backend == "fabric":
                if self.service_config.fabric_addresses is not None:
                    self.fabric = Fabric.connect(
                        self.service_config.store_path,
                        self.service_config.fabric_addresses,
                    )
                else:
                    self.fabric = Fabric.launch_local(
                        self.service_config.store_path,
                        num_shards=self.service_config.store_shards,
                        replication_factor=(
                            self.service_config.replication_factor
                        ),
                    )
                store = self.fabric.store
            elif self.service_config.store_shards > 1:
                store = ShardedKbStore(
                    self.service_config.store_path,
                    num_shards=self.service_config.store_shards,
                )
            else:
                store = KbStore(self.service_config.store_path)
        self.store = store
        if self.store is not None:
            stored_version = self.store.corpus_version
            if stored_version != session.corpus_version:
                # A reopened store from an older corpus: its rows can
                # never match the new version's keys, so reclaim them.
                if stored_version:
                    self.store.delete_stale(session.corpus_version)
                self.store.set_corpus_version(session.corpus_version)
        # The queue-wait window is owned by the service (not by any
        # executor) so the wait distribution survives live pool swaps
        # and resizes; every pool this service ever builds feeds it.
        self.queue_wait = QueueWaitWindow(
            size=self.service_config.queue_wait_window
        )
        # Current worker-pool width; the autoscaler (executor="auto")
        # may resize it at runtime between the policy's floor/ceiling.
        self.pool_workers = self.service_config.max_workers
        self._executor = BatchExecutor(
            self._serve,
            max_workers=self.service_config.max_workers,
            queue_wait_hook=self.queue_wait.record,
        )
        if (
            self.service_config.rate_limit_qps is not None
            or self.service_config.cost_budget_per_second is not None
            or self.service_config.max_queue_depth is not None
        ):
            self.admission: Optional[AdmissionController] = (
                AdmissionController(
                    rate_limit_qps=self.service_config.rate_limit_qps,
                    rate_limit_burst=self.service_config.rate_limit_burst,
                    cost_budget_per_second=(
                        self.service_config.cost_budget_per_second
                    ),
                    cost_budget_burst=self.service_config.cost_budget_burst,
                    max_queue_depth=self.service_config.max_queue_depth,
                    queue_wait=self.queue_wait,
                )
            )
        else:
            self.admission = None
        self._counter_lock = threading.Lock()
        self._autoscale_lock = threading.Lock()
        self._closed = False
        # Optional history recorder (fault-injection harness): when
        # attached, every OK envelope leaving a front end and every
        # corpus refresh is logged for offline freshness checking.
        self.history: Optional[HistoryRecorder] = None
        # Live-corpus ingest (docs/INGEST.md): the ingest transaction
        # and the watch(entity) subscription registry.
        self.subscriptions = SubscriptionRegistry()
        self.ingest_pipeline = IngestPipeline(self)
        self._config_digest = _config_digest(self.qkbfly.config)
        self.pipeline_runs = 0
        self.executor_switches = 0
        self.pool_resizes = 0
        self._pipeline_executor = self._build_pipeline_executor()
        if self.service_config.compact_store_on_start:
            self.compact_store()
        if self.service_config.warm_cache_on_start:
            self.warm_cache(self.service_config.warm_limit)

    def _build_pipeline_executor(self) -> Optional[ProcessBatchExecutor]:
        """The multiprocessing pool behind the process tier.

        Reads ``self.executor_kind`` (the *currently selected* tier,
        which under ``executor="auto"`` can change at runtime), not the
        static configuration. The configured kind was validated up
        front in ``__init__``. If the pool silently falls back to
        threads (unpicklable session, no process support),
        ``executor_kind`` is reconciled to what is actually running —
        otherwise stats would mislabel the tier and the autoscaler
        would compare traffic against a tier that does not exist.
        """
        if self.executor_kind == "thread":
            return None
        executor = ProcessBatchExecutor(
            self.session,
            config=self.qkbfly.config,
            # An explicit process_workers is an operator pin; otherwise
            # the pool follows the autoscaled width (pool_workers
            # starts at max_workers and only moves under "auto").
            max_workers=(
                self.service_config.process_workers or self.pool_workers
            ),
            mp_context=self.service_config.process_start_method,
        )
        if executor.kind != "process":
            self.executor_kind = executor.kind
            if self._selector is not None:
                # The process tier is not available here at all (e.g.
                # unpicklable session) — stop the autoscaler from
                # re-recommending it after every cooldown.
                self._selector.pin_to_thread(
                    executor.fallback_reason or "process tier unavailable"
                )
        return executor

    @classmethod
    def from_world(
        cls,
        world: World,
        config: Optional[QKBflyConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        with_search: bool = True,
    ) -> "QKBflyService":
        """Build session state for a world and serve it."""
        parser = (config or QKBflyConfig()).parser
        session = SessionState.from_world(
            world, parser=parser, with_search=with_search
        )
        return cls(session, config=config, service_config=service_config)

    # ---- QKBfly-compatible surface ----------------------------------------

    @property
    def config(self) -> QKBflyConfig:
        """The pipeline configuration served by this instance."""
        return self.qkbfly.config

    @property
    def entity_repository(self):
        """Shared entity repository (QKBfly-compatible attribute)."""
        return self.session.entity_repository

    @property
    def pattern_repository(self):
        """Shared pattern repository (QKBfly-compatible attribute)."""
        return self.session.pattern_repository

    @property
    def statistics(self):
        """Shared background statistics (QKBfly-compatible attribute)."""
        return self.session.statistics

    @property
    def search_engine(self) -> Optional[SearchEngine]:
        """Shared search engine (QKBfly-compatible attribute)."""
        return self.session.search_engine

    @property
    def corpus_version(self) -> str:
        """The corpus snapshot currently served."""
        return self.session.corpus_version

    def build_kb(
        self,
        query: str,
        source: Optional[str] = None,
        num_documents: Optional[int] = None,
    ) -> KnowledgeBase:
        """Drop-in replacement for :meth:`QKBfly.build_kb`, but cached.

        Part of the QKBfly-compatible surface (not deprecated): omitted
        arguments fall back to :class:`ServiceConfig`, and pipeline
        exceptions propagate raw, exactly like :class:`QKBfly` itself.
        Admission control, when configured, still applies.
        """
        request = QueryRequest(
            query=query, source=source, num_documents=num_documents
        )
        return self._serve_unwrapped(request).kb

    # ---- serving (v1 envelope) ---------------------------------------------

    def attach_history(self, recorder: HistoryRecorder) -> HistoryRecorder:
        """Attach a :class:`~repro.faultinject.history.HistoryRecorder`.

        All front ends sharing this service (sync, batch; the asyncio
        tier attaches to its own reference of the same recorder) start
        logging serve/refresh events for offline consistency checking.
        Returns the recorder for chaining. Detach with
        ``service.history = None``.
        """
        self.history = recorder
        # The subscription registry records delta deliveries into the
        # same history, so the checker can track per-subscriber
        # entity-version watermarks alongside the query serves.
        self.subscriptions.history = recorder
        return recorder

    def serve(self, request: QueryRequest) -> QueryResult:
        """Serve one v1 envelope: admission -> cache -> store -> pipeline.

        The primary sync entry point. Cache hits are answered on the
        calling thread; misses go through the executor, so a burst of
        concurrent identical requests collapses onto a single pipeline
        run (single-flight), shared with :meth:`serve_batch` and the
        asyncio front end.

        Raises the typed taxonomy of :mod:`repro.service.api`:
        :class:`~repro.service.api.RateLimited` when the client is over
        its token-bucket budget, :class:`~repro.service.api.CostLimited`
        when its cost budget cannot cover the request's estimated
        pipeline seconds, :class:`~repro.service.api.Overloaded` when
        new cold work would exceed ``max_queue_depth``,
        :class:`~repro.service.api.DeadlineUnmet` when the request's
        remaining ``timeout`` cannot survive the measured p95 queue
        wait (a fast 504 at admission; see
        ``ServiceConfig.deadline_admission``),
        :class:`~repro.service.api.PipelineFailure` (original exception
        chained as ``__cause__``) when the pipeline raises, and a
        ``timeout``-coded :class:`~repro.service.api.ServiceError` when
        ``request.timeout`` expires first (the in-flight computation
        keeps running and will still fill the cache).
        """
        started = time.perf_counter()
        self._validate_request(request)
        charge: Optional[CostCharge] = None
        if self.admission is not None:
            charge = self.admission.admit(
                request.client_id, self._cost_shape(request)
            )
        try:
            result = self._serve_admitted(request, started)
        except BaseException:
            # The measured cost is unknown (a shed, a timeout with the
            # work still running, a pipeline failure): the estimated
            # reservation stays charged.
            if charge is not None:
                self.admission.settle(charge)
            raise
        if charge is not None:
            self.admission.settle(charge, actual=backend_seconds(result))
        if self.history is not None:
            self.history.record_serve(result, front_end="sync")
        return result

    def _serve_admitted(
        self, request: QueryRequest, started: float
    ) -> QueryResult:
        """:meth:`serve` past the admission gate: cache -> store ->
        pipeline, deadline counted from ``started`` (request entry)."""
        key = self._key(request.query, request.source, request.num_documents)
        try:
            cached = self.cache.get(key)
            if cached is not None:
                return self.hit_result(request, key, cached, started)
            stored = self._admit_cold(request, key, started)
        except ServiceError:
            raise
        except Exception as error:
            # The contract is the typed taxonomy, fast paths included:
            # a raw store failure in the overload rescue (or a cache
            # error) must not escape untyped.
            raise wrap_failure(request, error, "serving") from error
        if stored is not None:
            return stored
        # The miss was already counted by the lookup above; the
        # executor's double-check must not count it again.
        future = self._executor.submit(key, (request, key, True))
        try:
            # The deadline is absolute from request entry: time already
            # spent in admission and the fast paths (e.g. a saturated
            # store rescue waiting on the store lock) consumes budget.
            remaining = None
            if request.timeout is not None:
                remaining = max(
                    0.0,
                    request.timeout - (time.perf_counter() - started),
                )
            shared = future.result(timeout=remaining)
        except FuturesTimeoutError as error:
            # Only a future that finished *by raising* pins the error
            # on the pipeline; done-with-a-result means the flight
            # landed just after the wait expired (still a deadline).
            raise classify_timeout(
                request,
                error,
                future.exception() if future.done() else None,
            )
        except ServiceError:
            raise
        except Exception as error:
            raise wrap_failure(request, error) from error
        result = self._result_copy(
            shared,
            seconds=time.perf_counter() - started,
            query=request.query,
            client_id=request.client_id,
        )
        self._record_request(key, result.seconds)
        return result

    def serve_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryResult]:
        """Serve many envelopes concurrently; one envelope per slot.

        Results come back in input order; duplicated requests are
        computed once, but every result slot gets its own KB copy so no
        caller's mutation can leak into another slot — including slots
        of a *different* concurrent batch that joined the same
        in-flight computation.

        Unlike :meth:`serve`, nothing raises: admission rejections,
        timeouts, and pipeline failures each become an *error envelope
        in their own slot* (``status`` set, ``kb=None``), so one
        over-budget client or one poisoned query cannot void the rest
        of the batch.
        """
        batch_started = time.perf_counter()
        slots: List[Optional[QueryResult]] = []
        keys: List[Optional[CacheKey]] = []
        charges: List[Optional[CostCharge]] = []
        futures_by_key: Dict[CacheKey, Any] = {}
        for request in requests:
            key = None  # derived below; stays None for pre-key failures
            charge = None
            try:
                self._validate_request(request)
                if self.admission is not None:
                    charge = self.admission.admit(
                        request.client_id, self._cost_shape(request)
                    )
                key = self._key(
                    request.query, request.source, request.num_documents
                )
                if key not in futures_by_key:
                    # Shed only work that would start a new flight: a
                    # cached key is answered by the executor's cache
                    # double-check without queueing pipeline work, and
                    # a store-servable key costs one read — neither is
                    # ever rejected under overload (same contract as
                    # serve()).
                    if key not in self.cache:
                        stored = self._admit_cold(
                            request, key, time.perf_counter()
                        )
                        if stored is not None:
                            keys.append(None)
                            slots.append(stored)
                            continue
                    futures_by_key[key] = self._executor.submit(
                        key, (request, key, False)
                    )
                else:
                    self._executor.count_dedup()
            except ServiceError as error:
                keys.append(None)
                slots.append(
                    self._failure(
                        request,
                        error,
                        key,
                        seconds=time.perf_counter() - batch_started,
                    )
                )
                continue
            except Exception as error:
                # A raw infrastructure failure (e.g. an SQLite error in
                # the overload rescue probe) must poison only its own
                # slot, never the batch — the documented contract.
                keys.append(None)
                slots.append(
                    self._failure(
                        request,
                        wrap_failure(request, error, "serving"),
                        key,
                        seconds=time.perf_counter() - batch_started,
                    )
                )
                continue
            finally:
                # Exactly one charge slot per request, whatever path
                # the admission phase took (reserved, rejected, or
                # cost budgeting off) — the settle loop below zips it
                # against the results.
                charges.append(charge)
            keys.append(key)
            slots.append(None)
        results: List[QueryResult] = []
        for request, key, slot in zip(requests, keys, slots):
            if slot is not None:
                results.append(slot)
                continue
            try:
                # Deadlines are absolute from batch entry: slots are
                # collected in order, so a slot's wait budget is what
                # remains of *its own* timeout, not a fresh clock that
                # silently extends it by its predecessors' waits.
                remaining = None
                if request.timeout is not None:
                    remaining = max(
                        0.0,
                        request.timeout
                        - (time.perf_counter() - batch_started),
                    )
                shared = futures_by_key[key].result(timeout=remaining)
            except FuturesTimeoutError as error:
                shared_future = futures_by_key[key]
                results.append(
                    self._failure(
                        request,
                        classify_timeout(
                            request,
                            error,
                            shared_future.exception()
                            if shared_future.done()
                            else None,
                        ),
                        key,
                        seconds=time.perf_counter() - batch_started,
                    )
                )
                continue
            except ServiceError as error:
                results.append(
                    self._failure(
                        request,
                        error,
                        key,
                        seconds=time.perf_counter() - batch_started,
                    )
                )
                continue
            except Exception as error:
                results.append(
                    self._failure(
                        request,
                        wrap_failure(request, error),
                        key,
                        seconds=time.perf_counter() - batch_started,
                    )
                )
                continue
            result = self._result_copy(
                shared, query=request.query, client_id=request.client_id
            )
            self._record_request(key, result.seconds)
            results.append(result)
        if self.admission is not None:
            # Reconcile every reservation against the measured cost:
            # successful slots refund down to their observed
            # store+pipeline seconds; failed slots keep the estimate
            # charged (their true cost is unknown or still accruing).
            for result, charge in zip(results, charges):
                if charge is not None:
                    self.admission.settle(
                        charge,
                        actual=(
                            backend_seconds(result)
                            if result.status is QueryStatus.OK
                            else None
                        ),
                    )
        if self.history is not None:
            for result in results:
                if result.status is QueryStatus.OK:
                    self.history.record_serve(result, front_end="sync_batch")
        return results

    # ---- legacy entry points (deprecated shims) ----------------------------

    def query(
        self,
        query: str,
        source: Optional[str] = None,
        num_documents: Optional[int] = None,
    ) -> QueryResult:
        """Pre-v1 entry point; deprecated in favor of :meth:`serve`.

        A thin shim: builds the v1 :class:`QueryRequest` and serves it,
        preserving the pre-v1 exception contract (pipeline exceptions
        propagate raw, not wrapped in
        :class:`~repro.service.api.PipelineFailure`).
        """
        warn_deprecated("QKBflyService.query()", "QKBflyService.serve()")
        return self._serve_unwrapped(
            QueryRequest(
                query=query, source=source, num_documents=num_documents
            )
        )

    def batch_query(
        self,
        queries: Sequence[str],
        source: Optional[str] = None,
        num_documents: Optional[int] = None,
    ) -> List[QueryResult]:
        """Pre-v1 batch entry point; deprecated: :meth:`serve_batch`.

        A thin shim over the envelope path, preserving the pre-v1
        contract: the first failed slot raises its original exception
        instead of returning an error envelope.
        """
        warn_deprecated(
            "QKBflyService.batch_query()", "QKBflyService.serve_batch()"
        )
        requests = [
            QueryRequest(
                query=query, source=source, num_documents=num_documents
            )
            for query in queries
        ]
        results = self.serve_batch(requests)
        for result in results:
            if result.error is not None:
                reraise_original(result.error)
        return results

    def _serve_unwrapped(self, request: QueryRequest) -> QueryResult:
        """:meth:`serve`, re-raising a wrapped pipeline failure's
        original exception — the contract of the pre-v1 API (and of
        :class:`QKBfly` itself, which ``build_kb`` stands in for)."""
        try:
            return self.serve(request)
        except PipelineFailure as failure:
            reraise_original(failure)

    def hit_result(
        self,
        request: QueryRequest,
        key: CacheKey,
        kb: KnowledgeBase,
        started: float,
    ) -> QueryResult:
        """Per-consumer envelope for a cache hit, shared by both front
        ends (sync thread and event loop).

        Records the request for the autoscaler but never swaps
        executors inline: a pool bootstrap takes hundreds of
        milliseconds and this caller came for a microsecond hit — any
        pending decision is applied by the next miss or
        :meth:`autoscale_tick`.
        """
        result = QueryResult(
            query=request.query,
            normalized_query=key.query,
            kb=kb.copy(),
            corpus_version=key.corpus_version,
            cache_hit=True,
            seconds=time.perf_counter() - started,
            client_id=request.client_id,
            request_key=key.signature(),
            entity_versions=self._versions_stamp(key.query),
        )
        self._record_request(key, result.seconds, allow_switch=False)
        return result

    def _versions_stamp(self, query: str) -> Optional[Dict[str, int]]:
        """The per-entity version slice to stamp on a result served
        for ``query`` right now — None (not ``{}``) when no ingested
        entity touches the query, so pre-ingest wire forms stay
        byte-identical."""
        return self.entity_versions.versions_for_query(query) or None

    @staticmethod
    def _result_copy(
        shared: QueryResult,
        seconds: Optional[float] = None,
        query: Optional[str] = None,
        client_id: Optional[str] = None,
    ) -> QueryResult:
        """Per-consumer view of a possibly shared in-flight result.

        ``query`` and ``client_id`` restore the caller's own raw query
        string and identity — a shared result carries whichever caller
        happened to compute it.
        """
        return QueryResult(
            query=shared.query if query is None else query,
            normalized_query=shared.normalized_query,
            kb=shared.kb.copy(),
            corpus_version=shared.corpus_version,
            cache_hit=shared.cache_hit,
            store_hit=shared.store_hit,
            seconds=shared.seconds if seconds is None else seconds,
            status=shared.status,
            client_id=shared.client_id if client_id is None else client_id,
            request_key=shared.request_key,
            store_seconds=shared.store_seconds,
            pipeline_seconds=shared.pipeline_seconds,
            entity_versions=shared.entity_versions,
        )

    def _failure(
        self,
        request: QueryRequest,
        error: ServiceError,
        key: Optional[CacheKey] = None,
        seconds: float = 0.0,
    ) -> QueryResult:
        """An error envelope for ``request``, stamped with this
        deployment's corpus version, the elapsed wall time, and the
        request key (if one was derived before the failure)."""
        return QueryResult.failure(
            request,
            error,
            corpus_version=self.session.corpus_version,
            request_key=key.signature() if key is not None else "",
            seconds=seconds,
        )

    def _validate_request(self, request: QueryRequest) -> None:
        """Reject variant pins this deployment cannot honor.

        A request naming a different mode/algorithm than the served
        pipeline config would be answered by the wrong system variant —
        an *invalid request* (HTTP 400), not a different answer.
        """
        config = self.qkbfly.config
        if request.mode is not None and request.mode != config.mode:
            raise invalid_request(
                f"this deployment serves mode={config.mode!r}, "
                f"not {request.mode!r}"
            )
        if (
            request.algorithm is not None
            and request.algorithm != config.algorithm
        ):
            raise invalid_request(
                f"this deployment serves algorithm={config.algorithm!r}, "
                f"not {request.algorithm!r}"
            )

    def _check_capacity(self, key: CacheKey, front_depth: int = 0) -> None:
        """Queue-depth load shedding for new cold work.

        Requests whose key is already in flight join that computation
        and add no load, so they are exempt — under saturation the
        service keeps absorbing repeats while shedding *new* work.
        ``front_depth`` is a front end's own in-flight count: the
        asyncio facade holds flights in its registry (and the dispatch
        pool's queue) before they ever reach the executor, so the
        executor's ``pending`` alone would undercount its load; the
        max of the two views is used because flights that already
        reached the executor appear in both.
        """
        if self.admission is None:
            return
        self.admission.check_queue(
            max(self._executor.pending, front_depth),
            joining=self._executor.has_flight(key),
        )

    def _check_deadline(
        self, request: QueryRequest, key: CacheKey, started: float
    ) -> None:
        """Queue-wait-aware deadline admission (fast 504).

        A request whose remaining ``timeout`` budget cannot survive the
        measured p95 queue wait is overwhelmingly likely to expire in
        the queue — admitting it burns a worker slot on an answer
        nobody will receive. Rejecting at admission returns the 504 in
        microseconds instead of after ``timeout`` seconds and keeps the
        doomed work out of the queue entirely. Joiners are exempt
        (they add no queue load and may be answered early by the
        shared flight); requests without a timeout never reject.
        """
        if (
            self.admission is None
            or not self.service_config.deadline_admission
            or request.timeout is None
        ):
            return
        remaining = request.timeout - (time.perf_counter() - started)
        self.admission.check_deadline(
            remaining, joining=self._executor.has_flight(key)
        )

    def _admit_cold(
        self, request: QueryRequest, key: CacheKey, started: float
    ) -> Optional[QueryResult]:
        """Capacity and deadline gates for a cache-missed request.

        Returns None when the request may queue executor work. When the
        queue is saturated (or the request's deadline cannot survive
        the measured queue wait), the store gets one last word before
        the request is shed: a store-servable key costs a single read,
        not a pipeline run, so it is answered directly — hits are
        never shed, on any front end. Only a genuine cold miss raises
        :class:`Overloaded` (queue depth) or :class:`DeadlineUnmet`
        (queue wait vs. remaining timeout).
        """
        try:
            self._check_capacity(key)
            self._check_deadline(request, key, started)
            return None
        except (Overloaded, DeadlineUnmet) as error:
            stored = self._load_from_store(request, key, started)
            if stored is None:
                if self.admission is not None:
                    if isinstance(error, DeadlineUnmet):
                        self.admission.count_deadline_rejected()
                    else:
                        self.admission.count_overloaded()
                raise
            return stored

    def _load_from_store(
        self, request: QueryRequest, key: CacheKey, started: float
    ) -> Optional[QueryResult]:
        """Blocking store-only lookup (the sync twin of the async
        front end's ``_try_store_on_loop``): on a hit, fills the cache
        and returns a per-consumer envelope; None on miss or no store.
        """
        if self.store is None:
            return None
        tier_started = time.perf_counter()
        versions = self.entity_versions.versions_for_query(key.query)
        kb = self.store.load(
            key.query,
            corpus_version=key.corpus_version,
            mode=key.mode,
            algorithm=key.algorithm,
            source=key.source,
            num_documents=key.num_documents,
            config_digest=key.config_digest,
        )
        if kb is None:
            return None
        return self.store_hit_result(
            request,
            key,
            kb,
            started,
            store_seconds=time.perf_counter() - tier_started,
            versions=versions,
        )

    def store_hit_result(
        self,
        request: QueryRequest,
        key: CacheKey,
        kb: KnowledgeBase,
        started: float,
        store_seconds: Optional[float] = None,
        versions: Optional[Dict[str, int]] = None,
    ) -> QueryResult:
        """Per-consumer envelope for a store hit, shared by every
        probe (the sync saturation rescue and the event-loop fast
        path): fills the cache for the next repeat — unless a
        concurrent corpus refresh or a concurrent ingest made the key
        stale — and records the request for the autoscaler without
        ever swapping pools inline.

        ``versions`` is the per-entity version slice snapshotted
        *before* the store read: if the vector advanced past it while
        the row was in flight, an ingest's invalidation sweep may
        already have deleted the row, and refilling the cache from it
        would resurrect a stale entry.
        """
        if versions is None:
            versions = self.entity_versions.versions_for_query(key.query)
        if (
            key.corpus_version == self.session.corpus_version
            and self.entity_versions.versions_for_query(key.query)
            == versions
        ):
            self.cache.put(key, kb)
        result = QueryResult(
            query=request.query,
            normalized_query=key.query,
            kb=kb.copy(),
            corpus_version=key.corpus_version,
            store_hit=True,
            seconds=time.perf_counter() - started,
            client_id=request.client_id,
            request_key=key.signature(),
            store_seconds=store_seconds,
            entity_versions=versions or None,
        )
        self._record_request(key, result.seconds, allow_switch=False)
        return result

    def _serve(self, request_tuple) -> QueryResult:
        """Executor entry point for one (request, key, precounted) tuple.

        Returns the *canonical* ``KnowledgeBase`` (also held by the
        cache); the result may be shared by every caller that joined
        this in-flight computation, so ``serve``/``serve_batch`` wrap
        it in a per-consumer copy via :meth:`_result_copy` — merging or
        mutating a served KB (as the QA system does) must never write
        through into the cache or another caller's result.
        """
        request, key, precounted = request_tuple
        started = time.perf_counter()
        cached = self.cache.get(key, count=not precounted)
        if cached is not None:
            return QueryResult(
                query=request.query,
                normalized_query=key.query,
                kb=cached,
                corpus_version=key.corpus_version,
                cache_hit=True,
                seconds=time.perf_counter() - started,
                request_key=key.signature(),
                entity_versions=self._versions_stamp(key.query),
            )
        result = self._serve_key(request, key)
        result.seconds = time.perf_counter() - started
        return result

    def _serve_key(
        self, request: QueryRequest, key: CacheKey
    ) -> QueryResult:
        """Cache-miss path: consult the store, else run the pipeline.

        Times each tier separately so the envelope can report where the
        wall time went (``store_seconds`` covers the lookup whether it
        hit or missed; ``pipeline_seconds`` covers the pipeline stage
        as observed from the facade, including executor-tier dispatch).
        """
        query = request.query
        store_hit = False
        store_seconds: Optional[float] = None
        pipeline_seconds: Optional[float] = None
        # Per-entity snapshot before any tier is consulted: the result
        # is stamped with it, and the cache/store fills below are
        # skipped if an ingest advanced the query's slice mid-flight
        # (they would resurrect an entry the ingest just invalidated).
        versions_before = self.entity_versions.versions_for_query(key.query)
        kb = None
        if self.store is not None:
            tier_started = time.perf_counter()
            kb = self.store.load(
                key.query,
                corpus_version=key.corpus_version,
                mode=key.mode,
                algorithm=key.algorithm,
                source=key.source,
                num_documents=key.num_documents,
                config_digest=key.config_digest,
            )
            store_seconds = time.perf_counter() - tier_started
            store_hit = kb is not None
        if kb is None:
            tier_started = time.perf_counter()
            kb = self._run_pipeline(
                query, source=key.source, num_documents=key.num_documents
            )
            pipeline_seconds = time.perf_counter() - tier_started
            with self._counter_lock:
                self.pipeline_runs += 1
            # Don't persist results keyed under a corpus version that a
            # concurrent refresh_corpus already invalidated: they would
            # be unreachable dead weight in both tiers.
            if (
                self.store is not None
                and key.corpus_version == self.session.corpus_version
                and self.entity_versions.versions_for_query(key.query)
                == versions_before
            ):
                self.store.save(
                    key.query,
                    kb,
                    corpus_version=key.corpus_version,
                    mode=key.mode,
                    algorithm=key.algorithm,
                    source=key.source,
                    num_documents=key.num_documents,
                    config_digest=key.config_digest,
                )
                current_versions = self.entity_versions.versions_for_query(
                    key.query
                )
                if current_versions != versions_before:
                    # An ingest committed between the pre-save check
                    # and the commit: the row just written was built
                    # under the old engine and may have landed after
                    # the ingest's delete_for_entities sweep. Re-sweep
                    # the advanced entities (over-deletion is safe,
                    # exactly like the version re-sweep below).
                    self.store.delete_for_entities(
                        [
                            entity
                            for entity, version in current_versions.items()
                            if versions_before.get(entity) != version
                        ]
                    )
                if key.corpus_version != self.session.corpus_version:
                    # A refresh_corpus completed between the pre-save
                    # check and the commit: the row just written may
                    # have landed *after* the refresh's delete_stale
                    # sweep and would otherwise survive as dead weight
                    # (version-keyed loads can never serve it, but it
                    # breaks the "no stale rows after refresh"
                    # invariant). Re-sweep; if instead the refresh's
                    # own sweep is still ahead, this is a harmless
                    # no-op. (Found by the fabric fault harness, where
                    # the save's socket round trip widens the race.)
                    self.store.delete_stale(self.session.corpus_version)
        # Label the result with the version its content actually came
        # from: a store hit is keyed (and was built) under the key's
        # version, while a fresh pipeline run used the session as it
        # stands *now* — which may be newer if a refresh_corpus
        # completed while this request was in flight. The key mismatch
        # below also keeps such a result out of the cache and store.
        built_under = (
            key.corpus_version if store_hit else self.session.corpus_version
        )
        if (
            key.corpus_version == self.session.corpus_version
            and self.entity_versions.versions_for_query(key.query)
            == versions_before
        ):
            self.cache.put(key, kb)
        return QueryResult(
            query=query,
            normalized_query=key.query,
            kb=kb,
            corpus_version=built_under,
            store_hit=store_hit,
            client_id=request.client_id,
            request_key=key.signature(),
            store_seconds=store_seconds,
            pipeline_seconds=pipeline_seconds,
            entity_versions=versions_before or None,
        )

    def _run_pipeline(
        self, query: str, source: str, num_documents: int
    ) -> KnowledgeBase:
        """One uncached pipeline run, on the currently selected tier.

        The thread tier runs inline on the calling executor thread; the
        process tier ships a picklable envelope to a worker process so
        the CPU-bound stages escape the GIL. The executor reference is
        snapshotted once per attempt: an autoscale swap (or corpus
        refresh) may replace and shut down the pool concurrently, and a
        request that loses that race retries on whatever tier is
        current instead of failing.
        """
        while True:
            executor = self._pipeline_executor
            if executor is None:
                return self.qkbfly.build_kb(
                    query, source=source, num_documents=num_documents
                )
            try:
                return executor.build_kb(
                    query, source=source, num_documents=num_documents
                )
            except RuntimeError as error:
                # Only swallow the pool's own "shut down beneath us"
                # complaint, and only when the executor actually
                # changed — a genuine pipeline RuntimeError (or a
                # closed service) must propagate.
                swapped = self._pipeline_executor is not executor
                if not swapped or "shutdown" not in str(error):
                    raise

    # ---- executor autoscaling ----------------------------------------------

    def _record_request(
        self, key: CacheKey, seconds: float, allow_switch: bool = True
    ) -> None:
        """Feed one served request to the autoscaler (no-op otherwise).

        Called once per *request* at the serving entry points — not per
        pipeline run — so the selector's distinct-query ratio sees raw
        traffic before dedup collapses the repeats. ``allow_switch=
        False`` records the observation but defers any executor swap;
        the cache-hit fast paths (sync and event-loop) use it so a
        pool bootstrap never stalls a caller who came for a
        microsecond hit.
        """
        if self._selector is None:
            return
        self._selector.record(key, seconds)
        if not allow_switch:
            return
        self._apply_autoscale()

    def autoscale_tick(self) -> Optional[str]:
        """Apply any pending autoscale decision; returns the new kind.

        Covers both control loops: the thread-vs-process tier decision
        (whose outcome is the return value, None when staying put or on
        the fixed tiers) and the pool-*size* decision (observable via
        :attr:`pool_workers` / ``stats()``). The asyncio front end
        calls this from its dispatch threads so pool swaps — which can
        take hundreds of milliseconds for a process bootstrap — never
        run on the event loop; it is equally safe to call from a
        maintenance cron.
        """
        if self._selector is None:
            return None
        return self._apply_autoscale()

    def _apply_autoscale(self) -> Optional[str]:
        """Ask the selector for tier and pool-size decisions; apply both.

        The pool-size decision is fed the live queue state: the deeper
        of the request executor's and the pipeline pool's ``pending``
        views (a dispatched flight appears in both), plus the measured
        queue-wait window.
        """
        decision = self._selector.decide(self.executor_kind)
        if decision is not None:
            self._switch_executor(decision)
        pending = self._executor.pending
        pipeline_executor = self._pipeline_executor
        if pipeline_executor is not None:
            # getattr: a flight dispatched to the pipeline pool is
            # already counted by the request executor above, so a
            # pool stand-in without the `pending` surface (tests,
            # custom tiers) degrades to that view instead of failing.
            pending = max(pending, getattr(pipeline_executor, "pending", 0))
        size = self._selector.decide_pool_size(
            self.pool_workers, pending=pending, queue_wait=self.queue_wait
        )
        if size is not None:
            self._switch_executor(None, workers=size)
        return decision

    def _switch_executor(
        self, kind: Optional[str], workers: Optional[int] = None
    ) -> None:
        """Swap the execution tier and/or resize the pools at runtime.

        ``kind=None`` keeps the current tier, resolved *under the
        autoscale lock* — a resize decision must never carry a stale
        tier snapshot across a concurrent switch and silently revert
        it. ``workers`` (None keeps the current width) resizes the
        request executor in place (its single-flight table, counters,
        and queue-wait hook survive — only the inner thread pool is
        replaced) and, when a process pool is live and not pinned by an
        explicit ``process_workers``, rebuilds it at the new width.
        Any new pool is built and published before the old one is shut
        down (``wait=False``), so requests in flight on the old tier
        complete on it while new requests already land on the new tier.
        """
        old = None
        with self._autoscale_lock:
            if self._closed:
                return
            if kind is None:
                kind = self.executor_kind
            switching = kind != self.executor_kind
            resizing = workers is not None and workers != self.pool_workers
            if not switching and not resizing:
                return  # another thread won the same decision
            fault_point("service.switch_executor")
            if resizing:
                self.pool_workers = workers
                self._executor.resize(workers)
                self.pool_resizes += 1
            self.executor_kind = kind
            rebuild_pipeline = switching or (
                resizing
                and self._pipeline_executor is not None
                and self.service_config.process_workers is None
            )
            if rebuild_pipeline:
                old = self._pipeline_executor
                self._pipeline_executor = self._build_pipeline_executor()
            if switching:
                self.executor_switches += 1
        if old is not None:
            old.shutdown(wait=False)

    # ---- request identity --------------------------------------------------

    def request_key(
        self,
        query: str,
        source: Optional[str] = None,
        num_documents: Optional[int] = None,
    ) -> CacheKey:
        """The full cache/store signature this request serves under.

        Public because every front end (sync, asyncio, warm-up) must
        derive identical keys; omitted arguments fall back to the
        :class:`ServiceConfig` defaults exactly like :meth:`query`.
        """
        return self._key(query, source, num_documents)

    def _cost_shape(self, request: QueryRequest):
        """The query-shape key cost estimation buckets ``request`` on
        (source and document count resolved against the config
        defaults, exactly like :meth:`_key` resolves them — see
        :func:`repro.service.admission.cost_shape` for why the query
        string is excluded)."""
        return cost_shape(
            request.source
            if request.source is not None
            else self.service_config.source,
            request.num_documents
            if request.num_documents is not None
            else self.service_config.num_documents,
        )

    def _key(
        self,
        query: str,
        source: Optional[str],
        num_documents: Optional[int],
    ) -> CacheKey:
        return CacheKey.for_request(
            query,
            mode=self.qkbfly.config.mode,
            algorithm=self.qkbfly.config.algorithm,
            corpus_version=self.session.corpus_version,
            source=source if source is not None else self.service_config.source,
            num_documents=(
                num_documents
                if num_documents is not None
                else self.service_config.num_documents
            ),
            config_digest=self._config_digest,
        )

    # ---- fact search -------------------------------------------------------

    def search_facts(self, request: FactSearchRequest) -> FactSearchResult:
        """One page of the stored-fact search (``GET /v1/facts``).

        Read-only: never touches the cache, the executor, or the
        pipeline — pages come straight from the store's FTS5 index
        (fanned out and merge-sorted across shards; see
        ``docs/SEARCH.md``). Admission control applies exactly like
        :meth:`serve`, with searches as their own cost-estimator shape
        class (:func:`repro.service.admission.search_cost_shape`).
        Raises :class:`~repro.service.api.SearchUnavailable` (503) when
        this deployment has no store or its SQLite build lacks FTS5,
        and an ``invalid_request`` (400) on a bad sort/cursor.
        """
        return self._search("facts", request)

    def search_entities(self, request: FactSearchRequest) -> FactSearchResult:
        """One page of the stored-entity search (``GET /v1/entities``).

        Same contract as :meth:`search_facts`; the ``entity`` filter
        matches the entity id or its display text, and results carry
        the record ``kind`` (``linked`` or ``emerging``).
        """
        return self._search("entities", request)

    def _search(
        self, kind: str, request: FactSearchRequest
    ) -> FactSearchResult:
        started = time.perf_counter()
        charge: Optional[CostCharge] = None
        if self.admission is not None:
            charge = self.admission.admit(
                request.client_id, search_cost_shape(kind)
            )
        try:
            if self.store is None:
                raise SearchUnavailable(
                    "this deployment has no KB store to search "
                    "(store_path is not configured)"
                )
            try:
                page = search_paginated(
                    store_backends(self.store),
                    kind,
                    q=request.q,
                    entity=request.entity,
                    pattern=request.pattern,
                    corpus_version=request.corpus_version,
                    created_after=request.created_after,
                    created_before=request.created_before,
                    sort=request.sort,
                    limit=request.limit,
                    cursor=request.cursor,
                )
            except ServiceError:
                raise
            except ValueError as error:
                raise invalid_request(str(error)) from error
            result = FactSearchResult(
                kind=kind,
                results=page["results"],
                next_cursor=page["next_cursor"],
                has_more=page["has_more"],
                seconds=time.perf_counter() - started,
                client_id=request.client_id,
                api_version=request.api_version,
            )
        except BaseException:
            # Measured cost unknown — the estimate stays charged.
            if charge is not None:
                self.admission.settle(charge)
            raise
        if charge is not None:
            self.admission.settle(charge, actual=result.seconds)
        return result

    # ---- live ingest / subscriptions ---------------------------------------

    def ingest(self, request: IngestRequest) -> IngestResult:
        """Apply one document to the live corpus (``POST /v1/ingest``).

        Runs the document through the NLP/extraction stages to compute
        its touched-entity set, swaps the search engine, bumps the
        per-entity version vector, and invalidates exactly the warm
        entries whose query intersects the touched set — the global
        ``corpus_version`` (and every unrelated warm entry) survives
        bit-identical. See docs/INGEST.md for the dataflow and the
        crash-safety protocol around the ``ingest.commit`` /
        ``ingest.invalidate`` fault points.

        Admission control applies like :meth:`serve`, with ingests as
        their own cost-estimator shape class
        (:func:`repro.service.admission.ingest_cost_shape`) so a bulk
        feed cannot starve query traffic. Raises ``invalid_request``
        (400) on a bad source and the admission taxonomy otherwise;
        returns the acknowledgment envelope once the ingest is durable
        and subscribers have been notified.
        """
        started = time.perf_counter()
        charge: Optional[CostCharge] = None
        if self.admission is not None:
            charge = self.admission.admit(
                request.client_id, ingest_cost_shape(request.source)
            )
        try:
            try:
                outcome = self.ingest_pipeline.ingest(request)
            except ServiceError:
                raise
            except ValueError as error:
                raise invalid_request(str(error)) from error
            result = IngestResult(
                doc_id=outcome["doc_id"],
                source=outcome["source"],
                corpus_version=outcome["corpus_version"],
                updated=outcome["updated"],
                touched_entities=list(outcome["touched_entities"]),
                entity_versions=dict(outcome["entity_versions"]),
                invalidated=dict(outcome["invalidated"]),
                subscribers=outcome["subscribers"],
                deliveries=dict(outcome["deliveries"]),
                seconds=time.perf_counter() - started,
                client_id=request.client_id,
                api_version=request.api_version,
            )
        except BaseException:
            # Measured cost unknown (including a SimulatedCrash from a
            # fault schedule) — the estimated reservation stays charged.
            if charge is not None:
                self.admission.settle(charge)
            raise
        if charge is not None:
            self.admission.settle(charge, actual=result.seconds)
        return result

    def watch(self, request: WatchRequest) -> Dict[str, Any]:
        """Register a ``watch(entities)`` subscription
        (``POST /v1/watch``); returns its wire form, including the
        ``subscription_id`` long-pollers pass to :meth:`poll_deltas`.
        """
        try:
            subscription = self.subscriptions.watch(
                request.client_id,
                request.entities,
                mode=request.mode,
                callback_url=request.callback_url,
            )
        except ValueError as error:
            raise invalid_request(str(error)) from error
        return subscription.to_dict()

    def unwatch(self, subscription_id: str) -> bool:
        """Drop a subscription; True when it existed."""
        return self.subscriptions.unwatch(subscription_id)

    def poll_deltas(
        self,
        subscription_id: str,
        after: int = 0,
        timeout: float = 0.0,
    ) -> Dict[str, Any]:
        """Long-poll a subscription's pending KB deltas
        (``GET /v1/deltas``). ``after=N`` acknowledges every delta with
        id ≤ N; the call blocks up to ``timeout`` seconds (capped by
        the registry) when nothing is pending.
        """
        try:
            return self.subscriptions.poll(
                subscription_id, after=after, timeout=timeout
            )
        except KeyError as error:
            raise invalid_request(
                f"unknown subscription {subscription_id!r}"
            ) from error
        except ValueError as error:
            raise invalid_request(str(error)) from error

    def _rebind_after_ingest(self) -> None:
        """Rebind the pipeline over the session's just-swapped search
        engine *without* rotating the corpus version.

        The ingest path's slice of :meth:`refresh_corpus`: gazetteer
        snapshot and QKBfly rebind so the new document is retrievable,
        plus a process-pool rebuild (workers bootstrapped from the old
        session pickle would keep serving the old engine). No blanket
        invalidation — the caller invalidates the touched slice.
        """
        self.session.rebuild_nlp()
        self.qkbfly = QKBfly.from_session(
            self.session, config=self.qkbfly.config
        )
        old = None
        with self._autoscale_lock:
            if self._pipeline_executor is not None:
                old = self._pipeline_executor
                self._pipeline_executor = self._build_pipeline_executor()
        if old is not None:
            old.shutdown()

    # ---- corpus lifecycle --------------------------------------------------

    def refresh_corpus(
        self,
        search_engine: Optional[SearchEngine] = None,
        statistics=None,
        pattern_repository=None,
        version: Optional[str] = None,
    ) -> str:
        """Advance the corpus snapshot and invalidate stale results.

        Pass the pieces that changed — a new ``search_engine`` when
        documents changed, new ``statistics`` when the background corpus
        was rebuilt, a new ``pattern_repository`` when the pattern
        inventory changed. The pipeline is rebound to the updated
        session, the version stamp is recomputed (or set to ``version``
        explicitly), the cache drops entries from older versions, and
        the store deletes its stale rows. Returns the new version.

        Exception: a refresh that *only* swaps the search engine (no
        statistics, no patterns, no explicit version pin) is a batch of
        document changes — exactly what the live-ingest path models —
        and routes through entity-granular invalidation instead: the
        documents that differ between the old and new engines are
        diffed, their touched entities are bumped on the version
        vector, and only the intersecting warm state is invalidated.
        The corpus version and every unrelated warm entry survive
        bit-identical (docs/INGEST.md). Pass ``version`` explicitly to
        force the full rotation.
        """
        if (
            search_engine is not None
            and version is None
            and statistics is None
            and pattern_repository is None
        ):
            self.ingest_pipeline.refresh_engine(search_engine)
            return self.session.corpus_version
        previous_version = self.session.corpus_version
        if search_engine is not None:
            self.session.search_engine = search_engine
        if statistics is not None:
            self.session.statistics = statistics
        if pattern_repository is not None:
            self.session.pattern_repository = pattern_repository
        # Rebuild the NER gazetteer snapshot and rebind the pipeline:
        # the session's nlp and QKBfly captured references to the old
        # corpus pieces at construction, and refresh_corpus with no
        # arguments signals an in-place mutation (e.g. entities added
        # directly to the repository).
        self.session.rebuild_nlp()
        self.qkbfly = QKBfly.from_session(
            self.session, config=self.qkbfly.config
        )
        self.session.corpus_version = (
            version or self.session.compute_corpus_version()
        )
        self.cache.invalidate_corpus_version(self.session.corpus_version)
        if self.store is not None:
            self.store.delete_stale(self.session.corpus_version)
            self.store.set_corpus_version(self.session.corpus_version)
        # Stage-cache hygiene after the version bump: retrieval entries
        # are keyed on the old corpus version, so they are unreachable
        # dead weight — reclaim them. NLP/extract entries are keyed on
        # document *content* (not the version), so annotations of
        # unchanged documents deliberately survive the refresh; see
        # docs/PIPELINE.md.
        if self.session.stage_cache is not None:
            self.session.stage_cache.clear(STAGE_RETRIEVAL)
        # Worker processes bootstrapped from the *old* session pickle;
        # rebuild the pool so they serve the new corpus. The swap takes
        # the autoscale lock so a concurrent tier switch cannot orphan
        # a pool or publish one that was just shut down.
        with self._autoscale_lock:
            old = self._pipeline_executor
            self._pipeline_executor = (
                self._build_pipeline_executor() if old is not None else None
            )
        if old is not None:
            old.shutdown()
        if self.history is not None:
            self.history.record_refresh(
                previous_version, self.session.corpus_version
            )
        return self.session.corpus_version

    # ---- warm-up / compaction ---------------------------------------------

    def warm_cache(self, limit: Optional[int] = None) -> int:
        """Refill the in-memory cache from the store; returns the count.

        Long-running deployments restart with a cold cache but a warm
        store — this promotes stored entries back into memory so the
        first wave of traffic after a restart is served at cache speed.
        Only entries that are servable *now* qualify (current corpus
        version, current mode/algorithm/config digest); newest first,
        up to ``limit`` (default: the cache's own capacity). Already
        cached keys are skipped, so warming never demotes recency.
        """
        if self.store is None:
            return 0
        budget = self.cache.max_size if limit is None else limit
        budget = min(budget, self.cache.max_size)
        # Servability is filtered in SQL, so a warm-up over a huge
        # store reads O(budget) rows; the extra len(cache) headroom
        # covers candidates that turn out to be cached already.
        candidates = self.store.signatures(
            corpus_version=self.session.corpus_version,
            mode=self.qkbfly.config.mode,
            algorithm=self.qkbfly.config.algorithm,
            config_digest=self._config_digest,
            limit=budget + len(self.cache),
        )
        selected = []
        for sig in candidates:  # newest first
            if len(selected) >= budget:
                break
            key = CacheKey(
                query=sig.query,
                mode=sig.mode,
                algorithm=sig.algorithm,
                corpus_version=sig.corpus_version,
                source=sig.source,
                num_documents=sig.num_documents,
                config_digest=sig.config_digest,
            )
            if key not in self.cache:
                selected.append((key, sig))
        loaded = 0
        # Insert oldest-first so the newest entry ends up
        # most-recently-used: newest-first insertion would put the
        # hottest candidates first in line for LRU eviction.
        for key, sig in reversed(selected):
            kb = self.store.load(
                sig.query,
                corpus_version=sig.corpus_version,
                mode=sig.mode,
                algorithm=sig.algorithm,
                source=sig.source,
                num_documents=sig.num_documents,
                config_digest=sig.config_digest,
            )
            if kb is None:  # deleted between listing and load
                continue
            self.cache.put(key, kb)
            loaded += 1
        return loaded

    def compact_store(
        self,
        max_age_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> int:
        """Apply the store TTL/size policy; returns removed entries.

        Explicit arguments override the :class:`ServiceConfig` policy;
        with neither configured nor passed this is a no-op, so it is
        always safe to call from a maintenance cron.
        """
        if self.store is None:
            return 0
        if max_age_seconds is None:
            max_age_seconds = self.service_config.store_max_age_seconds
        if max_entries is None:
            max_entries = self.service_config.store_max_entries
        if max_age_seconds is None and max_entries is None:
            return 0
        return self.store.compact(
            max_age_seconds=max_age_seconds, max_entries=max_entries
        )

    # ---- lifecycle / monitoring -------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Serving counters across all tiers.

        Cache hit/miss counts are exact under sequential use; under
        concurrent mixed ``query``/``batch_query`` traffic on the same
        key they can drift by a few lookups (a request that joins
        another caller's in-flight computation may count its lookup on
        a different tier) — treat them as monitoring signals, not an
        audit log.
        """
        out: Dict[str, Any] = {
            "corpus_version": self.session.corpus_version,
            "pipeline_runs": self.pipeline_runs,
            "executor_kind": self.executor_kind,
            "pool_workers": self.pool_workers,
            "cache": self.cache.stats(),
            "executor": {
                "submitted": self._executor.submitted,
                "deduplicated": self._executor.deduplicated,
                "pending": self._executor.pending,
                "max_workers": self._executor.max_workers,
            },
            "queue_wait": self.queue_wait.stats(),
        }
        if self._selector is not None:
            autoscale = self._selector.stats()
            autoscale["executor_switches"] = self.executor_switches
            autoscale["pool_workers"] = self.pool_workers
            autoscale["pool_resizes"] = self.pool_resizes
            out["autoscale"] = autoscale
        if self._pipeline_executor is not None:
            out["pipeline_executor"] = self._pipeline_executor.stats()
        if self.store is not None:
            out["store"] = self.store.stats()
        if self.fabric is not None:
            out["fabric"] = self.fabric.stats()
        if self.admission is not None:
            out["admission"] = self.admission.stats()
        ingest_stats: Dict[str, Any] = self.ingest_pipeline.stats()
        ingest_stats["entity_versions"] = self.entity_versions.stats()
        ingest_stats["subscriptions"] = self.subscriptions.stats()
        out["ingest"] = ingest_stats
        stage_cache = self.session.stage_cache
        if stage_cache is not None:
            out["stage_cache"] = stage_cache.stats()
        return out

    def close(self) -> None:
        """Shut down the executors and close the store.

        Marks the service closed under the autoscale lock *before*
        any pool is shut down, so a tier switch or live resize racing
        the shutdown can neither publish a fresh pool after it (leaked
        worker threads/processes) nor hand this method a pool that is
        about to be replaced.
        """
        with self._autoscale_lock:
            self._closed = True
            pipeline_executor = self._pipeline_executor
            self._pipeline_executor = None
        # Wake blocked long-pollers before the pools drain: a poller
        # parked on the registry condition would otherwise wait out its
        # full timeout during shutdown.
        self.subscriptions.close()
        fault_point("service.close")
        self._executor.shutdown()
        if pipeline_executor is not None:
            pipeline_executor.shutdown()
        if self.fabric is not None:
            # Drains queued replica deliveries, closes the routed
            # store, then stops the shard servers (store.close() is
            # idempotent, so the plain branch below would be a no-op).
            self.fabric.close()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "QKBflyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["QKBflyService", "QueryRequest", "QueryResult", "ServiceConfig"]
