"""Content-addressed caching of individual pipeline stages.

The query cache (:mod:`repro.service.cache`) only helps *exact*
repeats: "Barack Obama spouse" and "Barack Obama children" are
different queries, so each pays a full pipeline run — even though both
retrieve the same document, annotate the same sentences, and extract
the same clauses. The stage cache closes that gap by caching the
pipeline's *intermediate products* under content-addressed signatures
(see ``docs/PIPELINE.md`` for the full stage map):

- **retrieval** — the ranked document ids for a normalized query, keyed
  on the corpus version (any corpus change starts a clean slate);
- **nlp** — the annotated :class:`~repro.nlp.tokens.Document` for one
  raw document, keyed on the document's *content* (id, title, text)
  plus the annotation configuration (parser + entity-repository
  fingerprint, which covers the NER gazetteer). Deliberately *not*
  keyed on the corpus version: a corpus bump that leaves a document's
  text unchanged leaves its annotation reusable;
- **extract** — the per-sentence ClausIE clause lists, keyed on the
  extractor version and the upstream NLP signature.

Each signature chains the stage name, the stage's configuration
digest, and the upstream signature
(:func:`stage_signature`), so a change anywhere upstream changes every
downstream key — stale intermediates are unreachable by construction,
and invalidation is garbage collection (LRU/TTL/byte pressure), not
correctness.

The downstream stages (semantic graph, densification,
canonicalization) are deliberately *not* cached here: they depend on
mode/algorithm/weights and are cheap relative to annotation, and their
final product is what the query cache and KB store already hold.

Cached values are shared across queries and across the worker threads
of one deployment, so consumers must treat them as **read-only** —
the same contract the shared :class:`~repro.core.qkbfly.SessionState`
already imposes (and the cross-query parity tests verify).

A :class:`StageCache` itself is not pickled (its entries may be large
and are process-local); :meth:`StageCache.spec` captures its *policy*
as a small frozen :class:`StageCacheSpec`, which is what a pickled
session ships so process-pool workers rebuild their own empty cache
with identical limits.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

#: The cacheable upstream stages, in dataflow order.
STAGE_RETRIEVAL = "retrieval"
STAGE_NLP = "nlp"
STAGE_EXTRACT = "extract"
STAGES = (STAGE_RETRIEVAL, STAGE_NLP, STAGE_EXTRACT)

#: Default per-stage entry ceiling (documents are the unit for the
#: nlp/extract stages, queries for retrieval).
DEFAULT_STAGE_ENTRIES = 512

#: Default per-stage byte budget (64 MiB). Annotated documents are the
#: heavyweight values; retrieval entries are a few dozen bytes.
DEFAULT_STAGE_BYTES = 64 * 1024 * 1024


def stage_signature(stage: str, *parts: str) -> str:
    """The content-addressed signature of one stage product.

    A stable SHA-1 over the stage name and its input parts (stage
    configuration digest, upstream signature, corpus version where
    applicable), ``\\x1f``-joined like
    :meth:`repro.service.cache.CacheKey.signature` so no part can
    collide into its neighbor. 16 hex chars, stable across processes
    and Python versions.
    """
    payload = "\x1f".join((stage,) + parts)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def normalized_query_text(query: str) -> str:
    """Case-fold and collapse whitespace (the retrieval-stage twin of
    :func:`repro.service.cache.normalize_query`, duplicated here so the
    stage layer stays import-cycle-free from the serving layer)."""
    return " ".join(query.lower().split())


@dataclass(frozen=True)
class StagePolicy:
    """Eviction policy of one stage's namespace.

    Args:
        max_entries: Entry-count ceiling; LRU eviction past it.
        ttl_seconds: Optional wall-clock time-to-live; expired entries
            are dropped lazily on lookup (None: no expiry).
        max_bytes: Optional byte budget for the stage (estimated via
            pickle size); LRU eviction past it, and a single value
            larger than the whole budget is never stored (None: no
            byte bound).
    """

    max_entries: int = DEFAULT_STAGE_ENTRIES
    ttl_seconds: Optional[float] = None
    max_bytes: Optional[int] = DEFAULT_STAGE_BYTES

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive when set")
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive when set")


@dataclass(frozen=True)
class StageCacheSpec:
    """The picklable identity of a :class:`StageCache`: its policies,
    not its entries. ``SessionState.__getstate__`` swaps the live cache
    for its spec; ``__setstate__`` calls :meth:`build` so every
    process-pool worker starts with an empty cache under the same
    limits."""

    policy: StagePolicy = StagePolicy()
    overrides: Tuple[Tuple[str, StagePolicy], ...] = ()

    def build(self) -> "StageCache":
        """A fresh, empty cache with this spec's policies."""
        return StageCache(
            policy=self.policy, overrides=dict(self.overrides)
        )


class _StageShard:
    """One stage's namespace: an LRU table plus its counters."""

    __slots__ = (
        "policy",
        "entries",
        "inserted_at",
        "sizes",
        "tags",
        "total_bytes",
        "hits",
        "misses",
        "puts",
        "evictions",
        "expirations",
        "rejected",
        "unpicklable",
        "discarded",
    )

    def __init__(self, policy: StagePolicy) -> None:
        self.policy = policy
        self.entries: "OrderedDict[str, Any]" = OrderedDict()
        self.inserted_at: Dict[str, float] = {}
        self.sizes: Dict[str, int] = {}
        self.tags: Dict[str, str] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.expirations = 0
        self.rejected = 0
        self.unpicklable = 0
        self.discarded = 0


class StageCache:
    """Thread-safe per-stage LRU+TTL cache with byte budgets.

    One instance is shared by every pipeline consumer of a deployment
    (it is installed on the :class:`~repro.core.qkbfly.SessionState`),
    so all operations take one lock; the critical sections are dict
    operations plus an occasional eviction sweep, microsecond-scale.

    Args:
        policy: Default :class:`StagePolicy` for every stage.
        overrides: Optional per-stage policy map (stage name →
            :class:`StagePolicy`), e.g. a small TTL for ``retrieval``
            with a large byte budget for ``nlp``.
        clock: Injectable monotonic time source for tests.
    """

    def __init__(
        self,
        policy: Optional[StagePolicy] = None,
        overrides: Optional[Mapping[str, StagePolicy]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._policy = policy or StagePolicy()
        self._overrides = dict(overrides or {})
        self._clock = clock
        self._lock = threading.RLock()
        self._shards: Dict[str, _StageShard] = {}

    # ---- identity ----------------------------------------------------------

    def spec(self) -> StageCacheSpec:
        """The picklable policy-only identity of this cache."""
        return StageCacheSpec(
            policy=self._policy,
            overrides=tuple(sorted(self._overrides.items())),
        )

    def policy_for(self, stage: str) -> StagePolicy:
        """The effective policy of ``stage`` (override or default)."""
        return self._overrides.get(stage, self._policy)

    # ---- lookup ------------------------------------------------------------

    def get(self, stage: str, signature: str) -> Optional[Any]:
        """The cached product for ``signature``, or None on a miss.

        A hit refreshes recency; an expired entry counts as both an
        expiration and a miss (and is dropped). The returned value is
        shared — callers must not mutate it.
        """
        with self._lock:
            shard = self._shards.get(stage)
            if shard is None or signature not in shard.entries:
                if shard is None:
                    shard = self._shard(stage)
                shard.misses += 1
                return None
            ttl = shard.policy.ttl_seconds
            if ttl is not None and (
                self._clock() - shard.inserted_at[signature] > ttl
            ):
                self._drop(shard, signature)
                shard.expirations += 1
                shard.misses += 1
                return None
            shard.entries.move_to_end(signature)
            shard.hits += 1
            return shard.entries[signature]

    def put(
        self,
        stage: str,
        signature: str,
        value: Any,
        size_bytes: Optional[int] = None,
        tag: Optional[str] = None,
    ) -> None:
        """Insert (or refresh) one stage product.

        ``size_bytes`` overrides the pickle-based size estimate (used
        by tests and by callers that already know the payload size). A
        value larger than the stage's whole byte budget is rejected
        rather than flushing everything else.

        ``tag`` attaches an opaque selector (the retrieval stage tags
        entries with their normalized query text) that
        :meth:`discard_tagged` can match on — content addressing
        already makes superseded entries unreachable; tags let the
        entity-granular ingest path *reclaim* exactly the slice an
        ingest made unreachable.
        """
        if size_bytes is None:
            size_bytes = _estimate_size(value)
        with self._lock:
            shard = self._shard(stage)
            budget = shard.policy.max_bytes
            if size_bytes is None:
                # Unpicklable: no honest size estimate exists, and a
                # guessed one (``sys.getsizeof`` ignores container
                # contents) could blow the byte budget while the
                # bookkeeping says it fits. Refuse the value and make
                # the refusal visible in stats.
                shard.unpicklable += 1
                shard.rejected += 1
                return
            if budget is not None and size_bytes > budget:
                shard.rejected += 1
                return
            if signature in shard.entries:
                self._drop(shard, signature)
            shard.entries[signature] = value
            shard.inserted_at[signature] = self._clock()
            shard.sizes[signature] = size_bytes
            if tag is not None:
                shard.tags[signature] = tag
            shard.total_bytes += size_bytes
            shard.puts += 1
            while len(shard.entries) > shard.policy.max_entries or (
                budget is not None and shard.total_bytes > budget
            ):
                oldest = next(iter(shard.entries))
                self._drop(shard, oldest)
                shard.evictions += 1

    def clear(self, stage: Optional[str] = None) -> int:
        """Drop every entry of ``stage`` (or of all stages when None);
        returns the number of entries removed. Counters are kept.

        Content addressing makes this purely a memory-reclaim
        operation: a corpus bump already changed every affected
        signature, so the cleared entries were unreachable.
        """
        removed = 0
        with self._lock:
            shards = (
                [self._shards[stage]]
                if stage is not None and stage in self._shards
                else (list(self._shards.values()) if stage is None else [])
            )
            for shard in shards:
                removed += len(shard.entries)
                shard.entries.clear()
                shard.inserted_at.clear()
                shard.sizes.clear()
                shard.tags.clear()
                shard.total_bytes = 0
        return removed

    def discard_tagged(
        self, stage: str, predicate: Callable[[str], bool]
    ) -> int:
        """Drop every ``stage`` entry whose tag satisfies ``predicate``;
        returns the number of entries removed.

        Untagged entries are never matched. Like :meth:`clear`, this is
        memory reclamation, not correctness — the live-ingest path
        calls it with "does this normalized query touch the ingested
        entities?" after the version-vector bump has already changed
        the affected signatures.
        """
        removed = 0
        with self._lock:
            shard = self._shards.get(stage)
            if shard is None:
                return 0
            doomed = [
                signature
                for signature, tag in shard.tags.items()
                if predicate(tag)
            ]
            for signature in doomed:
                self._drop(shard, signature)
            removed = len(doomed)
            shard.discarded += removed
        return removed

    # ---- monitoring --------------------------------------------------------

    @property
    def reuse_ratio(self) -> float:
        """Hits over total lookups across all stages (0.0 when idle).

        The fraction of stage work served from cache — the number the
        ``gate_overlap_reuse`` benchmark gate is built on.
        """
        with self._lock:
            hits = sum(s.hits for s in self._shards.values())
            misses = sum(s.misses for s in self._shards.values())
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Per-stage and aggregate counters for the monitoring surface."""
        with self._lock:
            stages: Dict[str, Any] = {}
            totals = {
                "hits": 0,
                "misses": 0,
                "puts": 0,
                "evictions": 0,
                "expirations": 0,
                "rejected": 0,
                "unpicklable": 0,
                "discarded": 0,
                "entries": 0,
                "bytes": 0,
            }
            for stage in sorted(self._shards):
                shard = self._shards[stage]
                block = {
                    "hits": shard.hits,
                    "misses": shard.misses,
                    "puts": shard.puts,
                    "evictions": shard.evictions,
                    "expirations": shard.expirations,
                    "rejected": shard.rejected,
                    "unpicklable": shard.unpicklable,
                    "discarded": shard.discarded,
                    "entries": len(shard.entries),
                    "bytes": shard.total_bytes,
                    "max_entries": shard.policy.max_entries,
                    "ttl_seconds": shard.policy.ttl_seconds,
                    "max_bytes": shard.policy.max_bytes,
                }
                stages[stage] = block
                for field in totals:
                    totals[field] += block[field]
        lookups = totals["hits"] + totals["misses"]
        return {
            "stages": stages,
            **totals,
            "reuse_ratio": (
                totals["hits"] / lookups if lookups else 0.0
            ),
        }

    # ---- internals ---------------------------------------------------------

    def _shard(self, stage: str) -> _StageShard:
        shard = self._shards.get(stage)
        if shard is None:
            shard = _StageShard(self.policy_for(stage))
            self._shards[stage] = shard
        return shard

    @staticmethod
    def _drop(shard: _StageShard, signature: str) -> None:
        del shard.entries[signature]
        del shard.inserted_at[signature]
        shard.tags.pop(signature, None)
        shard.total_bytes -= shard.sizes.pop(signature)


def _estimate_size(value: Any) -> Optional[int]:
    """Approximate in-memory weight of a cached value, in bytes.

    Pickle length is a cheap, deterministic proxy that scales with the
    actual token/clause payload. A value that cannot be pickled (never
    the case for the pipeline's dataclasses, but possible for foreign
    annotator products) returns None — ``put`` rejects it, because the
    previous ``sys.getsizeof`` fallback ignores container contents and
    let such values blow the byte budget unaccounted.
    """
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return None


__all__ = [
    "DEFAULT_STAGE_BYTES",
    "DEFAULT_STAGE_ENTRIES",
    "STAGES",
    "STAGE_EXTRACT",
    "STAGE_NLP",
    "STAGE_RETRIEVAL",
    "StageCache",
    "StageCacheSpec",
    "StagePolicy",
    "normalized_query_text",
    "stage_signature",
]
