"""Asyncio front end: slow pipeline runs never stall cache-hit traffic.

The sync :class:`~repro.service.service.QKBflyService` answers a cache
hit in microseconds — but a caller thread that happens to be behind a
cold query waits for a full pipeline run. An event-loop front end
removes that head-of-line blocking, the same fast-path/slow-path split
hybrid transactional/analytical systems use: cheap lookups stay on the
latency-critical path while heavy work is isolated on its own
execution tier.

:class:`AsyncQKBflyService` serves three paths per request:

- **cache hit** — answered synchronously on the event loop (the LRU
  lookup is a microsecond-scale critical section, never disk or
  pipeline work);
- **store hit** — attempted on the loop through the stores'
  non-blocking accessors (:meth:`~repro.service.kb_store.KbStore.
  try_load`): if the routed store lock is free, the SQLite read happens
  inline and the cache is filled; if a writer holds it, the request
  falls through to the slow path instead of stalling the loop;
- **miss** — dispatched off the loop via ``loop.run_in_executor`` into
  the sync service's :class:`~repro.service.executor.BatchExecutor`
  (and through it the process tier, when selected), so the pipeline's
  CPU-bound stages run on worker threads/processes while the loop keeps
  answering hits.

Concurrent coroutines asking for the same cold query are collapsed by
an **asyncio-native single-flight registry** (one in-flight task per
key, joiners await it) layered over the executor's own thread-level
dedup — so a burst of N identical cold queries costs one dispatch
thread and one pipeline run, whether the copies arrive via this front
end, the sync API, or both.

One instance belongs to one event loop. All mutable front-end state
(the in-flight registry, the counters) is touched only from loop
callbacks, which is what makes the front end lock-free.

Since the v1 API, the primary entry points are the envelope methods
:meth:`AsyncQKBflyService.serve` / :meth:`AsyncQKBflyService.serve_batch`
(:class:`~repro.service.api.QueryRequest` in,
:class:`~repro.service.api.QueryResult` out, admission control and the
typed error taxonomy enforced exactly like the sync facade); the HTTP
gateway (:mod:`repro.service.gateway`) is a thin transport over them.
The pre-v1 ``answer()`` / ``answer_batch()`` signatures remain as thin
deprecated shims.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.core.qkbfly import QKBflyConfig, SessionState
from repro.corpus.world import World
from repro.faultinject.points import fault_point
from repro.service.api import (
    DeadlineUnmet,
    FactSearchRequest,
    FactSearchResult,
    IngestRequest,
    IngestResult,
    PipelineFailure,
    QueryRequest,
    QueryResult,
    ServiceError,
    WatchRequest,
    backend_seconds,
    classify_timeout,
    reraise_original,
    warn_deprecated,
    wrap_failure,
)
from repro.service.cache import CacheKey
from repro.service.service import QKBflyService, ServiceConfig


class AsyncQKBflyService:
    """Event-loop serving facade over a :class:`QKBflyService`.

    All serving tiers (cache, store, executors, autoscaler) are the
    wrapped sync service's — the two front ends can serve the same
    deployment concurrently and share every tier, including
    single-flight dedup across the sync/async boundary.

    Args:
        service: The sync service to front. Closed by :meth:`aclose`
            only when ``own_service`` is set (:meth:`from_world` sets
            it; wrap an externally managed service with the default).
        own_service: Whether :meth:`aclose` also closes ``service``.
        dispatch_workers: Threads in the dispatch pool that bridges the
            loop to the blocking executor API; one is occupied per
            *distinct* in-flight cold query (the single-flight registry
            guarantees that bound). Defaults to the service's
            ``max_workers``; an explicit value is an operator pin.
            When defaulted, the pool *follows* the sync service's
            autoscaled ``pool_workers`` at runtime, so a widened
            worker pool is not bottlenecked behind a fixed-width
            dispatch bridge (and a narrowed one stops being hidden by
            excess dispatch threads).
    """

    def __init__(
        self,
        service: QKBflyService,
        own_service: bool = False,
        dispatch_workers: Optional[int] = None,
    ) -> None:
        self.service = service
        self._own_service = own_service
        workers = (
            dispatch_workers
            if dispatch_workers is not None
            else service.service_config.max_workers
        )
        if workers <= 0:
            raise ValueError("dispatch_workers must be positive")
        # An explicit dispatch_workers pins the pool width; otherwise
        # _sync_dispatch_pool follows the sync service's autoscaled
        # pool_workers (loop-confined, like every front-end mutation).
        self._dispatch_pinned = dispatch_workers is not None
        self._dispatch_workers = workers
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="qkbfly-async"
        )
        self._in_flight: Dict[CacheKey, "asyncio.Task[QueryResult]"] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        # Front-end counters (loop-confined, hence unlocked).
        self.answered = 0
        self.loop_cache_hits = 0
        self.loop_store_hits = 0
        self.store_busy_fallthroughs = 0
        self.deduplicated = 0
        self.dispatched = 0
        self.dispatch_resizes = 0

    @classmethod
    def from_world(
        cls,
        world: World,
        config: Optional[QKBflyConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        with_search: bool = True,
        dispatch_workers: Optional[int] = None,
    ) -> "AsyncQKBflyService":
        """Build and own a sync service for ``world``, then front it."""
        service = QKBflyService.from_world(
            world,
            config=config,
            service_config=service_config,
            with_search=with_search,
        )
        return cls(
            service, own_service=True, dispatch_workers=dispatch_workers
        )

    @classmethod
    def from_session(
        cls,
        session: SessionState,
        config: Optional[QKBflyConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        dispatch_workers: Optional[int] = None,
    ) -> "AsyncQKBflyService":
        """Build and own a sync service over ``session``, then front it."""
        service = QKBflyService(
            session, config=config, service_config=service_config
        )
        return cls(
            service, own_service=True, dispatch_workers=dispatch_workers
        )

    # ---- QKBflyService-compatible surface ----------------------------------

    @property
    def cache(self):
        """The shared in-memory query cache."""
        return self.service.cache

    @property
    def store(self):
        """The shared persistent KB store (None when persistence is off)."""
        return self.service.store

    @property
    def admission(self):
        """The shared admission controller (None when not configured)."""
        return self.service.admission

    @property
    def session(self) -> SessionState:
        """The shared session state."""
        return self.service.session

    @property
    def corpus_version(self) -> str:
        """The corpus snapshot currently served."""
        return self.service.corpus_version

    # ---- serving -----------------------------------------------------------

    async def serve(self, request: QueryRequest) -> QueryResult:
        """Serve one v1 envelope; hits resolve on the loop, misses off it.

        The primary asyncio entry point, the exact event-loop
        counterpart of :meth:`QKBflyService.serve`: the same admission
        control (rate *and* cost budgets checked before any tier is
        consulted, queue-depth shedding before a new flight is
        started), the same typed error taxonomy, the same envelope out.
        The returned :class:`QueryResult` carries a private KB copy, so
        callers may mutate it freely.
        """
        loop = self._check_loop()
        sync = self.service
        started = time.perf_counter()
        sync._validate_request(request)
        charge = None
        if sync.admission is not None:
            charge = sync.admission.admit(
                request.client_id, sync._cost_shape(request)
            )
        self.answered += 1
        try:
            result = await self._serve_admitted(request, started, loop)
        except BaseException:
            # Measured cost unknown (shed, deadline, pipeline failure):
            # the estimated reservation stays charged — identical to
            # the sync facade's settle discipline.
            if charge is not None:
                sync.admission.settle(charge)
            raise
        if charge is not None:
            sync.admission.settle(charge, actual=backend_seconds(result))
        if sync.history is not None:
            # The async tier records on the shared sync recorder, so
            # one attach_history() covers every front end (the HTTP
            # gateway's serves ride through here as well).
            sync.history.record_serve(result, front_end="async")
        return result

    async def _serve_admitted(
        self,
        request: QueryRequest,
        started: float,
        loop: asyncio.AbstractEventLoop,
    ) -> QueryResult:
        """:meth:`serve` past the admission gate: loop-side fast paths,
        then the single-flight slow path, deadline counted from
        ``started`` (request entry)."""
        sync = self.service
        key = sync.request_key(
            request.query, request.source, request.num_documents
        )

        # Fast path 1: in-memory cache, directly on the loop (the
        # shared helper records for the autoscaler without ever
        # swapping pools inline). Raw tier failures become typed
        # envelope errors here too — the contract is taxonomy-only.
        try:
            cached = sync.cache.get(key)
            if cached is not None:
                self.loop_cache_hits += 1
                return sync.hit_result(request, key, cached, started)

            # Fast path 2: persistent store, only if its lock is free
            # right now — a writer mid-save must not stall the loop.
            result = self._try_store_on_loop(request, key, started)
        except ServiceError:
            raise
        except Exception as error:
            raise wrap_failure(request, error, "serving") from error
        if result is not None:
            return result

        # Slow path: join or start the single flight for this key.
        task = self._in_flight.get(key)
        if task is None:
            # Shed *before* a flight exists; joiners below are exempt
            # (they add no executor load). This front end's own
            # registry is passed as the depth: flights wait in the
            # dispatch pool's queue before they ever reach the
            # executor, so executor.pending alone would undercount
            # async load. A store-servable key gets one more
            # non-blocking probe before being shed — only if a writer
            # holds the shard lock at both probes can a store hit be
            # rejected (best-effort, the loop never blocks).
            try:
                sync._check_capacity(
                    key, front_depth=len(self._in_flight)
                )
                sync._check_deadline(request, key, started)
            except ServiceError as rejection:
                try:
                    result = self._try_store_on_loop(request, key, started)
                except Exception as error:
                    raise wrap_failure(request, error, "serving") from error
                if result is not None:
                    return result
                if sync.admission is not None:
                    if isinstance(rejection, DeadlineUnmet):
                        sync.admission.count_deadline_rejected()
                    else:
                        sync.admission.count_overloaded()
                raise
            self._sync_dispatch_pool()
            task = loop.create_task(self._dispatch(request, key))
            task.add_done_callback(self._make_reaper(key, task))
            self._in_flight[key] = task
            self.dispatched += 1
        else:
            self.deduplicated += 1
            # Joins feed the executor's deployment-wide dedup counter
            # too, so stats()["executor"]["deduplicated"] reflects
            # every front end (the loop-side counter above remains the
            # async-only view).
            sync._executor.count_dedup()
        # shield(): a cancelled consumer must not cancel the shared
        # flight out from under its other joiners.
        waiter = asyncio.shield(task)
        try:
            if request.timeout is not None:
                # Absolute deadline from request entry, mirroring the
                # sync facade: admission and the loop-side fast paths
                # (including a store read) already consumed budget.
                remaining = max(
                    0.0,
                    request.timeout - (time.perf_counter() - started),
                )
                shared = await asyncio.wait_for(waiter, remaining)
            else:
                shared = await waiter
        except asyncio.TimeoutError as error:
            # Hand over the flight's own exception (if it finished by
            # raising): the classification must chain the pipeline's
            # real error, never the wait's TimeoutError.
            raise classify_timeout(
                request,
                error,
                task.exception()
                if task.done() and not task.cancelled()
                else None,
            )
        except ServiceError:
            raise
        except Exception as error:
            raise wrap_failure(request, error) from error
        result = QKBflyService._result_copy(
            shared,
            seconds=time.perf_counter() - started,
            query=request.query,
            client_id=request.client_id,
        )
        sync._record_request(key, result.seconds, allow_switch=False)
        return result

    async def serve_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryResult]:
        """Serve many envelopes concurrently; results in input order.

        Duplicates within the batch (and against any other in-flight
        request) collapse onto one pipeline run via the single-flight
        registry; every result slot still gets its own KB copy. Like
        the sync :meth:`QKBflyService.serve_batch`, nothing raises:
        each slot independently carries its status/error envelope.
        """

        async def serve_one(request: QueryRequest) -> QueryResult:
            slot_started = time.perf_counter()
            try:
                return await self.serve(request)
            except ServiceError as error:
                # Mirror the sync batch envelopes: failures past the
                # admission gate (shed, deadline, pipeline) carry the
                # derived request key for correlation; validation and
                # rate-limit rejections happened before a key existed.
                key = None
                if error.code in (
                    "overloaded",
                    "deadline_unmet",
                    "timeout",
                    "pipeline_failure",
                ):
                    key = self.service.request_key(
                        request.query, request.source, request.num_documents
                    )
                return self.service._failure(
                    request,
                    error,
                    key,
                    seconds=time.perf_counter() - slot_started,
                )
            except Exception as error:
                # Raw infrastructure failures (e.g. a store error on
                # the loop fast path) poison only their own slot.
                return self.service._failure(
                    request,
                    wrap_failure(request, error, "serving"),
                    seconds=time.perf_counter() - slot_started,
                )

        return list(
            await asyncio.gather(*(serve_one(r) for r in requests))
        )

    # ---- fact search -------------------------------------------------------

    async def search_facts(
        self, request: FactSearchRequest
    ) -> FactSearchResult:
        """One page of the stored-fact search, off the event loop.

        The whole sync :meth:`QKBflyService.search_facts` (admission
        included) runs on a dispatch-pool thread: a page read is a
        blocking SQLite (or fabric socket) round trip, which must never
        stall loop-side cache hits. Same taxonomy as the sync method
        (:class:`~repro.service.api.SearchUnavailable` → 503, bad
        sort/cursor → 400).
        """
        loop = self._check_loop()
        return await loop.run_in_executor(
            self._dispatch_pool, self.service.search_facts, request
        )

    async def search_entities(
        self, request: FactSearchRequest
    ) -> FactSearchResult:
        """One page of the stored-entity search, off the event loop."""
        loop = self._check_loop()
        return await loop.run_in_executor(
            self._dispatch_pool, self.service.search_entities, request
        )

    # ---- live ingest / subscriptions ---------------------------------------

    async def ingest(self, request: IngestRequest) -> IngestResult:
        """One live-corpus ingest (``POST /v1/ingest``), off the loop.

        The whole sync :meth:`QKBflyService.ingest` (admission, NLP +
        extraction, engine swap, selective invalidation, subscriber
        notification) runs on a dispatch-pool thread — an ingest is
        seconds of CPU-bound stage work plus store writes, which must
        never stall loop-side cache hits.
        """
        loop = self._check_loop()
        return await loop.run_in_executor(
            self._dispatch_pool, self.service.ingest, request
        )

    async def watch(self, request: WatchRequest) -> Dict[str, Any]:
        """Register a subscription (``POST /v1/watch``), off the loop
        (registration is cheap but takes the registry lock, which
        long-poll serving also holds)."""
        loop = self._check_loop()
        return await loop.run_in_executor(
            self._dispatch_pool, self.service.watch, request
        )

    async def poll_deltas(
        self,
        subscription_id: str,
        after: int = 0,
        timeout: float = 0.0,
    ) -> Dict[str, Any]:
        """Long-poll a subscription's KB deltas (``GET /v1/deltas``),
        off the loop: the poll may block up to its capped timeout on
        the registry condition, so it occupies a dispatch thread, not
        the event loop."""
        loop = self._check_loop()
        return await loop.run_in_executor(
            self._dispatch_pool,
            lambda: self.service.poll_deltas(
                subscription_id, after=after, timeout=timeout
            ),
        )

    # ---- legacy entry points (deprecated shims) ----------------------------

    async def answer(
        self,
        query: str,
        source: Optional[str] = None,
        num_documents: Optional[int] = None,
    ) -> QueryResult:
        """Pre-v1 entry point; deprecated in favor of :meth:`serve`.

        A thin shim preserving the pre-v1 exception contract: pipeline
        exceptions propagate raw, not wrapped in
        :class:`~repro.service.api.PipelineFailure`.
        """
        warn_deprecated(
            "AsyncQKBflyService.answer()", "AsyncQKBflyService.serve()"
        )
        request = QueryRequest(
            query=query, source=source, num_documents=num_documents
        )
        try:
            return await self.serve(request)
        except PipelineFailure as failure:
            reraise_original(failure)

    async def answer_batch(
        self,
        queries: Sequence[str],
        source: Optional[str] = None,
        num_documents: Optional[int] = None,
    ) -> List[QueryResult]:
        """Pre-v1 batch entry point; deprecated: :meth:`serve_batch`.

        A thin shim over the envelope path, preserving the pre-v1
        contract: the first failed slot raises its original exception
        instead of returning an error envelope.
        """
        warn_deprecated(
            "AsyncQKBflyService.answer_batch()",
            "AsyncQKBflyService.serve_batch()",
        )
        requests = [
            QueryRequest(
                query=query, source=source, num_documents=num_documents
            )
            for query in queries
        ]
        results = await self.serve_batch(requests)
        for result in results:
            if result.error is not None:
                reraise_original(result.error)
        return results

    # ---- internals ---------------------------------------------------------

    def _check_loop(self) -> asyncio.AbstractEventLoop:
        """Pin the instance to the first loop that uses it."""
        if self._closed:
            raise RuntimeError("AsyncQKBflyService is closed")
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif loop is not self._loop:
            raise RuntimeError(
                "AsyncQKBflyService is bound to another event loop; "
                "create one instance per loop"
            )
        return loop

    def _try_store_on_loop(
        self, request: QueryRequest, key: CacheKey, started: float
    ) -> Optional[QueryResult]:
        """Non-blocking store lookup; None when busy, missing, or off.

        A hit fills the cache (mirroring the sync miss path) so the
        next repeat is a cache hit; a busy lock counts as a
        fall-through and leaves the lookup to the off-loop slow path.
        """
        store = self.service.store
        if store is None:
            return None
        tier_started = time.perf_counter()
        attempted, kb = store.try_load(
            key.query,
            corpus_version=key.corpus_version,
            mode=key.mode,
            algorithm=key.algorithm,
            source=key.source,
            num_documents=key.num_documents,
            config_digest=key.config_digest,
        )
        if not attempted:
            self.store_busy_fallthroughs += 1
            return None
        if kb is None:
            return None
        self.loop_store_hits += 1
        return self.service.store_hit_result(
            request,
            key,
            kb,
            started,
            store_seconds=time.perf_counter() - tier_started,
        )

    def _sync_dispatch_pool(self) -> None:
        """Follow the sync service's autoscaled pool width.

        Called on the loop just before a new flight is dispatched, so
        the bridge resizes at most once per cold query and only from
        loop callbacks (no lock needed). A pinned pool (explicit
        ``dispatch_workers``) never moves. The old pool is shut down
        without waiting: its queued flights finish on its existing
        threads, while new flights land on the new pool.
        """
        if self._dispatch_pinned:
            return
        target = self.service.pool_workers
        if target <= 0 or target == self._dispatch_workers:
            return
        old = self._dispatch_pool
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=target, thread_name_prefix="qkbfly-async"
        )
        self._dispatch_workers = target
        self.dispatch_resizes += 1
        old.shutdown(wait=False)

    async def _dispatch(
        self, request: QueryRequest, key: CacheKey
    ) -> QueryResult:
        """Run the blocking miss path off the loop; owns one flight."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._dispatch_pool, self._blocking_serve, request, key
        )

    def _blocking_serve(
        self, request: QueryRequest, key: CacheKey
    ) -> QueryResult:
        """Dispatch-pool thread: through the sync executor stack.

        Submitting to the service's own :class:`BatchExecutor` (rather
        than calling the pipeline directly) preserves single-flight
        dedup *across front ends*: a sync caller and an async caller
        racing on one cold key still share one pipeline run. The miss
        was counted by the loop-side cache lookup, hence the
        pre-counted flag. Requests are recorded by their consumers on
        the loop; this thread only *applies* any autoscale decision
        those observations produced, because it is already off the
        loop and may build a process pool without stalling hits.
        """
        fault_point("async_service.dispatch")
        result = self.service._executor.submit(
            key, (request, key, True)
        ).result()
        self.service.autoscale_tick()
        return result

    def _make_reaper(self, key: CacheKey, task: "asyncio.Task") -> Any:
        """Done-callback that unpublishes a finished flight.

        Also retrieves a failed task's exception: every live consumer
        re-raises it from ``await shield(task)``, so the only
        unretrieved case is "all consumers cancelled", where the
        interpreter's never-retrieved warning would be noise in a
        long-running server.
        """

        def _reap(done: "asyncio.Task") -> None:
            if self._in_flight.get(key) is task:
                del self._in_flight[key]
            if not done.cancelled():
                done.exception()

        return _reap

    # ---- lifecycle / monitoring --------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Sync-service counters plus this front end's loop-side view."""
        out = self.service.stats()
        out["async"] = self.front_end_stats()
        return out

    def front_end_stats(self) -> Dict[str, Any]:
        """Just this front end's loop-confined counters.

        Split out so the gateway can snapshot them *on the loop* while
        the blocking sync-tier stats run on a worker thread — the
        counters are only ever touched from loop callbacks.
        """
        return {
            "answered": self.answered,
            "loop_cache_hits": self.loop_cache_hits,
            "loop_store_hits": self.loop_store_hits,
            "store_busy_fallthroughs": self.store_busy_fallthroughs,
            "deduplicated": self.deduplicated,
            "dispatched": self.dispatched,
            "dispatch_workers": self._dispatch_workers,
            "dispatch_resizes": self.dispatch_resizes,
            "in_flight": len(self._in_flight),
        }

    async def aclose(self) -> None:
        """Drain in-flight work and shut the front end down.

        Pending flights are awaited (their consumers still get
        results), then the dispatch pool — and, when owned, the sync
        service with all its pools and store handles — is shut down off
        the loop.
        """
        if self._closed:
            return
        self._closed = True
        pending = list(self._in_flight.values())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_blocking)

    def _shutdown_blocking(self) -> None:
        self._dispatch_pool.shutdown(wait=True)
        if self._own_service:
            self.service.close()

    async def __aenter__(self) -> "AsyncQKBflyService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


__all__ = ["AsyncQKBflyService"]
