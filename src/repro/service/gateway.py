"""HTTP front end for the v1 serving API — stdlib asyncio only.

The serving layer's network protocol is deliberately boring: HTTP/1.1
over :func:`asyncio.start_server`, JSON envelopes from
:mod:`repro.service.api` on the wire, no third-party dependencies. The
gateway is a *thin transport*: every decision that matters (admission
control, caching, single-flight, the error taxonomy) lives in the
shared :class:`~repro.service.async_service.AsyncQKBflyService` it
fronts, so HTTP clients, sync callers, and asyncio callers all receive
identical semantics — one deployment, three entry points, one contract.

Routes (see ``docs/API.md`` for the wire format and curl examples):

- ``POST /v1/query`` — a :class:`~repro.service.api.QueryRequest` JSON
  body in, a :class:`~repro.service.api.QueryResult` envelope out.
  Admission rejections map to HTTP 429 (rate limited) and 503
  (overloaded), both with a ``Retry-After`` header; pipeline failures
  to 500; per-request timeouts to 504; malformed envelopes to 400.
- ``GET /v1/facts`` / ``GET /v1/entities`` — keyset-paginated read
  APIs over the store's fact-search index (``docs/SEARCH.md``).
  Filters, sort order, page size and cursor arrive as URL query
  parameters (parsed by one shared, strict parser: unknown or
  malformed parameters are 400, ``limit`` is clamped to the API
  ceiling); pages come back as
  :class:`~repro.service.api.FactSearchResult` envelopes with
  ``next_cursor`` / ``has_more``. A deployment without a store or
  without FTS5 answers 503 (``search_unavailable``).
- ``POST /v1/ingest`` — one live-corpus document
  (:class:`~repro.service.api.IngestRequest` JSON body) in, the
  :class:`~repro.service.api.IngestResult` acknowledgment out:
  touched entities, new per-entity versions, and per-tier invalidation
  counts (``docs/INGEST.md``). Same taxonomy mapping as the query
  route.
- ``POST /v1/watch`` — register a ``watch(entities)`` subscription
  (:class:`~repro.service.api.WatchRequest`); returns the
  ``subscription_id`` plus the registration's wire form.
- ``GET /v1/deltas?subscription=S&after=N&timeout=T`` — long-poll a
  subscription's pending KB deltas; ``after`` is the cursor
  acknowledgment, ``timeout`` the capped poll wait (strictly parsed:
  unknown or malformed parameters are 400).
- ``GET /v1/healthz`` — liveness plus the served corpus version.
- ``GET /v1/stats`` — the merged serving counters
  (:meth:`AsyncQKBflyService.stats`: cache, store, executor tiers,
  autoscaler, admission) plus this gateway's own request/status
  counters.

Connections are keep-alive by default (HTTP/1.1 semantics); request
bodies are capped, idle connections are reaped, and every response is
``Content-Length``-framed — small-server hygiene, not a full HTTP
implementation.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl

from repro.service.api import (
    API_VERSION,
    FactSearchRequest,
    IngestRequest,
    IngestResult,
    QueryRequest,
    QueryResult,
    ServiceError,
    WatchRequest,
    invalid_request,
)
from repro.service.async_service import AsyncQKBflyService
from repro.service.search.query import MAX_SEARCH_LIMIT

#: Hard cap on request bodies: a query envelope is small; anything
#: bigger is a client error (or abuse), answered with 413.
DEFAULT_MAX_BODY_BYTES = 1_000_000
#: Connections idle longer than this between requests are closed.
#: Also bounds each header-line read, so a client trickling bytes
#: forever cannot hold a connection open indefinitely.
DEFAULT_IDLE_TIMEOUT = 60.0
#: Hard cap on header lines per request; more is a client error (or a
#: memory-growth attack), answered with 400.
MAX_HEADER_LINES = 100
#: Seconds aclose() waits for in-flight handlers before cancelling
#: them — long enough for any real response, short enough that an idle
#: keep-alive connection never stalls shutdown.
SHUTDOWN_GRACE_SECONDS = 5.0

class _LineTooLong(Exception):
    """A request/header line exceeded the StreamReader limit (surfaced
    by readline as a bare ValueError; re-typed so the connection loop
    can drop exactly this case without masking handler bugs)."""


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpGateway:
    """The v1 HTTP server over an :class:`AsyncQKBflyService`.

    Args:
        service: The asyncio front end to serve. All tiers, counters,
            and admission budgets are shared with every other entry
            point of that deployment.
        host: Bind address (loopback by default; put a real proxy in
            front for anything else).
        port: TCP port; 0 picks a free ephemeral port (the bound port
            is available as :attr:`port` after :meth:`start`).
        own_service: Whether :meth:`aclose` also closes ``service``.
        max_body_bytes: Request-body cap (413 past it).
        idle_timeout: Seconds a keep-alive connection may sit idle
            between requests before the gateway closes it.
    """

    #: Bind address; rewritten to the actually bound address by
    #: :meth:`start`.
    host: str
    #: Bound TCP port (meaningful after :meth:`start` when constructed
    #: with ``port=0``).
    port: int

    def __init__(
        self,
        service: AsyncQKBflyService,
        host: str = "127.0.0.1",
        port: int = 0,
        own_service: bool = False,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
    ) -> None:
        self._service = service
        self._own_service = own_service
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._handler_tasks: set = set()
        # Loop-confined counters (handlers run on the loop, unlocked).
        self.connections = 0
        self.requests = 0
        self.responses_by_status: Dict[int, int] = {}
        # Connections reaped without a response, by cause — the drops
        # the handler deliberately swallows must still be visible in
        # /v1/stats (harness runs assert nothing vanished silently).
        self.connections_dropped: Dict[str, int] = {}

    # ---- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually bound."""
        if self._server is not None:
            raise RuntimeError("HttpGateway is already started")
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    @property
    def url(self) -> str:
        """Base URL of the running gateway (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("HttpGateway is not started")
        return f"http://{self.host}:{self.port}"

    async def aclose(self) -> None:
        """Stop accepting, drain handlers, close the service if owned.

        Handlers get :data:`SHUTDOWN_GRACE_SECONDS` to finish the
        response they are writing, then are cancelled — so an idle
        keep-alive connection (blocked in a read for up to
        ``idle_timeout``) or a wedged client can never stall shutdown,
        and the owned service is only closed once no handler is still
        serving. ``Server.wait_closed`` runs *after* the drain: on
        3.12+ it waits for handlers itself, which by then are done.
        """
        if self._server is not None:
            self._server.close()
        pending = [t for t in self._handler_tasks if not t.done()]
        if pending:
            _, still_pending = await asyncio.wait(
                pending, timeout=SHUTDOWN_GRACE_SECONDS
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self._own_service:
            await self._service.aclose()

    async def __aenter__(self) -> "HttpGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ---- connection handling -----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: serve requests until close/idle/error."""
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        try:
            while True:
                request_line = await self._read_line(reader)
                if not request_line:
                    break  # client closed between requests
                keep_alive = await self._handle_request(
                    request_line, reader, writer
                )
                if not keep_alive:
                    break
        except asyncio.TimeoutError:
            # Idle (or byte-trickling) connection: reap it.
            self._count_drop("idle_timeout")
        except _LineTooLong:
            # Over-long request/header line (re-typed by _read_line so
            # a ValueError from a handler bug is never masked).
            self._count_drop("line_too_long")
        except (ConnectionError, asyncio.IncompleteReadError):
            # Client went away mid-request; nothing to answer.
            self._count_drop("client_disconnect")
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _count_drop(self, cause: str) -> None:
        """Count one connection reaped without a response (loop-confined,
        like the other counters)."""
        self.connections_dropped[cause] = (
            self.connections_dropped.get(cause, 0) + 1
        )

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        try:
            if self.idle_timeout is None:
                return await reader.readline()
            return await asyncio.wait_for(
                reader.readline(), self.idle_timeout
            )
        except ValueError as error:  # line exceeded the reader limit
            raise _LineTooLong(str(error)) from error

    async def _read_body(
        self, reader: asyncio.StreamReader, length: int
    ) -> bytes:
        """Body read under the same timeout as the header lines: a
        client announcing a Content-Length and then stalling must not
        hold the connection (and its handler task) open forever."""
        if self.idle_timeout is None:
            return await reader.readexactly(length)
        return await asyncio.wait_for(
            reader.readexactly(length), self.idle_timeout
        )

    async def _handle_request(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Parse + route one request; returns whether to keep the
        connection open."""
        self.requests += 1
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._respond(
                writer, 400, _error_payload("bad_request", "malformed request line")
            )
            return False
        method, target, http_version = parts
        headers: Dict[str, str] = {}
        header_lines = 0
        while True:
            # Same timeout as between requests: a trickling client
            # must not hold the connection open one header at a time.
            line = await self._read_line(reader)
            if line in (b"\r\n", b"\n", b""):
                break
            # Count *lines read*, not distinct names — repeating one
            # header name must not slip under the cap.
            header_lines += 1
            if header_lines > MAX_HEADER_LINES:
                await self._respond(
                    writer,
                    400,
                    _error_payload("bad_request", "too many headers"),
                )
                return False
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            # Chunked bodies are not supported; reading on as if the
            # body were empty would desynchronize the keep-alive
            # stream (chunk data parsed as the next request line).
            await self._respond(
                writer,
                411,
                _error_payload(
                    "length_required",
                    "Transfer-Encoding is not supported; send a "
                    "Content-Length-framed body",
                    http_status=411,
                ),
            )
            return False
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            content_length = -1
        if content_length < 0:
            await self._respond(
                writer, 400, _error_payload("bad_request", "bad Content-Length")
            )
            return False
        if content_length > self.max_body_bytes:
            await self._respond(
                writer,
                413,
                _error_payload(
                    "payload_too_large",
                    f"request body exceeds {self.max_body_bytes} bytes",
                    http_status=413,
                ),
            )
            return False
        body = (
            await self._read_body(reader, content_length)
            if content_length
            else b""
        )
        # HTTP/1.1 defaults to keep-alive; HTTP/1.0 and an explicit
        # "Connection: close" don't.
        wants_close = headers.get("connection", "").lower() == "close"
        keep_alive = http_version.upper() != "HTTP/1.0" and not wants_close

        path, _, query_string = target.partition("?")
        status, payload, extra_headers = await self._route(
            method, path, query_string, headers, body
        )
        await self._respond(
            writer, status, payload, extra_headers, keep_alive=keep_alive
        )
        return keep_alive

    # ---- routing -----------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query_string: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Dispatch one parsed request; returns (status, payload,
        headers) — payload is a dict, or pre-encoded bytes for query
        envelopes."""
        if path in ("/v1/facts", "/v1/entities"):
            if method != "GET":
                return (
                    405,
                    _error_payload(
                        "method_not_allowed", "use GET", http_status=405
                    ),
                    {"Allow": "GET"},
                )
            kind = "facts" if path == "/v1/facts" else "entities"
            return await self._handle_search(kind, query_string, headers)
        if path == "/v1/query":
            if method != "POST":
                return (
                    405,
                    _error_payload(
                        "method_not_allowed", "use POST", http_status=405
                    ),
                    {"Allow": "POST"},
                )
            return await self._handle_query(headers, body)
        if path == "/v1/ingest":
            if method != "POST":
                return (
                    405,
                    _error_payload(
                        "method_not_allowed", "use POST", http_status=405
                    ),
                    {"Allow": "POST"},
                )
            return await self._handle_ingest(headers, body)
        if path == "/v1/watch":
            if method != "POST":
                return (
                    405,
                    _error_payload(
                        "method_not_allowed", "use POST", http_status=405
                    ),
                    {"Allow": "POST"},
                )
            return await self._handle_watch(headers, body)
        if path == "/v1/deltas":
            if method != "GET":
                return (
                    405,
                    _error_payload(
                        "method_not_allowed", "use GET", http_status=405
                    ),
                    {"Allow": "GET"},
                )
            return await self._handle_deltas(query_string)
        if path == "/v1/healthz":
            if method != "GET":
                return (
                    405,
                    _error_payload(
                        "method_not_allowed", "use GET", http_status=405
                    ),
                    {"Allow": "GET"},
                )
            return (
                200,
                {
                    "status": "ok",
                    "api_version": API_VERSION,
                    "corpus_version": self._service.corpus_version,
                },
                {},
            )
        if path == "/v1/stats":
            if method != "GET":
                return (
                    405,
                    _error_payload(
                        "method_not_allowed", "use GET", http_status=405
                    ),
                    {"Allow": "GET"},
                )
            # The sync tiers' stats read SQLite row counts under the
            # store lock — blocking work, run off the loop exactly
            # like the miss path (a writer mid-save must not stall hit
            # traffic). The front end's loop-confined counters are
            # snapshotted here on the loop, preserving its lock-free
            # contract.
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(
                None, self._service.service.stats
            )
            stats["async"] = self._service.front_end_stats()
            stats["gateway"] = self.stats()
            return 200, stats, {}
        return (
            404,
            _error_payload(
                "not_found", f"no route for {path!r}", http_status=404
            ),
            {},
        )

    async def _handle_query(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any, Dict[str, str]]:
        """POST /v1/query: envelope in, envelope out, taxonomy mapped."""
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            return (
                400,
                _error_payload("invalid_json", "body is not valid JSON"),
                {},
            )
        # Clients that cannot shape the body (plain curl scripts) may
        # pass their identity as a header instead.
        if (
            isinstance(data, dict)
            and not data.get("client_id")
            and headers.get("x-client-id")
        ):
            data = dict(data)
            data["client_id"] = headers["x-client-id"]
        try:
            request = QueryRequest.from_dict(data)
        except ServiceError as error:
            return error.http_status, _error_payload_from(error), {}
        serve_started = time.perf_counter()
        try:
            result = await self._service.serve(request)
        except ServiceError as error:
            failure = QueryResult.failure(
                request,
                error,
                corpus_version=self._service.corpus_version,
                seconds=time.perf_counter() - serve_started,
            )
            return error.http_status, failure.to_dict(), _retry_headers(error)
        except Exception as error:  # defense in depth: never half-close
            return (
                500,
                _error_payload(
                    "internal", f"unexpected error: {error}", http_status=500
                ),
                {},
            )
        # Envelope serialization is O(KB size) CPU work — off the loop,
        # like every other per-byte cost, so a large KB response never
        # taxes concurrent cache-hit latency.
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(None, _encode_payload, result)
        return 200, body, {}

    async def _handle_ingest(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any, Dict[str, str]]:
        """POST /v1/ingest: document envelope in, acknowledgment out."""
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            return (
                400,
                _error_payload("invalid_json", "body is not valid JSON"),
                {},
            )
        # Same identity fallback as POST /v1/query.
        if (
            isinstance(data, dict)
            and not data.get("client_id")
            and headers.get("x-client-id")
        ):
            data = dict(data)
            data["client_id"] = headers["x-client-id"]
        try:
            request = IngestRequest.from_dict(data)
        except ServiceError as error:
            return error.http_status, _error_payload_from(error), {}
        serve_started = time.perf_counter()
        try:
            result = await self._service.ingest(request)
        except ServiceError as error:
            failure = IngestResult.failure(
                request,
                error,
                seconds=time.perf_counter() - serve_started,
            )
            return error.http_status, failure.to_dict(), _retry_headers(error)
        except Exception as error:  # defense in depth: never half-close
            return (
                500,
                _error_payload(
                    "internal", f"unexpected error: {error}", http_status=500
                ),
                {},
            )
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(None, _encode_payload, result)
        return 200, body, {}

    async def _handle_watch(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any, Dict[str, str]]:
        """POST /v1/watch: subscription registration in, id out."""
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            return (
                400,
                _error_payload("invalid_json", "body is not valid JSON"),
                {},
            )
        if (
            isinstance(data, dict)
            and not data.get("client_id")
            and headers.get("x-client-id")
        ):
            data = dict(data)
            data["client_id"] = headers["x-client-id"]
        try:
            request = WatchRequest.from_dict(data)
        except ServiceError as error:
            return error.http_status, _error_payload_from(error), {}
        try:
            subscription = await self._service.watch(request)
        except ServiceError as error:
            return error.http_status, _error_payload_from(error), {}
        except Exception as error:  # defense in depth: never half-close
            return (
                500,
                _error_payload(
                    "internal", f"unexpected error: {error}", http_status=500
                ),
                {},
            )
        payload = dict(subscription)
        payload["api_version"] = API_VERSION
        payload["status"] = "ok"
        return 200, payload, {}

    async def _handle_deltas(
        self, query_string: str
    ) -> Tuple[int, Any, Dict[str, str]]:
        """GET /v1/deltas: long-poll one subscription's pending deltas."""
        try:
            params = parse_deltas_query(query_string)
        except ServiceError as error:
            return error.http_status, _error_payload_from(error), {}
        try:
            page = await self._service.poll_deltas(
                params["subscription"],
                after=params["after"],
                timeout=params["timeout"],
            )
        except ServiceError as error:
            return error.http_status, _error_payload_from(error), {}
        except Exception as error:  # defense in depth: never half-close
            return (
                500,
                _error_payload(
                    "internal", f"unexpected error: {error}", http_status=500
                ),
                {},
            )
        payload = dict(page)
        payload["api_version"] = API_VERSION
        payload["status"] = "ok"
        return 200, payload, {}

    async def _handle_search(
        self, kind: str, query_string: str, headers: Dict[str, str]
    ) -> Tuple[int, Any, Dict[str, str]]:
        """GET /v1/facts | /v1/entities: query string in, page out."""
        try:
            params = parse_search_query(query_string)
            if not params.get("client_id") and headers.get("x-client-id"):
                # Same identity fallback as POST /v1/query.
                params["client_id"] = headers["x-client-id"]
            request = FactSearchRequest.from_dict(params)
        except ServiceError as error:
            return error.http_status, _error_payload_from(error), {}
        try:
            if kind == "facts":
                result = await self._service.search_facts(request)
            else:
                result = await self._service.search_entities(request)
        except ServiceError as error:
            return (
                error.http_status,
                _error_payload_from(error),
                _retry_headers(error),
            )
        except Exception as error:  # defense in depth: never half-close
            return (
                500,
                _error_payload(
                    "internal", f"unexpected error: {error}", http_status=500
                ),
                {},
            )
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(None, _encode_payload, result)
        return 200, body, {}

    # ---- response writing --------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = False,
    ) -> None:
        """Write one framed JSON response; ``payload`` is a dict (small
        control responses, encoded inline) or pre-encoded bytes (query
        envelopes, serialized off the loop)."""
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        body = (
            payload
            if isinstance(payload, bytes)
            else json.dumps(payload, default=str).encode("utf-8")
        )
        reason = _REASONS.get(status, "Unknown")
        head_lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            head_lines.append(f"{name}: {value}")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        # The write side gets the same bound as the reads: a client
        # that stops reading must not pin this handler (and the
        # encoded body) forever once the socket buffers fill.
        if self.idle_timeout is None:
            await writer.drain()
        else:
            await asyncio.wait_for(writer.drain(), self.idle_timeout)

    # ---- monitoring --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """This gateway's transport-level counters."""
        return {
            "connections": self.connections,
            "requests": self.requests,
            "responses_by_status": {
                str(status): count
                for status, count in sorted(self.responses_by_status.items())
            },
            "connections_dropped": dict(
                sorted(self.connections_dropped.items())
            ),
        }


def _encode_payload(result: Any) -> bytes:
    """Full envelope (query or search) to wire bytes (worker thread)."""
    return json.dumps(result.to_dict(), default=str).encode("utf-8")


#: Query parameters the search endpoints accept verbatim as strings.
_SEARCH_STRING_PARAMS = frozenset(
    ("q", "entity", "pattern", "corpus_version", "sort", "cursor",
     "client_id")
)
#: Query parameters parsed as floats (epoch-seconds date bounds).
_SEARCH_FLOAT_PARAMS = frozenset(("created_after", "created_before"))


def parse_search_query(query_string: str) -> Dict[str, Any]:
    """The shared, strict query-string parser for the search endpoints.

    Percent-decodes ``application/x-www-form-urlencoded`` pairs and
    returns a :meth:`~repro.service.api.FactSearchRequest.from_dict`-
    ready dict. Strictness is the point — one parser, one contract:

    - an *unknown* parameter name is a 400 (``invalid_request``), not
      silently ignored — a typo like ``?pattrn=`` must not return the
      unfiltered result set as if it had matched;
    - a malformed number for ``created_after`` / ``created_before`` /
      ``limit`` is a 400 naming the parameter;
    - ``limit`` is clamped to the API ceiling
      (:data:`~repro.service.search.query.MAX_SEARCH_LIMIT`) rather
      than rejected — asking for too much is a preference, not an
      error — while a non-positive limit is a 400;
    - blank values (``?q=``) are treated as absent.

    Raises :class:`~repro.service.api.ServiceError` (400) on any
    violation; the caller maps it onto the wire like every other
    taxonomy error.
    """
    out: Dict[str, Any] = {}
    for name, value in parse_qsl(query_string, keep_blank_values=True):
        if not value:
            continue
        if name in _SEARCH_STRING_PARAMS:
            out[name] = value
        elif name in _SEARCH_FLOAT_PARAMS:
            try:
                out[name] = float(value)
            except ValueError:
                raise invalid_request(
                    f"query parameter {name!r} must be a number, "
                    f"got {value!r}"
                )
        elif name == "limit":
            try:
                limit = int(value)
            except ValueError:
                raise invalid_request(
                    f"query parameter 'limit' must be an integer, "
                    f"got {value!r}"
                )
            if limit < 1:
                raise invalid_request(
                    f"query parameter 'limit' must be positive, "
                    f"got {limit}"
                )
            out["limit"] = min(limit, MAX_SEARCH_LIMIT)
        else:
            raise invalid_request(f"unknown query parameter {name!r}")
    return out


def parse_deltas_query(query_string: str) -> Dict[str, Any]:
    """The strict query-string parser for ``GET /v1/deltas``.

    Accepts exactly ``subscription`` (required), ``after`` (the cursor
    acknowledgment, a non-negative integer, default 0), and ``timeout``
    (the long-poll wait in seconds, a non-negative number, default 0 —
    the registry caps it server-side). Unknown or malformed parameters
    raise ``invalid_request`` (400), same contract as the search
    parser above.
    """
    out: Dict[str, Any] = {"after": 0, "timeout": 0.0}
    for name, value in parse_qsl(query_string, keep_blank_values=True):
        if not value:
            continue
        if name == "subscription":
            out["subscription"] = value
        elif name == "after":
            try:
                after = int(value)
            except ValueError:
                raise invalid_request(
                    f"query parameter 'after' must be an integer, "
                    f"got {value!r}"
                )
            if after < 0:
                raise invalid_request(
                    f"query parameter 'after' must be >= 0, got {after}"
                )
            out["after"] = after
        elif name == "timeout":
            try:
                timeout = float(value)
            except ValueError:
                raise invalid_request(
                    f"query parameter 'timeout' must be a number, "
                    f"got {value!r}"
                )
            if timeout < 0:
                raise invalid_request(
                    f"query parameter 'timeout' must be >= 0, got {timeout}"
                )
            out["timeout"] = timeout
        else:
            raise invalid_request(f"unknown query parameter {name!r}")
    if "subscription" not in out:
        raise invalid_request(
            "query parameter 'subscription' is required"
        )
    return out


def _error_payload(
    code: str, message: str, http_status: int = 400
) -> Dict[str, Any]:
    """A bare v1 error body for failures outside the query envelope —
    built through the taxonomy itself, so the wire shape has exactly
    one source (api.py)."""
    return _error_payload_from(
        ServiceError(message, code=code, http_status=http_status)
    )


def _error_payload_from(error: ServiceError) -> Dict[str, Any]:
    return {
        "api_version": API_VERSION,
        "status": error.status.value,
        "error": error.to_dict(),
    }


def _retry_headers(error: ServiceError) -> Dict[str, str]:
    """The Retry-After header for admission rejections (whole seconds,
    rounded up — HTTP wants an integer and retrying early just earns
    another rejection)."""
    if error.retry_after is None:
        return {}
    return {"Retry-After": str(max(1, math.ceil(error.retry_after)))}


__all__ = [
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_BODY_BYTES",
    "HttpGateway",
    "MAX_HEADER_LINES",
    "parse_deltas_query",
    "parse_search_query",
]
