"""Live-corpus ingest: entity-granular freshness for the serving tier.

- :mod:`repro.service.ingest.match` — the shared query↔entity
  intersection rule every invalidation tier applies;
- :mod:`repro.service.ingest.versions` — the per-entity version
  vector that replaces global corpus-fingerprint rotation;
- :mod:`repro.service.ingest.pipeline` — :class:`IngestPipeline`, the
  process → commit → invalidate → acknowledge → notify transaction;
- :mod:`repro.service.ingest.subscriptions` — ``watch(entity)``
  registrations served as KB-delta push (long-poll + webhook).

Only the dependency-free leaves are imported eagerly here: the KB
store pulls :func:`query_touches` from this package while
``repro.service`` itself is still initializing, so importing the
pipeline or subscription modules (which depend on the wider service
stack) at package-import time would create a cycle. Import those from
their submodules.
"""

from repro.service.ingest.match import (
    normalize_entity,
    query_touches,
    touched_entities,
    touches_any,
)
from repro.service.ingest.versions import EntityVersionVector, versions_token

__all__ = [
    "EntityVersionVector",
    "normalize_entity",
    "query_touches",
    "touched_entities",
    "touches_any",
    "versions_token",
]
