"""KB-delta subscriptions: ``watch(entity)`` served as push.

A subscriber registers interest in a set of entities and receives a
:class:`KbDelta` every time an ingest touches one of them. Delivery
follows the candidates → selection → state → delivery shape: every
live subscription is a *candidate* for a committed ingest; *selection*
keeps the ones whose watched set intersects the touched entities; the
delta is recorded in the subscription's durable *state* (an ordered
pending queue with a cursor); and *delivery* pushes it out over one of
two transports:

- **long-poll** — ``GET /v1/deltas?subscription=S&after=N`` blocks
  until a delta with id > N exists (or the timeout lapses). ``after=N``
  is a cursor acknowledgment: every delta with id ≤ N is dropped from
  the pending queue before waiting. A delta handed to a poller that
  crashes before advancing its cursor stays pending and is served
  again — at-least-once until acked, never again after.
- **webhook** — the registry POSTs the delta JSON to the registered
  callback URL; a 2xx response is the acknowledgment. Non-2xx or a
  connection error leaves the delta pending for the next delivery
  pass. The ack is recorded in the same lock region as the response
  check, so a crash injected at the ``subscribe.deliver`` fault point
  (which sits *before* the POST) can force redelivery of an unacked
  delta but can never double-deliver an acked one.

Deliveries are synchronous and explicit — :meth:`SubscriptionRegistry.
deliver_webhooks` runs on the caller's thread (the ingest path calls
it after acknowledging the ingest; tests and the gateway may call it
again to retry failures). No background thread means fault schedules
replay deterministically.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.faultinject.points import fault_point
from repro.service.ingest.match import normalize_entity

#: The delivery lifecycle of a delta, in order.
DELIVERY_STATES = ("candidates", "selection", "state", "delivery")

#: Default timeout for one webhook POST attempt, seconds.
WEBHOOK_TIMEOUT_SECONDS = 2.0

#: Hard cap on a single long-poll wait, seconds. The gateway serves
#: polls off-loop on the async dispatch pool, so one poll must never
#: outlive the connection idle timeout (60s) or pin a pool thread
#: through shutdown grace (5s) for long.
MAX_POLL_SECONDS = 10.0


@dataclass
class KbDelta:
    """One entity-granular KB change, scoped to a subscription.

    ``delta_id`` is the subscription-local cursor position (1-based,
    dense). ``entity_versions`` carries the post-ingest versions of
    the touched∩watched entities — the monotonicity the freshness
    checker verifies per subscriber.
    """

    delta_id: int
    doc_id: str
    entities: Tuple[str, ...]
    entity_versions: Dict[str, int]
    corpus_version: str
    state: str = "state"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "delta_id": self.delta_id,
            "doc_id": self.doc_id,
            "entities": list(self.entities),
            "entity_versions": dict(self.entity_versions),
            "corpus_version": self.corpus_version,
            "state": self.state,
        }


@dataclass
class Subscription:
    """One ``watch(entities)`` registration and its delivery state."""

    subscription_id: str
    client_id: str
    entities: FrozenSet[str]
    mode: str
    callback_url: Optional[str] = None
    pending: List[KbDelta] = field(default_factory=list)
    next_delta_id: int = 1
    acked_through: int = 0
    delivered: int = 0
    active: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "subscription_id": self.subscription_id,
            "client_id": self.client_id,
            "entities": sorted(self.entities),
            "mode": self.mode,
            "callback_url": self.callback_url,
            "cursor": self.acked_through,
            "pending": len(self.pending),
        }


class SubscriptionRegistry:
    """All live subscriptions plus the notify/poll/deliver machinery.

    Thread-safe: one registry lock doubles as the long-poll condition.
    The ``history`` attribute (set by the owning service) receives a
    ``record_delivery`` call at each successful delivery so the
    freshness checker can track per-subscriber watermarks.
    """

    def __init__(
        self, webhook_timeout: float = WEBHOOK_TIMEOUT_SECONDS
    ) -> None:
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._subscriptions: Dict[str, Subscription] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self.webhook_timeout = webhook_timeout
        self.history: Optional[Any] = None
        self.state_counts: Dict[str, int] = {
            state: 0 for state in DELIVERY_STATES
        }

    # ------------------------------------------------------------------
    # registration

    def watch(
        self,
        client_id: str,
        entities: Iterable[str],
        mode: str = "longpoll",
        callback_url: Optional[str] = None,
    ) -> Subscription:
        if mode not in ("longpoll", "webhook"):
            raise ValueError(f"unknown subscription mode {mode!r}")
        if mode == "webhook" and not callback_url:
            raise ValueError("webhook subscriptions need a callback_url")
        watched = frozenset(
            normalize_entity(entity) for entity in entities
        ) - {""}
        if not watched:
            raise ValueError("watch needs at least one entity")
        with self._lock:
            if self._closed:
                raise RuntimeError("subscription registry is closed")
            subscription = Subscription(
                subscription_id=f"sub-{next(self._ids)}",
                client_id=client_id,
                entities=watched,
                mode=mode,
                callback_url=callback_url,
            )
            self._subscriptions[subscription.subscription_id] = subscription
        return subscription

    def unwatch(self, subscription_id: str) -> bool:
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
            if subscription is not None:
                subscription.active = False
            self._wakeup.notify_all()
        return subscription is not None

    def get(self, subscription_id: str) -> Optional[Subscription]:
        with self._lock:
            return self._subscriptions.get(subscription_id)

    # ------------------------------------------------------------------
    # notify (candidates → selection → state)

    def notify(
        self,
        doc_id: str,
        touched: Iterable[str],
        entity_versions: Dict[str, int],
        corpus_version: str,
    ) -> int:
        """Fan one committed ingest out to the matching subscriptions.

        Appends a delta to each selected subscription's pending queue
        (the *state* step) and wakes long-pollers; actual *delivery*
        happens in :meth:`poll` / :meth:`deliver_webhooks`. Returns
        the number of subscriptions selected.
        """
        touched_set = {normalize_entity(entity) for entity in touched} - {""}
        if not touched_set:
            return 0
        selected = 0
        with self._lock:
            for subscription in self._subscriptions.values():
                self.state_counts["candidates"] += 1
                overlap = subscription.entities & touched_set
                if not overlap:
                    continue
                self.state_counts["selection"] += 1
                selected += 1
                delta = KbDelta(
                    delta_id=subscription.next_delta_id,
                    doc_id=doc_id,
                    entities=tuple(sorted(overlap)),
                    entity_versions={
                        entity: entity_versions[entity]
                        for entity in overlap
                        if entity in entity_versions
                    },
                    corpus_version=corpus_version,
                )
                subscription.next_delta_id += 1
                subscription.pending.append(delta)
                self.state_counts["state"] += 1
            self._wakeup.notify_all()
        return selected

    # ------------------------------------------------------------------
    # delivery: long-poll

    def poll(
        self,
        subscription_id: str,
        after: int = 0,
        timeout: float = 0.0,
    ) -> Dict[str, Any]:
        """Cursor-acknowledging long-poll.

        Drops every pending delta with id ≤ ``after`` (the ack), then
        returns the remaining pending deltas — waiting up to
        ``timeout`` seconds (capped at :data:`MAX_POLL_SECONDS`) for
        one to arrive if the queue is empty.
        """
        deadline = time.monotonic() + min(max(timeout, 0.0), MAX_POLL_SECONDS)
        with self._lock:
            subscription = self._subscriptions.get(subscription_id)
            if subscription is None:
                raise KeyError(subscription_id)
            if subscription.mode != "longpoll":
                raise ValueError(
                    f"subscription {subscription_id!r} is not long-poll"
                )
            if after > subscription.acked_through:
                subscription.acked_through = after
                subscription.pending = [
                    delta
                    for delta in subscription.pending
                    if delta.delta_id > after
                ]
            while not subscription.pending and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._wakeup.wait(remaining)
            deltas = list(subscription.pending)
            for delta in deltas:
                fault_point(
                    "subscribe.deliver",
                    subscription_id=subscription_id,
                    delta_id=delta.delta_id,
                )
                delta.state = "delivery"
                subscription.delivered += 1
                self.state_counts["delivery"] += 1
                self._record_delivery(subscription, delta)
            return {
                "subscription_id": subscription_id,
                "cursor": subscription.acked_through,
                "deltas": [delta.to_dict() for delta in deltas],
            }

    # ------------------------------------------------------------------
    # delivery: webhook

    def deliver_webhooks(self) -> Dict[str, int]:
        """One synchronous delivery pass over webhook subscriptions.

        Each pending delta is POSTed to its callback URL in cursor
        order; the first failure for a subscription stops that
        subscription's pass (in-order delivery). Returns counters.
        """
        with self._lock:
            targets = [
                subscription
                for subscription in self._subscriptions.values()
                if subscription.mode == "webhook" and subscription.pending
            ]
        attempted = delivered = failed = 0
        for subscription in targets:
            while True:
                with self._lock:
                    if not subscription.active or not subscription.pending:
                        break
                    delta = subscription.pending[0]
                attempted += 1
                fault_point(
                    "subscribe.deliver",
                    subscription_id=subscription.subscription_id,
                    delta_id=delta.delta_id,
                )
                acked = self._post_webhook(subscription, delta)
                if not acked:
                    failed += 1
                    break
                delivered += 1
        return {
            "attempted": attempted,
            "delivered": delivered,
            "failed": failed,
        }

    def _post_webhook(
        self, subscription: Subscription, delta: KbDelta
    ) -> bool:
        """POST one delta; on 2xx, ack it under the registry lock."""
        parsed = urllib.parse.urlsplit(subscription.callback_url or "")
        if parsed.scheme != "http" or not parsed.hostname:
            return False
        body = json.dumps(
            dict(
                delta.to_dict(),
                subscription_id=subscription.subscription_id,
                state="delivery",
            )
        ).encode("utf-8")
        try:
            connection = http.client.HTTPConnection(
                parsed.hostname,
                parsed.port or 80,
                timeout=self.webhook_timeout,
            )
            try:
                connection.request(
                    "POST",
                    parsed.path or "/",
                    body=body,
                    headers={"content-type": "application/json"},
                )
                status = connection.getresponse().status
            finally:
                connection.close()
        except OSError:
            return False
        if not 200 <= status < 300:
            return False
        with self._lock:
            if subscription.pending and subscription.pending[0] is delta:
                subscription.pending.pop(0)
            subscription.acked_through = max(
                subscription.acked_through, delta.delta_id
            )
            delta.state = "delivery"
            subscription.delivered += 1
            self.state_counts["delivery"] += 1
            self._record_delivery(subscription, delta)
        return True

    def _record_delivery(
        self, subscription: Subscription, delta: KbDelta
    ) -> None:
        history = self.history
        if history is None:
            return
        history.record_delivery(
            subscription_id=subscription.subscription_id,
            client_id=subscription.client_id,
            doc_id=delta.doc_id,
            entities=list(delta.entities),
            entity_versions=dict(delta.entity_versions),
            corpus_version=delta.corpus_version,
        )

    # ------------------------------------------------------------------
    # lifecycle / stats

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            pending = sum(
                len(subscription.pending)
                for subscription in self._subscriptions.values()
            )
            return {
                "subscriptions": len(self._subscriptions),
                "pending_deltas": pending,
                "states": dict(self.state_counts),
            }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()


__all__ = [
    "DELIVERY_STATES",
    "KbDelta",
    "MAX_POLL_SECONDS",
    "Subscription",
    "SubscriptionRegistry",
    "WEBHOOK_TIMEOUT_SECONDS",
]
