"""The shared query↔entity intersection rule of the ingest subsystem.

Entity-granular invalidation needs one deterministic answer to "does
this normalized query involve this entity?" — and it needs the *same*
answer in every tier that applies it: the in-memory
:class:`~repro.service.cache.QueryCache`, the local and sharded KB
stores, the remote fabric shard servers (which receive the touched
entity list over the wire and apply the rule to their own rows), the
stage cache's tagged retrieval entries, and the serve-time stamping of
per-entity versions onto result envelopes. A rule that drifted between
tiers would invalidate a cache entry but keep its store row (or vice
versa), which is exactly the torn state the freshness checker exists to
catch.

The rule: an entity *touches* a query when the entity's normalized
token sequence appears as a contiguous subsequence of the query's
normalized tokens, or the query's tokens appear contiguously inside
the entity's ("angela bennett" touches the query "angela bennett
spouse", and the query "bennett" touches the entity "angela bennett").
Token-level containment — not substring matching — so the entity
"Ann" can never touch a query about "Annapolis".

This module is deliberately dependency-free (stdlib only): the KB
store imports it while the ``repro.service`` package is still
initializing, and the fabric shard server must be importable without
the serving facade.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List


def normalize_entity(name: str) -> str:
    """Case-fold and collapse whitespace (the entity twin of
    :func:`repro.service.cache.normalize_query`, duplicated here so
    this module stays import-free — same trick as
    :func:`repro.service.stage_cache.normalized_query_text`)."""
    return " ".join(name.lower().split())


def _contains_run(haystack: List[str], needle: List[str]) -> bool:
    """Whether ``needle`` appears as a contiguous token run."""
    span = len(needle)
    if span == 0 or span > len(haystack):
        return False
    return any(
        haystack[start : start + span] == needle
        for start in range(len(haystack) - span + 1)
    )


def query_touches(query: str, entity: str) -> bool:
    """Whether ``entity`` is involved in ``query`` (both normalized
    internally; passing pre-normalized text is fine and idempotent)."""
    query_tokens = normalize_entity(query).split()
    entity_tokens = normalize_entity(entity).split()
    if not query_tokens or not entity_tokens:
        return False
    return _contains_run(query_tokens, entity_tokens) or _contains_run(
        entity_tokens, query_tokens
    )


def touches_any(query: str, entities: Iterable[str]) -> bool:
    """Whether any of ``entities`` touches ``query``."""
    return any(query_touches(query, entity) for entity in entities)


def touched_entities(
    query: str, entities: Iterable[str]
) -> FrozenSet[str]:
    """The subset of ``entities`` that touches ``query`` (normalized)."""
    return frozenset(
        normalize_entity(entity)
        for entity in entities
        if query_touches(query, entity)
    )


__all__ = [
    "normalize_entity",
    "query_touches",
    "touched_entities",
    "touches_any",
]
