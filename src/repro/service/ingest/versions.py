"""The per-entity version vector behind entity-granular freshness.

The serving tier's original freshness story was a single corpus
fingerprint: any change anywhere rotated it, and every cache key,
store row, and retrieval-stage signature keyed on it went cold at
once. Live ingest replaces that with a version *vector*: one
monotonically increasing integer per normalized entity name, bumped
only for the entities a new document actually touches. The global
``corpus_version`` stays stable across ingests, so everything keyed on
it stays warm; staleness for the touched slice is enforced by explicit
invalidation (see :mod:`repro.service.ingest.pipeline`) plus the
versions token this vector contributes to retrieval-stage signatures.

The vector is process-local serving state, not session content: it is
installed on the :class:`~repro.core.qkbfly.SessionState` as
``session.entity_versions`` for the retrieval stage to consult, but it
is excluded from session pickling (worker processes see ``None`` and
fall back to an empty token — their stage caches are per-process and
rebuilt on pool swaps anyway).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping

from repro.service.ingest.match import normalize_entity, query_touches


def versions_token(versions: Mapping[str, int]) -> str:
    """Serialize an entity→version mapping deterministically.

    Used both as the stage-signature part (so retrieval entries become
    content-addressed on the versions they were built under) and as the
    freshness-checker digest-key extension. The empty mapping yields
    ``""`` — which is exactly what a pre-ingest signature contained, so
    warm entries built before the first ingest stay addressable.
    """
    if not versions:
        return ""
    return "|".join(
        "{0}={1}".format(entity, versions[entity])
        for entity in sorted(versions)
    )


class EntityVersionVector:
    """Thread-safe monotone version counters keyed on normalized
    entity names.

    An entity absent from the vector is implicitly at version 0 —
    "never touched by an ingest" — and contributes nothing to tokens,
    keeping signatures stable for the untouched corpus.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: Dict[str, int] = {}
        self.bumps = 0

    def bump(self, entities: Iterable[str]) -> Dict[str, int]:
        """Advance the version of each entity; returns the new
        versions for exactly the entities bumped."""
        bumped: Dict[str, int] = {}
        with self._lock:
            for entity in entities:
                name = normalize_entity(entity)
                if not name:
                    continue
                self._versions[name] = self._versions.get(name, 0) + 1
                bumped[name] = self._versions[name]
            if bumped:
                self.bumps += 1
        return bumped

    def version(self, entity: str) -> int:
        with self._lock:
            return self._versions.get(normalize_entity(entity), 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._versions)

    def versions_for_query(self, query: str) -> Dict[str, int]:
        """The slice of the vector relevant to ``query``: every
        tracked entity that touches it, with its current version.

        This is what gets stamped onto served results — a query that
        involves no ingested entity gets ``{}``, and its results are
        byte-identical to the pre-ingest world.
        """
        with self._lock:
            return {
                entity: version
                for entity, version in self._versions.items()
                if query_touches(query, entity)
            }

    def token_for_query(self, query: str) -> str:
        return versions_token(self.versions_for_query(query))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entities": len(self._versions), "bumps": self.bumps}


__all__ = ["EntityVersionVector", "versions_token"]
