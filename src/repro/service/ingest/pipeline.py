"""The live-corpus ingest path: document in, touched entities out.

One ingest runs in five steps, all on the caller's thread and
serialized under a single ingest lock (concurrent *queries* keep
flowing — only ingests queue behind each other):

1. **process** — the document runs through the existing NLP +
   extraction stages (stage-cached, so re-ingesting unchanged text is
   nearly free and later queries that retrieve the document reuse the
   annotation work) and the extracted KB fragment is mined for the
   *touched-entity set*: repository entities mentioned, emerging
   entities discovered, fact argument displays, and the document
   title, all normalized;
2. **commit** — the session's search engine is rebuilt with the new
   document (``Bm25Index`` forbids in-place duplicates, so the swap is
   a fresh engine over copied doc tables), the owning service rebinds
   its pipeline over the new engine, and the per-entity version vector
   is bumped for the touched set. The global ``corpus_version`` is
   deliberately **not** rotated — that is the whole point;
3. **invalidate** — exactly the warm state whose normalized query
   intersects the touched set is discarded: query-cache entries, KB
   store rows (the store's delete trigger keeps the FTS5 search index
   consistent inside the same transaction), and tagged retrieval-stage
   entries. Everything else stays warm and bit-identical;
4. **acknowledge** — the ingest is recorded in the service history.
   Only now may a caller treat the document as durable; a crash at the
   ``ingest.commit`` fault point (before step 2) leaves no trace, and
   a crash at ``ingest.invalidate`` (before step 3) is repaired by
   :meth:`IngestPipeline.recover`, which redoes the idempotent
   invalidation from the recorded intent before the next operation;
5. **notify** — matching ``watch(entity)`` subscriptions receive a KB
   delta (see :mod:`repro.service.ingest.subscriptions`); webhook
   deliveries are attempted inline, after the acknowledgment, so a
   delivery crash can never lose an acked ingest.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, FrozenSet, Optional, Set

from repro.corpus.realizer import RealizedDocument
from repro.corpus.retrieval import SearchEngine
from repro.faultinject.points import fault_point
from repro.service.ingest.match import normalize_entity, touches_any

#: Surfaces that show up in mention sets but are useless as touched
#: entities — bumping "he" would invalidate half the query space.
_PRONOUN_SURFACES = frozenset(
    {
        "he", "she", "it", "they", "him", "her", "them", "his", "hers",
        "their", "theirs", "its", "who", "whom", "which", "that", "this",
        "these", "those", "i", "we", "you", "me", "us",
    }
)

#: Channels the search engine serves.
INGEST_SOURCES = ("wikipedia", "news")


class IngestPipeline:
    """Applies documents to a live :class:`QKBflyService` deployment.

    Holds a reference to the owning service (duck-typed — only
    ``session``, ``qkbfly``, ``cache``, ``store``, ``history``,
    ``subscriptions`` and ``_rebind_after_ingest`` are used) so it can
    drive the same tiers the query path serves from.
    """

    def __init__(self, service: Any) -> None:
        self._service = service
        self._lock = threading.Lock()
        #: Write-ahead intent of an in-flight commit: set before any
        #: mutation, cleared after the acknowledgment. A crash between
        #: leaves it populated for :meth:`recover`.
        self._intent: Optional[Dict[str, Any]] = None
        self.ingested = 0
        self.updated = 0
        self.recovered = 0

    # ------------------------------------------------------------------
    # touched-entity computation

    def compute_touched(self, document: RealizedDocument) -> FrozenSet[str]:
        """The normalized entity names a document touches.

        Runs the document through the stage-cached NLP + extraction +
        graph stages and collects every name the fragment surfaces:
        linked repository entities (canonical name + mention surfaces),
        emerging entities, fact argument displays, and the title.
        """
        service = self._service
        qkbfly = service.qkbfly
        annotated, nlp_signature = qkbfly._nlp_stage(document)
        clauses = qkbfly._extraction_stage(annotated, nlp_signature)
        fragment, _, _ = qkbfly.process_document(annotated, clauses=clauses)
        names: Set[str] = {document.title}
        repository = service.session.entity_repository
        for entity_id, mentions in fragment.entity_mentions.items():
            if entity_id in repository:
                names.add(repository.get(entity_id).canonical_name)
            names.update(mentions)
        for emerging in fragment.emerging.values():
            names.add(emerging.display_name)
            names.update(emerging.mentions)
        for fact in fragment.facts:
            for argument in fact.arguments():
                names.add(argument.display)
        touched = set()
        for name in names:
            normalized = normalize_entity(name)
            if normalized and normalized not in _PRONOUN_SURFACES:
                touched.add(normalized)
        return frozenset(touched)

    # ------------------------------------------------------------------
    # the ingest transaction

    def ingest(self, request: Any) -> Dict[str, Any]:
        """Apply one document; returns the raw result payload.

        The service's :meth:`~repro.service.service.QKBflyService.
        ingest` wraps this in admission control and the
        :class:`~repro.service.api.IngestResult` envelope.
        """
        start = time.perf_counter()
        service = self._service
        if request.source not in INGEST_SOURCES:
            raise ValueError(
                f"unknown ingest source {request.source!r} "
                f"(expected one of {INGEST_SOURCES})"
            )
        document = RealizedDocument(
            doc_id=request.doc_id,
            title=request.title or request.doc_id,
            sentences=[request.text],
            emitted=[],
            mentions=[],
            source=request.source,
        )
        with self._lock:
            self._recover_locked()
            session = service.session
            engine = session.search_engine
            if engine is None:
                raise RuntimeError("service session has no search engine")
            table = (
                engine.wikipedia_docs
                if request.source == "wikipedia"
                else engine.news_docs
            )
            previous = table.get(request.doc_id)
            touched = set(self.compute_touched(document))
            if previous is not None and previous.text != document.text:
                # An update also touches everything the old revision
                # talked about — queries anchored on entities that only
                # the old text mentioned must rotate too.
                touched |= self.compute_touched(previous)
            self._intent = {
                "doc_id": request.doc_id,
                "touched": frozenset(touched),
            }
            fault_point("ingest.commit", doc_id=request.doc_id)
            # -- commit: swap the engine, rebind the service, bump ----
            session.search_engine = self._engine_with(engine, document)
            service._rebind_after_ingest()
            bumped = session.entity_versions.bump(touched)
            fault_point("ingest.invalidate", doc_id=request.doc_id)
            # -- invalidate exactly the touched slice -----------------
            invalidated = self._invalidate(touched)
            # -- acknowledge ------------------------------------------
            history = getattr(service, "history", None)
            if history is not None:
                history.record_ingest(
                    doc_id=request.doc_id,
                    source=request.source,
                    entities=sorted(touched),
                    entity_versions=dict(bumped),
                    corpus_version=session.corpus_version,
                    updated=previous is not None,
                )
            self._intent = None
            self.ingested += 1
            if previous is not None:
                self.updated += 1
            corpus_version = session.corpus_version
        # -- notify (outside the ingest lock: delivery crashes or slow
        # webhooks must neither undo nor serialize acked ingests) ------
        subscribers = service.subscriptions.notify(
            doc_id=request.doc_id,
            touched=touched,
            entity_versions=bumped,
            corpus_version=corpus_version,
        )
        deliveries = service.subscriptions.deliver_webhooks()
        return {
            "doc_id": request.doc_id,
            "source": request.source,
            "updated": previous is not None,
            "touched_entities": sorted(touched),
            "entity_versions": dict(bumped),
            "corpus_version": corpus_version,
            "invalidated": invalidated,
            "subscribers": subscribers,
            "deliveries": deliveries,
            "seconds": time.perf_counter() - start,
        }

    def refresh_engine(self, search_engine: SearchEngine) -> Dict[str, Any]:
        """Entity-granular corpus refresh: a whole replacement engine.

        ``refresh_corpus(search_engine=...)`` used to rotate the global
        corpus version and blanket-invalidate every tier; a swapped
        engine is really just a *batch* of document changes, so this
        diffs the old and new doc tables, unions the touched entities
        of every changed document (old and new revision, like an
        ingest update), and commits the swap exactly like an ingest —
        the corpus version and every unrelated warm entry survive.
        """
        service = self._service
        old_engine = service.session.search_engine
        touched: Set[str] = set()
        for channel in ("wikipedia_docs", "news_docs"):
            old_docs = getattr(old_engine, channel, None) or {}
            new_docs = getattr(search_engine, channel, None) or {}
            for doc_id in sorted(set(old_docs) | set(new_docs)):
                old_doc = old_docs.get(doc_id)
                new_doc = new_docs.get(doc_id)
                if (
                    old_doc is not None
                    and new_doc is not None
                    and old_doc.text == new_doc.text
                    and old_doc.title == new_doc.title
                ):
                    continue
                for revision in (old_doc, new_doc):
                    if revision is not None:
                        touched |= self.compute_touched(revision)
        with self._lock:
            self._recover_locked()
            service.session.search_engine = search_engine
            service._rebind_after_ingest()
            bumped = service.session.entity_versions.bump(touched)
            invalidated = self._invalidate(touched)
            history = getattr(service, "history", None)
            if history is not None:
                history.record_ingest(
                    corpus_version=service.session.corpus_version,
                    entities=sorted(touched),
                    entity_versions=dict(bumped),
                )
            corpus_version = service.session.corpus_version
        subscribers = service.subscriptions.notify(
            doc_id="corpus-refresh",
            touched=touched,
            entity_versions=bumped,
            corpus_version=corpus_version,
        )
        service.subscriptions.deliver_webhooks()
        return {
            "touched_entities": sorted(touched),
            "entity_versions": dict(bumped),
            "invalidated": invalidated,
            "subscribers": subscribers,
            "corpus_version": corpus_version,
        }

    @staticmethod
    def _engine_with(
        engine: SearchEngine, document: RealizedDocument
    ) -> SearchEngine:
        """A fresh engine with ``document`` added or replaced.

        ``Bm25Index.add`` rejects duplicate doc ids, so updates cannot
        be applied in place; a new engine over copied doc tables
        rebuilds both channel indexes in its ``__post_init__``.
        """
        wikipedia = dict(engine.wikipedia_docs)
        news = dict(engine.news_docs)
        if document.source == "wikipedia":
            wikipedia[document.doc_id] = document
        else:
            news[document.doc_id] = document
        return SearchEngine(
            world=engine.world, wikipedia_docs=wikipedia, news_docs=news
        )

    def _invalidate(self, touched: Set[str]) -> Dict[str, int]:
        """Discard every warm entry whose query intersects ``touched``.

        All three tiers apply the same :func:`~repro.service.ingest.
        match.query_touches` rule; the store's delete trigger removes
        the matching FTS5 index rows inside the delete transaction.
        """
        service = self._service
        counts = {"cache": 0, "store": 0, "stage": 0}
        counts["cache"] = service.cache.invalidate_entities(touched)
        store = getattr(service, "store", None)
        if store is not None:
            counts["store"] = store.delete_for_entities(sorted(touched))
        stage_cache = service.session.stage_cache
        if stage_cache is not None:
            counts["stage"] = stage_cache.discard_tagged(
                "retrieval",
                lambda query: touches_any(query, touched),
            )
        return counts

    # ------------------------------------------------------------------
    # crash recovery

    def recover(self) -> bool:
        """Repair an interrupted commit; True when one was repaired.

        Idempotent redo: the write-ahead intent records the touched
        set before any mutation, so re-running the selective
        invalidation (and dropping the intent) restores the invariant
        "no warm entry predates the version vector" regardless of
        where the crash landed. Invalidating entries the crashed
        commit never made stale merely re-cools a warm slice — safe.
        """
        with self._lock:
            return self._recover_locked()

    def _recover_locked(self) -> bool:
        intent = self._intent
        if intent is None:
            return False
        self._invalidate(set(intent["touched"]))
        self._intent = None
        self.recovered += 1
        return True

    def stats(self) -> Dict[str, int]:
        return {
            "ingested": self.ingested,
            "updated": self.updated,
            "recovered": self.recovered,
        }


__all__ = ["INGEST_SOURCES", "IngestPipeline"]
