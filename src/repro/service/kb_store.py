"""Persistent on-the-fly KB store (SQLite, WAL mode).

The second tier of the serving layer: query results that fall out of the
in-memory cache (or belong to an earlier process) are answered from
disk instead of re-running the pipeline. The schema mirrors the KB
model of :mod:`repro.kb.facts`:

- ``kb_entries`` — one row per stored query result, uniquely identified
  by the full query signature (query, mode, algorithm, corpus_version,
  source, num_documents, config_digest);
- ``facts`` — one row per fact with subject, predicate, pattern,
  confidence and provenance (doc id, sentence index);
- ``fact_objects`` — ordered object slots, supporting higher-arity
  facts;
- ``emerging_entities`` / ``entity_records`` — per-entry emerging
  clusters and canonical-entity mentions/types;
- ``meta`` — store-level keys, including the ``corpus_version`` stamp
  the store was last synchronized to.

When the SQLite build has FTS5, each store additionally maintains the
fact-search index (``search_facts`` / ``fact_search`` /
``search_entities`` / ``entity_search`` — see
:mod:`repro.service.search.index` and ``docs/SEARCH.md``): saves index
the new entry inside the same transaction, and a delete-trigger keeps
the index consistent through replace-saves, compaction, and
``delete_stale`` with no hook in any delete path.

WAL journaling keeps concurrent readers cheap; all access additionally
goes through one process-wide lock per store, which SQLite's default
serialized mode does not provide across cursors.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faultinject.points import fault_point
from repro.kb.facts import Argument, EmergingEntity, Fact, KnowledgeBase
from repro.service.api import SearchUnavailable
from repro.service.search.index import (
    ensure_search_schema,
    index_entry,
    integrity_check,
    rebuild_index,
)
from repro.service.search.query import search_shard

_SCHEMA_VERSION = "1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS kb_entries (
    entry_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    query          TEXT NOT NULL,
    mode           TEXT NOT NULL,
    algorithm      TEXT NOT NULL,
    corpus_version TEXT NOT NULL,
    source         TEXT NOT NULL DEFAULT 'wikipedia',
    num_documents  INTEGER NOT NULL DEFAULT 1,
    config_digest  TEXT NOT NULL DEFAULT '',
    created_at     REAL NOT NULL,
    UNIQUE (query, mode, algorithm, corpus_version, source, num_documents,
            config_digest)
);
CREATE TABLE IF NOT EXISTS facts (
    fact_id             INTEGER PRIMARY KEY AUTOINCREMENT,
    entry_id            INTEGER NOT NULL
                        REFERENCES kb_entries(entry_id) ON DELETE CASCADE,
    position            INTEGER NOT NULL,
    subject_kind        TEXT NOT NULL,
    subject_value       TEXT NOT NULL,
    subject_display     TEXT NOT NULL,
    predicate           TEXT NOT NULL,
    pattern             TEXT NOT NULL,
    confidence          REAL NOT NULL,
    canonical_predicate INTEGER NOT NULL,
    doc_id              TEXT NOT NULL,
    sentence_index      INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_facts_entry ON facts(entry_id, position);
CREATE TABLE IF NOT EXISTS fact_objects (
    fact_id  INTEGER NOT NULL REFERENCES facts(fact_id) ON DELETE CASCADE,
    position INTEGER NOT NULL,
    kind     TEXT NOT NULL,
    value    TEXT NOT NULL,
    display  TEXT NOT NULL,
    PRIMARY KEY (fact_id, position)
);
CREATE TABLE IF NOT EXISTS emerging_entities (
    entry_id     INTEGER NOT NULL
                 REFERENCES kb_entries(entry_id) ON DELETE CASCADE,
    cluster_id   TEXT NOT NULL,
    display_name TEXT NOT NULL,
    guessed_type TEXT NOT NULL,
    mentions     TEXT NOT NULL,
    PRIMARY KEY (entry_id, cluster_id)
);
CREATE TABLE IF NOT EXISTS entity_records (
    entry_id  INTEGER NOT NULL
              REFERENCES kb_entries(entry_id) ON DELETE CASCADE,
    entity_id TEXT NOT NULL,
    mentions  TEXT NOT NULL,
    types     TEXT,
    PRIMARY KEY (entry_id, entity_id)
);
"""


@dataclass(frozen=True)
class EntrySignature:
    """Full identity of one stored entry plus its creation stamp.

    Everything needed to re-derive the entry's cache key (and therefore
    to warm the in-memory cache from the store) or to re-save the entry
    into another store (shard migration/rebalancing).
    """

    query: str
    mode: str
    algorithm: str
    corpus_version: str
    source: str
    num_documents: int
    config_digest: str
    created_at: float

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict wire form (the fabric protocol ships these)."""
        return {
            "query": self.query,
            "mode": self.mode,
            "algorithm": self.algorithm,
            "corpus_version": self.corpus_version,
            "source": self.source,
            "num_documents": self.num_documents,
            "config_digest": self.config_digest,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EntrySignature":
        """Inverse of :meth:`to_dict`."""
        return cls(
            query=str(data["query"]),
            mode=str(data["mode"]),
            algorithm=str(data["algorithm"]),
            corpus_version=str(data["corpus_version"]),
            source=str(data["source"]),
            num_documents=int(data["num_documents"]),
            config_digest=str(data["config_digest"]),
            created_at=float(data["created_at"]),
        )


class KbStore:
    """SQLite-backed persistence for served query results.

    Args:
        path: Database file path, or ``":memory:"`` for an ephemeral
            store (tests, benchmarks).
    """

    #: False on SQLite builds without FTS5: saves skip indexing and
    #: searches raise :class:`~repro.service.api.SearchUnavailable`.
    search_available: bool

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.executescript(_SCHEMA)
        self.search_available = ensure_search_schema(self._conn)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", _SCHEMA_VERSION),
        )
        self._conn.commit()

    # ---- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "KbStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- meta --------------------------------------------------------------

    @property
    def corpus_version(self) -> str:
        """The corpus stamp the store was last synchronized to."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'corpus_version'"
            ).fetchone()
            return row[0] if row else ""

    def set_corpus_version(self, version: str) -> None:
        """Record the corpus stamp entries are being written under."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('corpus_version', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (version,),
            )
            self._conn.commit()

    # ---- save / load -------------------------------------------------------

    def save(
        self,
        query: str,
        kb: KnowledgeBase,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
        created_at: Optional[float] = None,
        replace: bool = True,
    ) -> int:
        """Persist a query result, replacing any previous row for the key.

        Atomic: a failure mid-write rolls the whole entry back, so a
        later ``load`` can never see a truncated KB. ``created_at``
        defaults to now; migration and rebalancing pass the original
        stamp through so compaction ages entries by first creation, not
        by their last move between shards. With ``replace=False`` an
        existing row for the key wins and its entry id is returned
        unchanged — the online-rebalance mover uses this create-only
        mode so a streamed copy can never clobber a newer double-written
        entry (the existence check and the insert run under one lock,
        so the race has no window). Returns the entry id.
        """
        with self._lock:
            try:
                if not replace:
                    row = self._conn.execute(
                        "SELECT entry_id FROM kb_entries WHERE query = ? "
                        "AND mode = ? AND algorithm = ? AND "
                        "corpus_version = ? AND source = ? AND "
                        "num_documents = ? AND config_digest = ?",
                        (
                            query, mode, algorithm, corpus_version, source,
                            num_documents, config_digest,
                        ),
                    ).fetchone()
                    if row is not None:
                        return int(row[0])
                return self._save_locked(
                    query, kb, corpus_version, mode, algorithm, source,
                    num_documents, config_digest, created_at,
                )
            except BaseException:
                # BaseException, not Exception: a KeyboardInterrupt (or
                # an injected SimulatedCrash) mid-write must not leave
                # the transaction open on this shared connection, where
                # the torn rows would ride out with the next commit.
                self._conn.rollback()
                raise

    def _save_locked(
        self,
        query: str,
        kb: KnowledgeBase,
        corpus_version: str,
        mode: str,
        algorithm: str,
        source: str,
        num_documents: int,
        config_digest: str,
        created_at: Optional[float],
    ) -> int:
        cur = self._conn.cursor()
        cur.execute(
            "DELETE FROM kb_entries WHERE query = ? AND mode = ? AND "
            "algorithm = ? AND corpus_version = ? AND source = ? AND "
            "num_documents = ? AND config_digest = ?",
            (
                query, mode, algorithm, corpus_version, source,
                num_documents, config_digest,
            ),
        )
        cur.execute(
            "INSERT INTO kb_entries (query, mode, algorithm, "
            "corpus_version, source, num_documents, config_digest, "
            "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                query,
                mode,
                algorithm,
                corpus_version,
                source,
                num_documents,
                config_digest,
                created_at if created_at is not None else time.time(),
            ),
        )
        entry_id = cur.lastrowid
        fault_point("kb_store.save.mid_entry")
        for position, fact in enumerate(kb.facts):
            cur.execute(
                "INSERT INTO facts (entry_id, position, subject_kind, "
                "subject_value, subject_display, predicate, pattern, "
                "confidence, canonical_predicate, doc_id, sentence_index) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    entry_id,
                    position,
                    fact.subject.kind,
                    fact.subject.value,
                    fact.subject.display,
                    fact.predicate,
                    fact.pattern,
                    fact.confidence,
                    int(fact.canonical_predicate),
                    fact.doc_id,
                    fact.sentence_index,
                ),
            )
            fact_id = cur.lastrowid
            cur.executemany(
                "INSERT INTO fact_objects (fact_id, position, kind, "
                "value, display) VALUES (?, ?, ?, ?, ?)",
                [
                    (fact_id, i, obj.kind, obj.value, obj.display)
                    for i, obj in enumerate(fact.objects)
                ],
            )
        cur.executemany(
            "INSERT INTO emerging_entities (entry_id, cluster_id, "
            "display_name, guessed_type, mentions) VALUES (?, ?, ?, ?, ?)",
            [
                (
                    entry_id,
                    emerging.cluster_id,
                    emerging.display_name,
                    emerging.guessed_type,
                    json.dumps(list(emerging.mentions)),
                )
                for emerging in kb.emerging.values()
            ],
        )
        entity_ids = sorted(
            set(kb.entity_mentions) | set(kb.entity_types)
        )
        cur.executemany(
            "INSERT INTO entity_records (entry_id, entity_id, mentions, "
            "types) VALUES (?, ?, ?, ?)",
            [
                (
                    entry_id,
                    entity_id,
                    json.dumps(sorted(kb.entity_mentions.get(entity_id, ()))),
                    # NULL distinguishes "no types recorded" from an
                    # explicit empty type list, keeping round-trips exact.
                    json.dumps(list(kb.entity_types[entity_id]))
                    if entity_id in kb.entity_types
                    else None,
                )
                for entity_id in entity_ids
            ],
        )
        if self.search_available:
            # Inside the save transaction: a crash here rolls the entry
            # and its index rows back together, so the FTS index can
            # never reference a fact the store does not hold (or miss
            # one it does).
            fault_point(
                "search.index.update", entry_id=entry_id, path=self.path
            )
            index_entry(self._conn, entry_id)
        fault_point("kb_store.save.pre_commit")
        self._conn.commit()
        return int(entry_id)

    def load(
        self,
        query: str,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
    ) -> Optional[KnowledgeBase]:
        """Reconstruct a stored KB, or None when the key is absent."""
        with self._lock:
            return self._load_locked(
                query, corpus_version, mode, algorithm, source,
                num_documents, config_digest,
            )

    def try_load(
        self,
        query: str,
        corpus_version: str,
        mode: str = "joint",
        algorithm: str = "greedy",
        source: str = "wikipedia",
        num_documents: int = 1,
        config_digest: str = "",
    ) -> Tuple[bool, Optional[KnowledgeBase]]:
        """Event-loop-safe :meth:`load`: never blocks on the store lock.

        Returns ``(attempted, kb)``. ``attempted`` is False when the
        lock was held by another thread (a writer mid-save, a
        compaction) — the lookup was *not* performed and the caller
        should fall back to the blocking path off the loop. With
        ``attempted`` True, ``kb`` is the stored KB or None for a clean
        miss. The asyncio front end uses this to answer store hits
        directly on the event loop without ever stalling behind a slow
        writer.
        """
        if not self._lock.acquire(blocking=False):
            return False, None
        try:
            return True, self._load_locked(
                query, corpus_version, mode, algorithm, source,
                num_documents, config_digest,
            )
        finally:
            self._lock.release()

    def _load_locked(
        self,
        query: str,
        corpus_version: str,
        mode: str,
        algorithm: str,
        source: str,
        num_documents: int,
        config_digest: str,
    ) -> Optional[KnowledgeBase]:
        row = self._conn.execute(
            "SELECT entry_id FROM kb_entries WHERE query = ? AND "
            "mode = ? AND algorithm = ? AND corpus_version = ? AND "
            "source = ? AND num_documents = ? AND config_digest = ?",
            (
                query, mode, algorithm, corpus_version, source,
                num_documents, config_digest,
            ),
        ).fetchone()
        if row is None:
            return None
        return self._load_entry(row[0])

    def _load_entry(self, entry_id: int) -> KnowledgeBase:
        kb = KnowledgeBase()
        fact_rows = self._conn.execute(
            "SELECT fact_id, subject_kind, subject_value, subject_display, "
            "predicate, pattern, confidence, canonical_predicate, doc_id, "
            "sentence_index FROM facts WHERE entry_id = ? ORDER BY position",
            (entry_id,),
        ).fetchall()
        # All object slots for the entry in one round-trip (avoids one
        # query per fact on the serving hot path).
        objects_by_fact: Dict[int, List[Argument]] = {}
        for fact_id, kind, value, display in self._conn.execute(
            "SELECT o.fact_id, o.kind, o.value, o.display "
            "FROM fact_objects o JOIN facts f ON f.fact_id = o.fact_id "
            "WHERE f.entry_id = ? ORDER BY o.fact_id, o.position",
            (entry_id,),
        ):
            objects_by_fact.setdefault(fact_id, []).append(
                Argument(kind=kind, value=value, display=display)
            )
        for (
            fact_id,
            subject_kind,
            subject_value,
            subject_display,
            predicate,
            pattern,
            confidence,
            canonical_predicate,
            doc_id,
            sentence_index,
        ) in fact_rows:
            objects = objects_by_fact.get(fact_id, [])
            kb.add_fact(
                Fact(
                    subject=Argument(
                        kind=subject_kind,
                        value=subject_value,
                        display=subject_display,
                    ),
                    predicate=predicate,
                    objects=objects,
                    pattern=pattern,
                    confidence=confidence,
                    doc_id=doc_id,
                    sentence_index=sentence_index,
                    canonical_predicate=bool(canonical_predicate),
                )
            )
        for cluster_id, display_name, guessed_type, mentions in (
            self._conn.execute(
                "SELECT cluster_id, display_name, guessed_type, mentions "
                "FROM emerging_entities WHERE entry_id = ?",
                (entry_id,),
            )
        ):
            kb.add_emerging(
                EmergingEntity(
                    cluster_id=cluster_id,
                    display_name=display_name,
                    mentions=json.loads(mentions),
                    guessed_type=guessed_type,
                )
            )
        for entity_id, mentions, types in self._conn.execute(
            "SELECT entity_id, mentions, types FROM entity_records "
            "WHERE entry_id = ?",
            (entry_id,),
        ):
            for mention in json.loads(mentions):
                kb.observe_mention(entity_id, mention)
            if types is not None:
                kb.set_entity_types(entity_id, json.loads(types))
        return kb

    # ---- fact search -------------------------------------------------------

    def search_facts(self, params: Dict) -> List[Dict]:
        """One shard's slice of a paginated fact search.

        ``params`` is the JSON-safe request dict built by
        :func:`repro.service.search.query.search_paginated` (filters,
        sort, decoded cursor, global-id stride/offset) — the same dict
        the fabric ships to shard servers. Raises
        :class:`~repro.service.api.SearchUnavailable` when this SQLite
        build lacks FTS5.
        """
        return self._search_shard(dict(params, kind="facts"))

    def search_entities(self, params: Dict) -> List[Dict]:
        """One shard's slice of a paginated entity search."""
        return self._search_shard(dict(params, kind="entities"))

    def _search_shard(self, params: Dict) -> List[Dict]:
        fault_point(
            "search.read.page", path=self.path, kind=params.get("kind")
        )
        with self._lock:
            if not self.search_available:
                raise SearchUnavailable(
                    "fact search is unavailable: this SQLite build has "
                    "no FTS5 extension"
                )
            return search_shard(self._conn, params)

    def rebuild_search_index(self) -> Tuple[int, int]:
        """Rebuild this shard's search index from the relational tables.

        The offline recovery path (``docs/SEARCH.md``): wipes and
        re-derives every ``search_*`` row. Returns the re-indexed
        ``(fact_rows, entity_rows)`` counts.
        """
        with self._lock:
            if not self.search_available:
                raise SearchUnavailable(
                    "fact search is unavailable: this SQLite build has "
                    "no FTS5 extension"
                )
            try:
                counts = rebuild_index(self._conn)
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
            return counts

    def search_integrity(self) -> Dict:
        """FTS-vs-relational consistency report (fault-injection tests)."""
        with self._lock:
            if not self.search_available:
                return {"consistent": True, "search_available": False}
            report = integrity_check(self._conn)
            # integrity-check is a read-only FTS command issued via
            # INSERT syntax; end the implicit transaction it opened.
            self._conn.rollback()
            report["search_available"] = True
            return report

    # ---- maintenance -------------------------------------------------------

    def entries(self) -> List[Tuple[str, str, str, str]]:
        """(query, mode, algorithm, corpus_version) for every stored KB."""
        with self._lock:
            return [
                tuple(row)
                for row in self._conn.execute(
                    "SELECT query, mode, algorithm, corpus_version "
                    "FROM kb_entries ORDER BY entry_id"
                )
            ]

    def signatures(
        self,
        corpus_version: Optional[str] = None,
        mode: Optional[str] = None,
        algorithm: Optional[str] = None,
        config_digest: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[EntrySignature]:
        """Stored entry signatures, newest first, optionally filtered.

        The warm-up path refills the in-memory cache from this on
        service start; migration/rebalancing iterates the unfiltered
        listing to re-route entries. The filters and ``limit`` run in
        SQL so a warm-up over a huge store reads O(limit) rows, not the
        whole table. ``None`` means "no filter" (an empty string is a
        real ``config_digest`` value).
        """
        clauses: List[str] = []
        params: List = []
        for column, value in (
            ("corpus_version", corpus_version),
            ("mode", mode),
            ("algorithm", algorithm),
            ("config_digest", config_digest),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = (
            "SELECT query, mode, algorithm, corpus_version, source, "
            "num_documents, config_digest, created_at FROM kb_entries"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at DESC, entry_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(max(0, int(limit)))
        with self._lock:
            return [
                EntrySignature(
                    query=row[0],
                    mode=row[1],
                    algorithm=row[2],
                    corpus_version=row[3],
                    source=row[4],
                    num_documents=int(row[5]),
                    config_digest=row[6],
                    created_at=float(row[7]),
                )
                for row in self._conn.execute(sql, params)
            ]

    def created_index(self) -> List[Tuple[float, int]]:
        """(created_at, entry_id) for every entry — compaction input."""
        with self._lock:
            return [
                (float(created_at), int(entry_id))
                for created_at, entry_id in self._conn.execute(
                    "SELECT created_at, entry_id FROM kb_entries"
                )
            ]

    def delete_entries(self, entry_ids: Iterable[int]) -> int:
        """Drop specific entries (facts etc. cascade); returns the count."""
        ids = [(int(entry_id),) for entry_id in entry_ids]
        if not ids:
            return 0
        with self._lock:
            cur = self._conn.executemany(
                "DELETE FROM kb_entries WHERE entry_id = ?", ids
            )
            self._conn.commit()
            return cur.rowcount

    def compact(
        self,
        max_age_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Reclaim space for long-running deployments; returns removed count.

        Two independent policies, applied in order:

        - ``max_age_seconds`` — drop entries created more than this many
          seconds before ``now`` (TTL);
        - ``max_entries`` — then keep only the newest N entries.

        Both default to "no limit". ``now`` is injectable for tests.
        """
        removed = 0
        with self._lock:
            try:
                if max_age_seconds is not None:
                    cutoff = (
                        now if now is not None else time.time()
                    ) - max_age_seconds
                    cur = self._conn.execute(
                        "DELETE FROM kb_entries WHERE created_at < ?",
                        (cutoff,),
                    )
                    removed += cur.rowcount
                fault_point("kb_store.compact.mid")
                if max_entries is not None:
                    cur = self._conn.execute(
                        "DELETE FROM kb_entries WHERE entry_id NOT IN ("
                        "SELECT entry_id FROM kb_entries "
                        "ORDER BY created_at DESC, entry_id DESC LIMIT ?)",
                        (max(0, int(max_entries)),),
                    )
                    removed += cur.rowcount
                self._conn.commit()
            except BaseException:
                # Same shared-connection contract as save(): an
                # interrupt between the two delete passes must not
                # leave half a compaction pending for the next commit.
                self._conn.rollback()
                raise
        return removed

    def delete_stale(self, current_version: str) -> int:
        """Drop entries from corpus versions other than ``current_version``.

        Returns the number of entries removed. Called when the corpus
        advances, mirroring the in-memory cache invalidation.
        """
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM kb_entries WHERE corpus_version != ?",
                (current_version,),
            )
            self._conn.commit()
            return cur.rowcount

    def delete_for_entities(self, entities: Iterable[str]) -> int:
        """Drop every entry whose stored query touches one of
        ``entities`` — the store tier of entity-granular invalidation.

        The match runs on the ``kb_entries.query`` column (the
        normalized query text) with the same
        :func:`repro.service.ingest.match.query_touches` rule the
        query cache and stage cache apply, so all tiers cool the same
        slice. All matched rows go in one transaction — facts cascade
        and the delete trigger removes the FTS5 index rows with them —
        with the save-path's BaseException rollback contract, so an
        interrupt mid-delete leaves entries and search index intact
        together. Returns the number of entries removed.
        """
        from repro.service.ingest.match import touches_any

        entity_list = [entity for entity in entities if entity]
        if not entity_list:
            return 0
        with self._lock:
            doomed = [
                (int(entry_id),)
                for entry_id, query in self._conn.execute(
                    "SELECT entry_id, query FROM kb_entries"
                )
                if touches_any(query, entity_list)
            ]
            if not doomed:
                return 0
            try:
                cur = self._conn.executemany(
                    "DELETE FROM kb_entries WHERE entry_id = ?", doomed
                )
                self._conn.commit()
                return cur.rowcount
            except BaseException:
                self._conn.rollback()
                raise

    def entry_count(self) -> int:
        """Number of stored entries — one indexed count, no table scan
        of the fact tables (the fabric health/rebalance probes poll
        this, so it must stay cheap)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM kb_entries"
            ).fetchone()
            return int(row[0])

    def stats(self) -> Dict[str, int]:
        """Row counts per table, for monitoring."""
        with self._lock:
            out: Dict[str, int] = {}
            for table in (
                "kb_entries",
                "facts",
                "fact_objects",
                "emerging_entities",
                "entity_records",
            ):
                row = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()
                out[table] = int(row[0])
            if self.search_available:
                for table in ("search_facts", "search_entities"):
                    row = self._conn.execute(
                        f"SELECT COUNT(*) FROM {table}"
                    ).fetchone()
                    out[table] = int(row[0])
            return out


__all__ = ["EntrySignature", "KbStore"]
