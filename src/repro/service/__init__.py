"""The query-serving layer: persistence, caching, batched execution.

Turns the one-shot :class:`repro.core.qkbfly.QKBfly` pipeline into a
serving deployment (see ``docs/ARCHITECTURE.md`` for the full map):

- :mod:`repro.service.api` — the v1 request/response envelope
  (:class:`QueryRequest` / :class:`QueryResult`), the
  :class:`QueryStatus` enum, and the typed error taxonomy
  (:class:`ServiceError`, :class:`RateLimited`, :class:`Overloaded`,
  :class:`PipelineFailure`) every front end speaks;
- :mod:`repro.service.cache` — LRU/TTL query cache keyed on
  (normalized query, mode, algorithm, corpus_version);
- :mod:`repro.service.stage_cache` — content-addressed caching of the
  pipeline's *intermediate* stages (retrieval / NLP annotation /
  clause extraction) under chained signatures, so overlapping queries
  reuse each other's upstream work (see ``docs/PIPELINE.md``);
- :mod:`repro.service.kb_store` — persistent SQLite (WAL) store for
  built KBs with full provenance, TTL/size compaction, and a
  non-blocking ``try_load`` accessor for the event-loop fast path;
- :mod:`repro.service.sharding` — the same store partitioned across N
  SQLite files with per-shard locks, keyed on the query-signature hash;
- :mod:`repro.service.fabric` — the shards served by socket shard
  servers with read replicas and online rebalance, selected with
  ``ServiceConfig(store_backend="fabric")`` (see ``docs/FABRIC.md``);
- :mod:`repro.service.executor` — thread-pool batch execution with
  single-flight deduplication over shared session state;
- :mod:`repro.service.process_executor` — the same pipeline stages on
  a multiprocessing pool, escaping the GIL for distinct-query traffic;
- :mod:`repro.service.autoscale` — the autoscaler behind
  ``ServiceConfig(executor="auto")``: thread-vs-process tier choice
  (startup from the CPU count, runtime from the observed traffic) and
  queue-fed worker-pool sizing with hysteresis;
- :mod:`repro.service.admission` — per-client token-bucket rate
  limiting, per-client *cost* budgeting (pipeline-seconds, with a
  per-shape p95 admit-time estimator), and global queue-depth load
  shedding whose Retry-After comes from the measured queue-wait
  window — enforced identically by every front end;
- :mod:`repro.service.search` — the fact-search subsystem: per-shard
  FTS5 indexes maintained inside the store's save transaction, keyset
  cursor pagination, and the multi-shard ranked merge behind
  ``GET /v1/facts`` / ``GET /v1/entities`` (see ``docs/SEARCH.md``);
- :mod:`repro.service.service` — the sync :class:`QKBflyService`
  facade (``serve``/``serve_batch`` envelope entry points, cache
  warm-up, store compaction, execution tiers);
- :mod:`repro.service.async_service` — the asyncio
  :class:`AsyncQKBflyService` front end (hits on the event loop,
  misses dispatched to the executors, asyncio-native single-flight);
- :mod:`repro.service.gateway` — the stdlib HTTP server
  (:class:`HttpGateway`) exposing ``POST /v1/query``,
  ``GET /v1/facts``, ``GET /v1/entities``, ``GET /v1/healthz``, and
  ``GET /v1/stats`` over the asyncio front end.
"""

from repro.service.admission import (
    AdmissionController,
    CostBucket,
    CostCharge,
    QueueWaitWindow,
    TokenBucket,
    cost_shape,
    ingest_cost_shape,
    search_cost_shape,
)
from repro.service.api import (
    API_VERSION,
    CostLimited,
    DeadlineUnmet,
    FactSearchRequest,
    FactSearchResult,
    IngestRequest,
    IngestResult,
    Overloaded,
    PipelineFailure,
    QueryRequest,
    QueryResult,
    QueryStatus,
    RateLimited,
    SearchUnavailable,
    ServiceError,
    WatchRequest,
    backend_seconds,
)
from repro.service.async_service import AsyncQKBflyService
from repro.service.autoscale import (
    AutoscalePolicy,
    ExecutorSelector,
    observed_cpu_count,
)
from repro.service.cache import CacheKey, QueryCache, normalize_query
from repro.service.executor import BatchExecutor
from repro.service.fabric import (
    Fabric,
    RemoteKbStore,
    ShardServer,
    ShardUnavailable,
)
from repro.service.gateway import HttpGateway, parse_search_query
from repro.service.ingest import (
    EntityVersionVector,
    normalize_entity,
    query_touches,
    versions_token,
)
from repro.service.ingest.pipeline import IngestPipeline
from repro.service.ingest.subscriptions import SubscriptionRegistry
from repro.service.kb_store import EntrySignature, KbStore
from repro.service.process_executor import (
    PipelineRequest,
    PipelineResponse,
    ProcessBatchExecutor,
)
from repro.service.search import (
    SORT_ORDERS,
    rebuild_index,
    search_paginated,
)
from repro.service.service import QKBflyService, ServiceConfig
from repro.service.sharding import ShardedKbStore, shard_index
from repro.service.stage_cache import (
    StageCache,
    StageCacheSpec,
    StagePolicy,
    stage_signature,
)

__all__ = [
    "API_VERSION",
    "AdmissionController",
    "AsyncQKBflyService",
    "AutoscalePolicy",
    "BatchExecutor",
    "CacheKey",
    "CostBucket",
    "CostCharge",
    "CostLimited",
    "DeadlineUnmet",
    "EntityVersionVector",
    "EntrySignature",
    "ExecutorSelector",
    "Fabric",
    "FactSearchRequest",
    "FactSearchResult",
    "HttpGateway",
    "IngestPipeline",
    "IngestRequest",
    "IngestResult",
    "KbStore",
    "Overloaded",
    "QueueWaitWindow",
    "PipelineFailure",
    "PipelineRequest",
    "PipelineResponse",
    "ProcessBatchExecutor",
    "QKBflyService",
    "QueryCache",
    "QueryRequest",
    "QueryResult",
    "QueryStatus",
    "RateLimited",
    "RemoteKbStore",
    "SORT_ORDERS",
    "SearchUnavailable",
    "ServiceConfig",
    "ServiceError",
    "ShardServer",
    "ShardUnavailable",
    "ShardedKbStore",
    "StageCache",
    "StageCacheSpec",
    "StagePolicy",
    "SubscriptionRegistry",
    "TokenBucket",
    "WatchRequest",
    "backend_seconds",
    "cost_shape",
    "ingest_cost_shape",
    "normalize_entity",
    "normalize_query",
    "observed_cpu_count",
    "parse_search_query",
    "query_touches",
    "rebuild_index",
    "search_cost_shape",
    "search_paginated",
    "shard_index",
    "stage_signature",
    "versions_token",
]
