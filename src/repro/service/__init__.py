"""The query-serving layer: persistence, caching, batched execution.

Turns the one-shot :class:`repro.core.qkbfly.QKBfly` pipeline into a
serving deployment (see README, "Serving layer"):

- :mod:`repro.service.cache` — LRU/TTL query cache keyed on
  (normalized query, mode, algorithm, corpus_version);
- :mod:`repro.service.kb_store` — persistent SQLite (WAL) store for
  built KBs with full provenance, plus TTL/size compaction;
- :mod:`repro.service.sharding` — the same store partitioned across N
  SQLite files with per-shard locks, keyed on the query-signature hash;
- :mod:`repro.service.executor` — thread-pool batch execution with
  single-flight deduplication over shared session state;
- :mod:`repro.service.process_executor` — the same pipeline stages on
  a multiprocessing pool, escaping the GIL for distinct-query traffic;
- :mod:`repro.service.service` — the :class:`QKBflyService` facade
  (cache warm-up, store compaction, thread/process execution tiers).
"""

from repro.service.cache import CacheKey, QueryCache, normalize_query
from repro.service.executor import BatchExecutor
from repro.service.kb_store import EntrySignature, KbStore
from repro.service.process_executor import (
    PipelineRequest,
    PipelineResponse,
    ProcessBatchExecutor,
)
from repro.service.service import QKBflyService, QueryResult, ServiceConfig
from repro.service.sharding import ShardedKbStore, shard_index

__all__ = [
    "BatchExecutor",
    "CacheKey",
    "EntrySignature",
    "KbStore",
    "PipelineRequest",
    "PipelineResponse",
    "ProcessBatchExecutor",
    "QKBflyService",
    "QueryCache",
    "QueryResult",
    "ServiceConfig",
    "ShardedKbStore",
    "normalize_query",
    "shard_index",
]
