"""The query-serving layer: persistence, caching, batched execution.

Turns the one-shot :class:`repro.core.qkbfly.QKBfly` pipeline into a
serving deployment (see README, "Serving layer"):

- :mod:`repro.service.cache` — LRU/TTL query cache keyed on
  (normalized query, mode, algorithm, corpus_version);
- :mod:`repro.service.kb_store` — persistent SQLite (WAL) store for
  built KBs with full provenance;
- :mod:`repro.service.executor` — thread-pool batch execution with
  single-flight deduplication over shared session state;
- :mod:`repro.service.service` — the :class:`QKBflyService` facade.
"""

from repro.service.cache import CacheKey, QueryCache, normalize_query
from repro.service.executor import BatchExecutor
from repro.service.kb_store import KbStore
from repro.service.service import QKBflyService, QueryResult, ServiceConfig

__all__ = [
    "BatchExecutor",
    "CacheKey",
    "KbStore",
    "QKBflyService",
    "QueryCache",
    "QueryResult",
    "ServiceConfig",
    "normalize_query",
]
