"""Batched query execution with in-flight deduplication.

Serving traffic arrives in bursts that repeat themselves: trending
queries are issued by many clients at once. Running each request
through the full pipeline independently wastes exactly the work the
cache exists to save — so the executor (a) fans requests out over a
thread pool that shares one :class:`~repro.core.qkbfly.SessionState`,
and (b) collapses *concurrent* identical requests onto a single
in-flight computation, so a burst of N copies of one query costs one
pipeline run, not N.

Results are futures; :meth:`BatchExecutor.run_batch` preserves input
order, and duplicated inputs receive the same result object.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Sequence


class BatchExecutor:
    """Thread-pool executor with per-key single-flight semantics.

    Args:
        run_fn: The computation, called once per *distinct* in-flight
            key as ``run_fn(request)``. Must be thread-safe — in the
            serving layer it closes over shared read-only session state
            plus the (internally locked) cache and store.
        max_workers: Concurrent worker threads.
    """

    def __init__(
        self,
        run_fn: Callable[[Any], Any],
        max_workers: int = 4,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self._run_fn = run_fn
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="qkbfly"
        )
        self._lock = threading.Lock()
        self._in_flight: Dict[Hashable, Future] = {}
        self.deduplicated = 0
        self.submitted = 0

    # ---- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ---- submission --------------------------------------------------------

    def submit(self, key: Hashable, request: Any) -> Future:
        """Schedule ``request``; identical concurrent keys share a future.

        The key leaves the in-flight table the moment its computation
        finishes, so later submissions recompute (by then the serving
        layer's cache answers them instead).
        """
        with self._lock:
            existing = self._in_flight.get(key)
            if existing is not None:
                self.deduplicated += 1
                return existing
            future = self._pool.submit(self._run_fn, request)
            self._in_flight[key] = future
            self.submitted += 1

        def _release(done: Future, key: Hashable = key) -> None:
            with self._lock:
                if self._in_flight.get(key) is done:
                    del self._in_flight[key]

        future.add_done_callback(_release)
        return future

    def run_batch(
        self,
        requests: Sequence[Any],
        key_fn: Callable[[Any], Hashable] = lambda request: request,
    ) -> List[Any]:
        """Execute all requests concurrently, preserving input order.

        Duplicate keys within the batch are guaranteed to be computed
        once and fanned back out (regardless of timing), so the returned
        list always has ``len(requests)`` elements. Exceptions from
        ``run_fn`` propagate to the caller.
        """
        futures_by_key: Dict[Hashable, Future] = {}
        order: List[Hashable] = []
        for request in requests:
            key = key_fn(request)
            order.append(key)
            if key not in futures_by_key:
                futures_by_key[key] = self.submit(key, request)
            else:
                with self._lock:
                    self.deduplicated += 1
        return [futures_by_key[key].result() for key in order]


__all__ = ["BatchExecutor"]
