"""Batched query execution with in-flight deduplication.

Serving traffic arrives in bursts that repeat themselves: trending
queries are issued by many clients at once. Running each request
through the full pipeline independently wastes exactly the work the
cache exists to save — so the executor (a) fans requests out over a
thread pool that shares one :class:`~repro.core.qkbfly.SessionState`,
and (b) collapses *concurrent* identical requests onto a single
in-flight computation, so a burst of N copies of one query costs one
pipeline run, not N.

Results are futures; :meth:`BatchExecutor.run_batch` preserves input
order, and duplicated inputs receive the same result object.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence


class BatchExecutor:
    """Thread-pool executor with per-key single-flight semantics.

    Args:
        run_fn: The computation, called once per *distinct* in-flight
            key as ``run_fn(request)``. Must be thread-safe — in the
            serving layer it closes over shared read-only session state
            plus the (internally locked) cache and store.
        max_workers: Concurrent worker threads (ignored when ``pool``
            is supplied).
        pool: Optional executor to run computations on instead of an
            owned thread pool — this is how
            :class:`~repro.service.process_executor.ProcessBatchExecutor`
            reuses the single-flight machinery over a process pool.
            Must provide ``submit``/``shutdown``; ownership transfers
            to this instance.
        queue_wait_hook: Optional callable receiving each computation's
            measured queue wait — the seconds between ``submit()`` and
            the moment ``run_fn`` actually starts on a worker. The
            serving layer wires this to its
            :class:`~repro.service.admission.QueueWaitWindow` so
            Retry-After hints and pool-sizing decisions see live wait
            data. Only usable with in-process pools: the timing wrapper
            closes over the hook, so it cannot cross a process
            boundary (:class:`~repro.service.process_executor.
            ProcessBatchExecutor` leaves it unset and ships the bare
            ``run_fn`` instead).
    """

    def __init__(
        self,
        run_fn: Callable[[Any], Any],
        max_workers: int = 4,
        pool: Any = None,
        queue_wait_hook: Optional[Callable[[float], None]] = None,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self._run_fn = run_fn
        self._owns_pool = pool is None
        self.max_workers = max_workers
        self._pool = pool or ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="qkbfly"
        )
        self.queue_wait_hook = queue_wait_hook
        self._lock = threading.Lock()
        self._in_flight: Dict[Hashable, Future] = {}
        self.deduplicated = 0
        self.submitted = 0

    # ---- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool."""
        self._pool.shutdown(wait=wait)

    def resize(self, max_workers: int) -> None:
        """Swap the owned thread pool for one with ``max_workers``.

        The single-flight table, counters, and wait hook all survive:
        only the inner pool is replaced, so in-flight computations
        complete on the old pool (its already-submitted work keeps
        running under ``shutdown(wait=False)``) while new submissions
        land on the new one — the same publish-then-retire discipline
        as the service's executor-tier swaps. Refused when the pool was
        supplied externally (a process pool resizes by being rebuilt,
        which requires re-pickling the session — the owner's job).
        """
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if not self._owns_pool:
            raise RuntimeError(
                "cannot resize an externally supplied pool"
            )
        with self._lock:
            if max_workers == self.max_workers:
                return
            old = self._pool
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="qkbfly"
            )
            self.max_workers = max_workers
        old.shutdown(wait=False)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ---- queue visibility --------------------------------------------------

    @property
    def pending(self) -> int:
        """Distinct computations currently in flight.

        This is the queue depth admission control sheds on: joiners of
        an existing flight do not add to it, so it measures real
        outstanding work, not raw request arrival.
        """
        with self._lock:
            return len(self._in_flight)

    def has_flight(self, key: Hashable) -> bool:
        """Whether ``key`` currently has an in-flight computation.

        A request whose key is already flying *joins* that flight —
        load shedding exempts it (see
        :meth:`repro.service.admission.AdmissionController.check_queue`).
        The answer is advisory: the flight can land between this check
        and a subsequent submit, in which case the submit recomputes —
        admission decisions tolerate that race by design.
        """
        with self._lock:
            return key in self._in_flight

    def count_dedup(self) -> None:
        """Count one deduplicated request absorbed outside ``submit``
        (front ends with their own registries report joins through
        this, keeping one consistent dedup counter per deployment)."""
        with self._lock:
            self.deduplicated += 1

    # ---- submission --------------------------------------------------------

    def submit(self, key: Hashable, request: Any) -> Future:
        """Schedule ``request``; identical concurrent keys share a future.

        The key leaves the in-flight table *before* its future
        completes, so a submission that observes the key always joins a
        still-pending computation, and a submission after completion
        recomputes (by then the serving layer's cache answers instead).

        The in-flight table holds a fresh executor-owned future rather
        than the pool's own: the pool future can complete between
        ``_pool.submit`` returning and a done-callback being attached,
        and in that window a table holding the pool future maps the key
        to an already-completed result — later submitters would join a
        finished flight instead of recomputing, and the stale key could
        outlive its computation (the single-flight leak this design
        fixes). The owned future only completes inside the callback
        that first removes the key, making that window unobservable.
        """
        with self._lock:
            existing = self._in_flight.get(key)
            if existing is not None:
                self.deduplicated += 1
                return existing
            shared: Future = Future()
            # A flight may be shared by many callers, so no single
            # caller may cancel it out from under the others: marking
            # it running up front makes cancel() always return False
            # (same contract as a pool future once picked up), and
            # lets the completion paths below set results untroubled
            # by a concurrent cancellation.
            shared.set_running_or_notify_cancel()
            self._in_flight[key] = shared
            self.submitted += 1
        if self.queue_wait_hook is not None:
            # Measure entry->start so the serving layer sees how long
            # work sits queued before a worker picks it up. The wrapper
            # closes over the hook, which is why it only exists when a
            # hook is set (a process pool could not pickle it).
            entered = time.monotonic()

            def work(request: Any = request, entered: float = entered) -> Any:
                hook = self.queue_wait_hook
                if hook is not None:
                    hook(max(0.0, time.monotonic() - entered))
                return self._run_fn(request)
        else:
            work = None
        while True:
            pool = self._pool
            try:
                if work is not None:
                    inner = pool.submit(work)
                else:
                    inner = pool.submit(self._run_fn, request)
                break
            except BaseException as error:
                if self._pool is not pool:
                    # A concurrent resize() retired the pool between
                    # the snapshot and the submit; retry on whatever
                    # pool is current (same discipline as the service's
                    # pipeline-tier swap).
                    continue
                with self._lock:
                    if self._in_flight.get(key) is shared:
                        del self._in_flight[key]
                shared.set_exception(error)
                return shared

        def _settle(done: Future, key: Hashable = key) -> None:
            # Order matters: unpublish the key first, then complete the
            # shared future — a waiter woken by the result must never
            # find its finished flight still in the table.
            with self._lock:
                if self._in_flight.get(key) is shared:
                    del self._in_flight[key]
            try:
                result = done.result()
            except BaseException as error:  # includes CancelledError
                shared.set_exception(error)
            else:
                shared.set_result(result)

        inner.add_done_callback(_settle)
        return shared

    def run_batch(
        self,
        requests: Sequence[Any],
        key_fn: Callable[[Any], Hashable] = lambda request: request,
    ) -> List[Any]:
        """Execute all requests concurrently, preserving input order.

        Duplicate keys within the batch are guaranteed to be computed
        once and fanned back out (regardless of timing), so the returned
        list always has ``len(requests)`` elements. Exceptions from
        ``run_fn`` propagate to the caller.
        """
        futures_by_key: Dict[Hashable, Future] = {}
        order: List[Hashable] = []
        for request in requests:
            key = key_fn(request)
            order.append(key)
            if key not in futures_by_key:
                futures_by_key[key] = self.submit(key, request)
            else:
                self.count_dedup()
        return [futures_by_key[key].result() for key in order]


__all__ = ["BatchExecutor"]
