"""Multi-process pipeline execution: escaping the GIL for CPU-bound work.

The thread-pool :class:`~repro.service.executor.BatchExecutor` only
speeds up *repeated* queries (via single-flight dedup) — concurrent
**distinct** queries still serialize on the GIL, because the QKBfly
pipeline (parsing, graph building, densification) is pure-Python CPU
work. The :class:`ProcessBatchExecutor` runs those pipeline stages in a
``multiprocessing`` pool instead, so distinct queries scale with cores:

- work crosses the process boundary in small **picklable envelopes**
  (:class:`PipelineRequest` in, :class:`PipelineResponse` out — the KB
  travels as its ``to_dict`` payload, never as live objects);
- each worker bootstraps its own pipeline once, from a pickled
  :class:`~repro.core.qkbfly.SessionState` (cheap: the session excludes
  derived NLP state from its pickle and rebuilds it lazily);
- when the session cannot be pickled (e.g. a corpus object holding
  sockets or mmaps) or no process pool can be created, the executor
  **falls back to threads** transparently — same API, same results,
  ``kind == "thread"`` — so serving never hard-fails on exotic corpora.

Single-flight deduplication is inherited by composing the (race-fixed)
``BatchExecutor`` over the process pool: a burst of identical envelopes
costs one worker task.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.qkbfly import QKBfly, QKBflyConfig, SessionState
from repro.faultinject.points import fault_point
from repro.kb.facts import KnowledgeBase
from repro.service.executor import BatchExecutor


@dataclass(frozen=True)
class PipelineRequest:
    """Picklable envelope for one pipeline run (hashable: it is its own
    single-flight key).

    Like the public v1 envelopes (:mod:`repro.service.api`), it JSON
    round-trips via ``to_dict``/``from_dict`` — the process tier ships
    it as a pickle today, but a multi-node transport can reuse the same
    wire form.
    """

    query: str
    source: str = "wikipedia"
    num_documents: int = 1

    def to_dict(self) -> Dict:
        """JSON wire form of the envelope."""
        return {
            "query": self.query,
            "source": self.source,
            "num_documents": self.num_documents,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PipelineRequest":
        """Rebuild the envelope from its wire form."""
        return cls(
            query=data["query"],
            source=data.get("source", "wikipedia"),
            num_documents=int(data.get("num_documents", 1)),
        )


@dataclass
class PipelineResponse:
    """Picklable envelope for one pipeline result.

    The KB crosses the process boundary as its ``to_dict`` payload;
    every consumer rebuilds a private :class:`KnowledgeBase` from it,
    so two callers joined on one flight can never alias mutations.
    """

    kb_payload: Dict
    worker_pid: int
    seconds: float

    def to_kb(self) -> KnowledgeBase:
        """A fresh private KnowledgeBase for one consumer."""
        return KnowledgeBase.from_dict(self.kb_payload)

    def to_dict(self) -> Dict:
        """JSON wire form of the envelope (the KB payload already is)."""
        return {
            "kb_payload": self.kb_payload,
            "worker_pid": self.worker_pid,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PipelineResponse":
        """Rebuild the envelope from its wire form."""
        return cls(
            kb_payload=data["kb_payload"],
            worker_pid=int(data.get("worker_pid", 0)),
            seconds=float(data.get("seconds", 0.0)),
        )


# Per-worker pipeline, set once by the pool initializer. A module-level
# global is the multiprocessing idiom: initializer args reach the child
# exactly once, while task functions must stay importable top-level
# callables.
_WORKER_QKBFLY: Optional[QKBfly] = None


def _bootstrap_worker(
    session_payload: bytes, config: Optional[QKBflyConfig]
) -> None:
    """Build this worker's pipeline from the pickled session."""
    global _WORKER_QKBFLY
    session: SessionState = pickle.loads(session_payload)
    _WORKER_QKBFLY = QKBfly.from_session(session, config=config)


def _execute(qkbfly: QKBfly, request: PipelineRequest) -> PipelineResponse:
    """One envelope through one pipeline — the single place the
    response envelope is built, shared by both execution tiers."""
    started = time.perf_counter()
    kb = qkbfly.build_kb(
        request.query,
        source=request.source,
        num_documents=request.num_documents,
    )
    return PipelineResponse(
        kb_payload=kb.to_dict(),
        worker_pid=os.getpid(),
        seconds=time.perf_counter() - started,
    )


def _run_request(request: PipelineRequest) -> PipelineResponse:
    """Execute one envelope on this worker's pipeline."""
    if _WORKER_QKBFLY is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker used before _bootstrap_worker ran")
    return _execute(_WORKER_QKBFLY, request)


class _LocalRunner:
    """Thread-fallback twin of the worker globals: one shared pipeline,
    same envelope discipline (results still round-trip through dicts so
    both kinds return equally private KBs)."""

    def __init__(self, session: SessionState, config: Optional[QKBflyConfig]):
        self._qkbfly = QKBfly.from_session(session, config=config)

    def __call__(self, request: PipelineRequest) -> PipelineResponse:
        return _execute(self._qkbfly, request)


class ProcessBatchExecutor:
    """Pipeline runs on a process pool, with thread fallback.

    Args:
        session: The shared session; pickled once and shipped to every
            worker's bootstrap.
        config: Pipeline configuration for the workers (pickled along).
        max_workers: Pool size (processes, or threads after fallback).
        mp_context: ``multiprocessing`` context or start-method name
            (``"fork"``/``"spawn"``); None uses the platform default.
        force_threads: Skip processes entirely — lets deployments (and
            tests) pin the fallback path explicitly.
    """

    def __init__(
        self,
        session: SessionState,
        config: Optional[QKBflyConfig] = None,
        max_workers: int = 2,
        mp_context: Any = None,
        force_threads: bool = False,
    ) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.kind = "process"
        self.fallback_reason: Optional[str] = None
        pool = None
        if force_threads:
            self.kind = "thread"
            self.fallback_reason = "forced by configuration"
        else:
            try:
                session_payload = pickle.dumps(session)
                pickle.dumps(config)
            except Exception as error:
                self.kind = "thread"
                self.fallback_reason = f"session not picklable: {error}"
            else:
                try:
                    if isinstance(mp_context, str):
                        import multiprocessing

                        mp_context = multiprocessing.get_context(mp_context)
                    pool = ProcessPoolExecutor(
                        max_workers=max_workers,
                        mp_context=mp_context,
                        initializer=_bootstrap_worker,
                        initargs=(session_payload, config),
                    )
                except Exception as error:
                    self.kind = "thread"
                    self.fallback_reason = f"no process pool: {error}"
        if self.kind == "process":
            self._batch = BatchExecutor(_run_request, pool=pool)
        else:
            self._batch = BatchExecutor(
                _LocalRunner(session, config), max_workers=max_workers
            )

    # ---- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool."""
        self._batch.shutdown(wait=wait)

    def __enter__(self) -> "ProcessBatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ---- execution ---------------------------------------------------------

    def submit(self, request: PipelineRequest) -> Future:
        """Schedule one envelope; resolves to a :class:`PipelineResponse`.

        The envelope is its own single-flight key: concurrent identical
        requests share one worker task.
        """
        # Parent-side hook: worker processes never see the armed
        # injector (it lives in this process's module global), so
        # mid-flight worker death is injected here, where the pool
        # handle is reachable.
        fault_point("process_executor.submit", executor=self)
        return self._batch.submit(request, request)

    def build_kb(
        self,
        query: str,
        source: str = "wikipedia",
        num_documents: int = 1,
    ) -> KnowledgeBase:
        """Blocking drop-in for :meth:`QKBfly.build_kb` on the pool."""
        request = PipelineRequest(
            query=query, source=source, num_documents=num_documents
        )
        response: PipelineResponse = self.submit(request).result()
        return response.to_kb()

    def run_batch(
        self, requests: Sequence[PipelineRequest]
    ) -> List[KnowledgeBase]:
        """Run envelopes concurrently; KBs come back in input order,
        each consumer slot rebuilt privately from the shared payload."""
        responses = self._batch.run_batch(list(requests))
        return [response.to_kb() for response in responses]

    # ---- fault injection ---------------------------------------------------

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool workers (empty on the thread tier).

        Snapshot-only: workers may die or respawn after this returns.
        """
        if self.kind != "process":
            return []
        pool = self._batch._pool
        processes = getattr(pool, "_processes", None) or {}
        return sorted(processes)

    def kill_one_worker(self) -> Optional[int]:
        """SIGKILL one live pool worker; returns its pid (None if none).

        The fault-injection harness uses this to exercise real
        mid-flight worker death: the stdlib pool reacts by breaking
        (``BrokenProcessPool``), which the serving layer must surface
        as typed failure envelopes, never as hangs or silent drops.
        A no-op on the thread tier (threads cannot be killed).
        """
        pids = self.worker_pids()
        if not pids:
            return None
        victim = pids[0]
        try:
            os.kill(victim, signal.SIGKILL)
        except OSError:  # pragma: no cover - worker already exited
            return None
        return victim

    # ---- monitoring --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Distinct pipeline envelopes currently in flight on the pool.

        The process-tier twin of
        :attr:`~repro.service.executor.BatchExecutor.pending` — the
        autoscaler reads it (alongside the request executor's own
        depth) when sizing the pool, and admission control sheds on the
        combined view. Queue *waits* are not measured here (the timing
        wrapper cannot cross the process boundary); the request
        executor in front of this pool measures them instead.
        """
        return self._batch.pending

    @property
    def submitted(self) -> int:
        """Distinct worker tasks actually dispatched."""
        return self._batch.submitted

    @property
    def deduplicated(self) -> int:
        """Requests absorbed by an in-flight identical envelope."""
        return self._batch.deduplicated

    def stats(self) -> Dict[str, Any]:
        """Executor counters for the service's monitoring surface."""
        return {
            "kind": self.kind,
            "max_workers": self.max_workers,
            "submitted": self.submitted,
            "deduplicated": self.deduplicated,
            "fallback_reason": self.fallback_reason,
        }


__all__ = [
    "PipelineRequest",
    "PipelineResponse",
    "ProcessBatchExecutor",
]
